//! Quickstart: build the paper's three-cluster testbed, replicate a file,
//! and let the cost model pick the best replica.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use datagrid::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the simulated testbed from the paper: THU, Li-Zen and HIT
    //    clusters behind a TANet backbone, with background traffic, NWS
    //    bandwidth monitoring and MDS/sysstat host monitoring.
    let mut grid = paper_testbed(42).build();

    // 2. Register a 1 GiB logical file and place replicas at one host per
    //    site (the paper's §4.3 scenario).
    grid.catalog_mut()
        .register_logical("file-a".parse()?, 1 << 30)?;
    for host in ["alpha4", "hit0", "lz02"] {
        let pfn = grid.place_replica("file-a", canonical_host(host))?;
        println!("replica registered: {pfn}");
    }

    // 3. Let monitoring warm up so NWS forecasts exist.
    grid.warm_up(SimDuration::from_secs(300));

    // 4. A client at alpha1 fetches the file: catalog lookup, factor
    //    gathering, cost-model ranking, GridFTP transfer.
    let client = grid.host_id("alpha1").expect("testbed host");
    let report = grid.fetch(client, "file-a")?;

    println!("\ncandidates (ranked by cost-model score):");
    for (i, c) in report.candidates.iter().enumerate() {
        println!(
            "  {}. {:<9} BW_P={:.3} CPU_P={:.3} IO_P={:.3} -> score {:.3}{}",
            i + 1,
            c.host_name,
            c.factors.bandwidth_fraction,
            c.factors.cpu_idle,
            c.factors.io_idle,
            c.score,
            if i == report.chosen {
                "   <- chosen"
            } else {
                ""
            },
        );
    }
    println!(
        "\nfetched {} ({} MiB) from {} in {:.1} s ({:.1} Mbps); decision latency {:.1} ms",
        report.lfn,
        report.transfer.payload_bytes >> 20,
        report.chosen_candidate().host_name,
        report.transfer.duration().as_secs_f64(),
        report.transfer.avg_throughput().as_mbps(),
        report.decision_latency.as_millis_f64(),
    );
    Ok(())
}
