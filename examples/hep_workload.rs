//! High-energy-physics workload: many event files, many clients, and a
//! live comparison of the cost-model policy against random selection.
//!
//! The paper's introduction motivates Data Grids with high-energy physics:
//! geographically distributed analysis jobs pulling large shared event
//! files. This example replays the same Poisson/Zipf request trace under
//! two selection policies and reports the aggregate difference.
//!
//! ```sh
//! cargo run --release --example hep_workload
//! ```

use datagrid::prelude::*;

fn build_grid(seed: u64) -> Result<DataGrid, Box<dyn std::error::Error>> {
    let mut grid = paper_testbed(seed).build();
    // A dozen 256 MiB event files, replicated at one host per site.
    for i in 0..12 {
        let name = format!("hep/run42/events-{i:02}");
        grid.catalog_mut()
            .register_logical(name.parse()?, 256 << 20)?;
        for host in ["alpha4", "gridhit0", "lz02"] {
            grid.place_replica(&name, host)?;
        }
    }
    grid.warm_up(SimDuration::from_secs(300));
    Ok(grid)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 2005;
    let files: Vec<String> = (0..12)
        .map(|i| format!("hep/run42/events-{i:02}"))
        .collect();
    let file_refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let clients = ["alpha1", "alpha2", "gridhit1", "gridhit3"];
    let trace = RequestTrace::poisson(
        &clients,
        &file_refs,
        1.0 / 150.0,
        SimDuration::from_secs(3000),
        seed,
    );
    println!(
        "replaying {} analysis-job requests from {} client hosts under two policies\n",
        trace.len(),
        clients.len()
    );

    for policy in [SelectionPolicy::CostModel, SelectionPolicy::Random] {
        let mut grid = build_grid(seed)?;
        let stats = selection_quality(
            &mut grid,
            &trace,
            policy,
            FetchOptions::default().with_parallelism(4),
        );
        println!(
            "{:<14} mean fetch {:>7.1} s   picked the fastest replica {:>5.1}% of the time   mean regret {:>5.2}",
            stats.policy,
            stats.mean_duration_s,
            stats.oracle_accuracy * 100.0,
            stats.mean_regret,
        );
    }

    println!(
        "\nthe cost model avoids the 30 Mbps Li-Zen replica unless the fast sites are\n\
         loaded, which is exactly the behaviour the paper's Table 1 demonstrates."
    );
    Ok(())
}
