//! Monitoring tour: the information services under the cost model.
//!
//! Shows the three data sources of the paper's §3.2 — NWS bandwidth
//! forecasts, MDS CPU state and sysstat I/O state — evolving on the
//! simulated testbed, including the `sar`/`iostat`-style reports, the
//! NWS forecaster battery's dynamic predictor selection, and the
//! observability layer's event bus / metrics exports.
//!
//! ```sh
//! cargo run --example monitoring
//! ```

use datagrid::obs::{Event, EventBus};
use datagrid::prelude::*;
use datagrid::sysmon::sysstat;
use datagrid::testbed::calibration::Calibration;
use datagrid::testbed::sites::paper_testbed_with;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (builder, sites) = paper_testbed_with(11, &Calibration::default());
    let mut grid = builder.build();
    grid.warm_up(SimDuration::from_secs(600));

    let alpha1 = grid.host_id("alpha1").expect("testbed host");
    let lz02 = grid.host_id("lz02").expect("testbed host");
    let hit0 = grid.host_id("gridhit0").expect("testbed host");

    // --- NWS: bandwidth measurement + forecasting ---------------------
    println!("NWS bandwidth sensors toward alpha1 after 10 min of probing:");
    for (name, host) in [("lz02", lz02), ("gridhit0", hit0)] {
        let sensor = grid
            .nws()
            .sensor(grid.node_of(host), grid.node_of(alpha1))
            .expect("monitored path");
        println!(
            "  {name:<9} latest {:>8.2} Mbps   forecast {:>8.2} Mbps   BW_P {:.4}   forecaster: {}",
            sensor.latest().map_or(0.0, |b| b.as_mbps()),
            sensor.forecast().map_or(0.0, |b| b.as_mbps()),
            sensor.bandwidth_fraction().unwrap_or(0.0),
            sensor.battery().selected().unwrap_or("<warming up>"),
        );
    }

    // --- MDS: host information ----------------------------------------
    println!("\nMDS directory (CPU state, as the selection server reads it):");
    for rec in grid.mds().records().iter().take(6) {
        println!(
            "  {:<9} {} cores @ {:.1} GHz, {:>4} MiB   cpu idle {:>5.1}%   io idle {:>5.1}%",
            rec.name,
            rec.cores,
            rec.clock_ghz,
            rec.memory_mb,
            rec.cpu_idle * 100.0,
            rec.io_idle * 100.0,
        );
    }

    // --- sysstat: the raw reports the I/O factor comes from ------------
    let lz_host = grid.host(lz02);
    let sar = sysstat::sar_report(lz_host);
    println!("\nsar -u on lz02 (last 3 samples):");
    for line in sar.lines().take(2).chain(
        sar.lines()
            .rev()
            .take(4)
            .collect::<Vec<_>>()
            .into_iter()
            .rev(),
    ) {
        println!("  {line}");
    }
    let iostat = sysstat::iostat_report(lz_host);
    println!("\niostat on lz02 (last 3 samples):");
    for line in iostat.lines().take(2).chain(
        iostat
            .lines()
            .rev()
            .take(3)
            .collect::<Vec<_>>()
            .into_iter()
            .rev(),
    ) {
        println!("  {line}");
    }

    // --- sar -n DEV: WAN uplink utilisation from the link trace ---------
    let (to_lizen, _) = sites.lizen_uplink;
    if let Some(trace) = grid.network_trace().link(to_lizen) {
        let report = sysstat::ifstat_report("tanet->lizen", trace, Bandwidth::from_mbps(30.0));
        println!("\nsar -n DEV on the Li-Zen uplink (last 3 samples):");
        for line in report.lines().take(2).chain(
            report
                .lines()
                .rev()
                .take(3)
                .collect::<Vec<_>>()
                .into_iter()
                .rev(),
        ) {
            println!("  {line}");
        }
        println!(
            "  mean utilisation over the last 5 min: {:.1}%",
            trace
                .mean_over(grid.now(), SimDuration::from_secs(300))
                .unwrap_or(0.0)
                * 100.0
        );
    }

    // --- the factors flowing into the cost model -----------------------
    grid.catalog_mut()
        .register_logical("demo".parse()?, 64 << 20)?;
    grid.place_replica("demo", "lz02")?;
    grid.place_replica("demo", "gridhit0")?;
    let scored = grid.score_candidates(alpha1, "demo")?;
    println!("\ncost-model view (weights 0.8/0.1/0.1):");
    for c in &scored {
        println!(
            "  {:<9} BW_P {:.4}  CPU_P {:.3}  IO_P {:.3}  ->  score {:.3}",
            c.host_name,
            c.factors.bandwidth_fraction,
            c.factors.cpu_idle,
            c.factors.io_idle,
            c.score,
        );
    }

    // --- the observability layer: events, audit, metrics ----------------
    // Every monitoring action above also produced structured events; run
    // one real fetch, then stream the retained history through an event
    // bus into pluggable sinks.
    let report = grid.fetch(alpha1, "demo")?;
    println!(
        "\nfetch demo -> chose {} in {:.1} s; the decision was audited:",
        report.chosen_candidate().host_name,
        report.transfer.duration().as_secs_f64(),
    );
    if let Some(decision) = grid.audit().last() {
        print!("{}", decision.render_text());
    }

    let mut bus = EventBus::new();
    let mut by_kind = std::collections::BTreeMap::<&'static str, u32>::new();
    // Sinks are plain closures or writers; this one tallies event kinds.
    bus.subscribe(move |e: &Event| {
        *by_kind.entry(e.kind).or_insert(0) += 1;
        if e.kind == "span.close" || e.kind == "selection.decision" {
            println!("  bus <- {e}");
        }
    });
    grid.recorder().replay_into(&mut bus);
    println!(
        "replayed {} retained events ({} dropped from the ring) through the bus.",
        grid.recorder().events().len(),
        grid.recorder().dropped_events(),
    );

    println!("\nmetrics snapshot (selection + transfer section):");
    for line in grid
        .metrics_snapshot()
        .render_text()
        .lines()
        .filter(|l| l.starts_with("selection.") || l.starts_with("transfer.seconds"))
    {
        println!("  {line}");
    }
    println!("\nfull JSONL dumps: grid.recorder().events_jsonl(), grid.audit().render_jsonl(),");
    println!("or DATAGRID_OBS_DIR=/tmp/obs cargo run -p datagrid-bench --bin table1");
    Ok(())
}
