//! Bioinformatics scenario: a replicated genome database.
//!
//! The paper motivates replica selection with data-intensive science and
//! explicitly says "we can treat a biological database as a replica of
//! Data Grid". This example registers a sequence-database *collection*,
//! replicates it across sites, and shows how a BLAST-style client first
//! pulls the database from the best remote replica, then creates a local
//! replica so later runs hit local disk.
//!
//! ```sh
//! cargo run --example bioinformatics
//! ```

use datagrid::prelude::*;

const DB_FILES: [(&str, u64); 3] = [
    ("blast/nr.part1", 900 << 20),
    ("blast/nr.part2", 900 << 20),
    ("blast/est.idx", 120 << 20),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = paper_testbed(7).build();

    // Register the database as a logical collection with replicas at the
    // two fast sites.
    grid.catalog_mut().create_collection("blast-db".parse()?)?;
    for (name, bytes) in DB_FILES {
        grid.catalog_mut().register_logical(name.parse()?, bytes)?;
        grid.place_replica(name, "alpha4")?;
        grid.place_replica(name, "gridhit0")?;
        grid.catalog_mut()
            .add_to_collection(&"blast-db".parse()?, &name.parse()?)?;
    }
    let members = grid
        .catalog()
        .collection(&"blast-db".parse()?)
        .expect("collection registered")
        .len();
    println!("collection blast-db registered with {members} member files");

    grid.warm_up(SimDuration::from_secs(300));

    // A researcher at HIT (gridhit2) runs BLAST: the database must be
    // staged in first. The cost model picks gridhit0 (same site) over the
    // THU replica.
    let client = grid.host_id("gridhit2").expect("testbed host");
    println!("\nfirst run: staging the database to gridhit2");
    let mut total = 0.0;
    for (name, _) in DB_FILES {
        let report = grid.fetch_with(client, name, FetchOptions::default().with_parallelism(4))?;
        println!(
            "  {name}: from {} in {:.1} s ({:.1} Mbps)",
            report.chosen_candidate().host_name,
            report.transfer.duration().as_secs_f64(),
            report.transfer.avg_throughput().as_mbps(),
        );
        total += report.transfer.duration().as_secs_f64();
    }
    println!("  staging took {total:.1} s");

    // The site admin decides the database is hot and replicates it onto
    // the client machine itself (replica management: copy + register).
    println!("\nreplicating the collection onto gridhit2 for future runs");
    for (name, _) in DB_FILES {
        let outcome = grid.replicate(name, "gridhit2", 4)?;
        println!(
            "  {name}: copied in {:.1} s, replica registered",
            outcome.duration().as_secs_f64()
        );
    }

    // Second run: every file is now local — the selection scenario's
    // "if they are present at the local site, the application accesses
    // them immediately" branch.
    println!("\nsecond run: the database is local");
    for (name, _) in DB_FILES {
        let report = grid.fetch(client, name)?;
        assert!(report.local_hit, "replica must be found locally");
        println!(
            "  {name}: local read in {:.2} s",
            report.transfer.duration().as_secs_f64()
        );
    }
    Ok(())
}
