//! Data-intensive jobs on the grid — the paper's complete Fig. 1 story.
//!
//! "Most of these Data Grid applications are executed simultaneously and
//! access a large number of shared data files": this example runs a batch
//! of analysis jobs at different sites, each staging its inputs through
//! the cost-model replica selector, computing, and shipping results back
//! to THU. It then reports how much of each job's makespan went to data
//! movement — the quantity replica selection exists to shrink.
//!
//! ```sh
//! cargo run --release --example grid_jobs
//! ```

use datagrid::core::job::JobSpec;
use datagrid::prelude::*;

const MB: u64 = 1 << 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = paper_testbed(31).build();

    // A shared event dataset, replicated at THU and HIT.
    for i in 0..4 {
        let lfn = format!("hep/run7/events-{i}");
        grid.catalog_mut()
            .register_logical(lfn.parse()?, 256 * MB)?;
        grid.place_replica(&lfn, "alpha4")?;
        grid.place_replica(&lfn, "gridhit0")?;
    }
    grid.warm_up(SimDuration::from_secs(300));

    // Four analysis jobs land on different hosts; each reads one slice and
    // sends a summary back to alpha1.
    let placements = [
        ("alpha2", 0),
        ("alpha3", 1),
        ("gridhit2", 2),
        ("lz03", 3), // the thin site: data movement will dominate here
    ];

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}  input came from",
        "host", "stage-in", "compute", "total", "data %"
    );
    for (host, slice) in placements {
        let client = grid.host_id(host).expect("testbed host");
        let job = JobSpec::new(format!("analysis-{slice}"))
            .with_input(format!("hep/run7/events-{slice}"))
            .with_compute_work(200.0) // 200 GHz-seconds of number crunching
            .with_output(8 * MB, "alpha1")
            .with_options(FetchOptions::default().with_parallelism(4));
        let report = grid.run_job(client, &job)?;
        println!(
            "{:<10} {:>9.1}s {:>9.1}s {:>9.1}s {:>9.1}%  {}",
            report.client,
            report.stage_in.as_secs_f64(),
            report.compute.as_secs_f64(),
            report.total.as_secs_f64(),
            report.data_fraction() * 100.0,
            report.staged[0].chosen_candidate().host_name,
        );
    }

    println!(
        "\nthe selector keeps THU jobs on the LAN replica and HIT jobs on the local-site\n\
         replica; only the Li-Zen job pays serious staging time, because every path into\n\
         that site crosses its lossy 30 Mbps uplink."
    );
    Ok(())
}
