//! Weight determination (the paper's future work §5, item 2), answered.
//!
//! The paper hand-picks the cost-model weights (0.8/0.1/0.1) after manual
//! measurements. This example shows the `WeightTuner` learning weights
//! automatically: it gathers `(factors, measured transfer time)`
//! observations by counterfactually replaying fetches from every
//! candidate (possible because the whole grid is cloneable and
//! deterministic), then searches the weight simplex for the best rank
//! agreement.
//!
//! ```sh
//! cargo run --release --example weight_tuning
//! ```

use datagrid::prelude::*;

const MB: u64 = 1 << 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = paper_testbed(77).build();
    grid.catalog_mut()
        .register_logical("file-a".parse()?, 256 * MB)?;
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host))?;
    }
    grid.warm_up(SimDuration::from_secs(300));

    // Gather observations: for several clients and points in time, replay
    // the fetch from every candidate and record (factors, duration).
    let mut tuner = WeightTuner::new();
    for round in 0..6 {
        grid.warm_up(SimDuration::from_secs(60));
        let client_name = ["alpha1", "alpha2", "gridhit1"][round % 3];
        let client = grid.host_id(client_name).expect("testbed host");
        for c in grid.score_candidates(client, "file-a")? {
            let mut probe = grid.clone();
            let report = probe.fetch_from(
                client,
                "file-a",
                &c.host_name,
                FetchOptions::default().with_parallelism(4),
            )?;
            let secs = report.transfer.duration().as_secs_f64();
            println!(
                "observation: client {client_name:<9} replica {:<9} BW_P {:.4} -> {:>7.1} s",
                c.host_name, c.factors.bandwidth_fraction, secs
            );
            tuner.record(Observation::new(c.factors, secs));
        }
    }

    let (weights, agreement) = tuner.tune(20).expect("enough observations");
    println!(
        "\nlearned weights: BW={:.2} CPU={:.2} IO={:.2} (rank agreement {:.2})",
        weights.bandwidth, weights.cpu, weights.io, agreement
    );
    println!("paper's hand-picked weights: BW=0.80 CPU=0.10 IO=0.10");

    // Install the learned weights into the live selection server.
    grid.selector_mut().set_cost_model(CostModel::new(weights));
    let client = grid.host_id("alpha1").expect("testbed host");
    let report = grid.fetch(client, "file-a")?;
    println!(
        "with learned weights the selector fetches from {} in {:.1} s",
        report.chosen_candidate().host_name,
        report.transfer.duration().as_secs_f64()
    );
    Ok(())
}
