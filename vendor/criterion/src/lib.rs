//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors just enough of the criterion API for its `harness = false`
//! benches to compile and produce useful wall-clock numbers:
//! `Criterion::bench_function`, `benchmark_group` + `sample_size`, the
//! `criterion_group!` / `criterion_main!` macros, and `Bencher::iter`.
//! There is no statistical analysis — each sample is timed and the
//! mean / min / max are printed.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    remaining: usize,
}

impl Bencher {
    /// Time `routine` once per requested sample. The shim runs one warm-up
    /// call, then `sample_size` measured calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.remaining {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
        self.remaining = 0;
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        remaining: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty samples");
    let max = bencher.samples.iter().max().expect("non-empty samples");
    println!(
        "{id:<40} mean {:>12?}   min {:>12?}   max {:>12?}   ({} samples)",
        mean,
        min,
        max,
        bencher.samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
