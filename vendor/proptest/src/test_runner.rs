//! Case-count configuration and the deterministic generation stream.

/// Subset of upstream `ProptestConfig`: only the case count matters here.
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// splitmix64 generator; seeded from the test name so every run of a given
/// test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n == 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}
