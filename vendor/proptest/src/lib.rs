//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the proptest API its property tests
//! actually use: the `proptest!` macro, range / collection / regex-literal /
//! tuple / `prop_oneof!` strategies, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//! - generation is driven by a deterministic splitmix64 stream seeded from
//!   the test name, so failures reproduce on every run, and
//! - there is no shrinking — a failing case panics with its inputs printed
//!   by the assertion message instead of a minimised counterexample.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run a block of property tests. Supports the upstream surface used in
/// this workspace: an optional `#![proptest_config(..)]` header and any
/// number of `#[test] fn name(pat in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                // Each case runs in a closure so `prop_assume!` can skip it
                // with an early return without ending the whole test.
                (|| $body)();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skip the current generated case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
