//! The `Strategy` trait and the value generators the workspace tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values. Object-safe so heterogeneous strategies can be
/// unified behind `Box<dyn Strategy<Value = T>>` (see [`Union`]).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

/// String literals are interpreted as the regex subset documented in
/// [`crate::string`].
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Erase a strategy's concrete type (coercion helper for `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}
