//! Regex-literal string strategies.
//!
//! Upstream proptest treats `&str` strategies as full regexes. The tests in
//! this workspace only use a small subset, which is what is parsed here:
//! literal characters, character classes with ranges (`[a-zA-Z0-9._-]`),
//! groups `( .. )`, and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`
//! (`*`/`+` are capped at 8 repetitions). Anything else — alternation,
//! escapes, negated classes — panics so an unsupported pattern is loud
//! rather than silently mis-generated.

use crate::test_runner::TestRng;
use std::iter::Peekable;
use std::str::Chars;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
    Seq(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let node = parse(pattern);
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| u64::from(hi) - u64::from(lo) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = u64::from(hi) - u64::from(lo) + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick as u32).expect("class range"));
                    return;
                }
                pick -= span;
            }
            unreachable!("class pick out of bounds");
        }
        Node::Seq(children) => {
            for child in children {
                emit(child, rng, out);
            }
        }
        Node::Repeat(child, min, max) => {
            let count = min + rng.below(u64::from(max - min) + 1) as u32;
            for _ in 0..count {
                emit(child, rng, out);
            }
        }
    }
}

fn parse(pattern: &str) -> Node {
    let mut chars = pattern.chars().peekable();
    let node = parse_seq(&mut chars, pattern);
    assert!(
        chars.next().is_none(),
        "unbalanced ')' in pattern {pattern:?}"
    );
    node
}

fn parse_seq(chars: &mut Peekable<Chars>, pattern: &str) -> Node {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            break;
        }
        let atom = match c {
            '[' => parse_class(chars, pattern),
            '(' => {
                chars.next();
                let inner = parse_seq(chars, pattern);
                assert_eq!(chars.next(), Some(')'), "unclosed '(' in {pattern:?}");
                inner
            }
            '|' | '\\' | '^' | '$' | '.' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
            }
            _ => {
                chars.next();
                Node::Lit(c)
            }
        };
        nodes.push(apply_quantifier(atom, chars, pattern));
    }
    if nodes.len() == 1 {
        nodes.pop().expect("single node")
    } else {
        Node::Seq(nodes)
    }
}

fn parse_class(chars: &mut Peekable<Chars>, pattern: &str) -> Node {
    assert_eq!(chars.next(), Some('['));
    assert_ne!(
        chars.peek(),
        Some(&'^'),
        "negated classes unsupported in {pattern:?}"
    );
    let mut members = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unclosed '[' in {pattern:?}"));
        if c == ']' {
            break;
        }
        assert_ne!(c, '\\', "escapes unsupported in {pattern:?}");
        // A '-' between two members is a range; at either end it is literal.
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next();
            match ahead.peek() {
                Some(&']') | None => members.push((c, c)),
                Some(&hi) => {
                    chars.next();
                    chars.next();
                    assert!(c <= hi, "inverted class range in {pattern:?}");
                    members.push((c, hi));
                }
            }
        } else {
            members.push((c, c));
        }
    }
    assert!(!members.is_empty(), "empty class in {pattern:?}");
    Node::Class(members)
}

fn apply_quantifier(atom: Node, chars: &mut Peekable<Chars>, pattern: &str) -> Node {
    const UNBOUNDED_CAP: u32 = 8;
    match chars.peek() {
        Some('?') => {
            chars.next();
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('*') => {
            chars.next();
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
        }
        Some('{') => {
            chars.next();
            let mut digits = String::new();
            let mut upper: Option<String> = None;
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(',') => upper = Some(String::new()),
                    Some(d) if d.is_ascii_digit() => match upper.as_mut() {
                        Some(hi) => hi.push(d),
                        None => digits.push(d),
                    },
                    other => panic!("bad quantifier {other:?} in {pattern:?}"),
                }
            }
            let min: u32 = digits.parse().expect("quantifier lower bound");
            let max = match upper {
                None => min,
                Some(hi) => hi.parse().expect("quantifier upper bound"),
            };
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => atom,
    }
}
