//! Property tests for the lexer: it must be *total* — never panic, on
//! any input — and its spans must tile the source without overlapping,
//! stay on char boundaries, and carry monotonic line numbers. Runs over
//! both arbitrary printable soup and adversarial concatenations of the
//! constructs the lexer special-cases (raw strings, nested comments,
//! prefixes, compound operators), including every prefix slice of each.

use datagrid_lint::lexer::{lex, Lexed};
use proptest::prelude::*;

/// Checks every structural invariant of one lex result.
fn check_invariants(src: &str) {
    let Lexed { tokens, directives } = lex(src);
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for t in &tokens {
        prop_assert!(t.start < t.end, "empty span {}..{}", t.start, t.end);
        prop_assert!(t.end <= src.len(), "span past EOF");
        prop_assert!(t.start >= prev_end, "overlapping spans");
        prop_assert!(src.is_char_boundary(t.start), "start off boundary");
        prop_assert!(src.is_char_boundary(t.end), "end off boundary");
        prop_assert!(t.line >= prev_line, "line went backwards");
        // Line must match the actual newline count before the token.
        let expect = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
        prop_assert_eq!(t.line, expect, "line number drifted");
        // text() must be a valid slice (would panic otherwise).
        let _ = t.text(src);
        prev_end = t.end;
        prev_line = t.line;
    }
    for d in &directives {
        prop_assert!(d.line >= 1);
    }
}

/// Fragments that exercise every special case in the lexer, designed to
/// interact badly when concatenated: unterminated raw strings, comment
/// openers inside strings, prefix letters adjacent to quotes, compound
/// operators that shift meaning when merged.
const FRAGMENTS: [&str; 24] = [
    "fn f() { x.unwrap(); }\n",
    "r#\"raw ' \" /* \"#",
    "r##\"two hashes \"# inside\"##",
    "br#\"bytes\"#",
    "b\"bytes\\\"esc\"",
    "b'x'",
    "/* outer /* inner */ tail */",
    "/* unterminated",
    "\"unterminated str",
    "r#\"unterminated raw",
    "// lint: hot-path\n",
    "// lint: allow(no-unwrap) -- reason\n",
    "'a>",
    "'x'",
    "1.5e-3f64",
    "0xfe_u8",
    "x.0.1",
    "1..=2",
    "<<= >>= ... ..= :: ->",
    "#[cfg(test)] mod t { }",
    "r#match",
    "\\",
    "\u{1f600}\"\u{1f600}\"\u{1f600}",
    "'\\u{41}'",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable-ASCII-plus-newline soup never panics and
    /// always yields well-formed spans.
    #[test]
    fn lexer_is_total_on_printable_soup(src in "[\n -~]{0,80}") {
        check_invariants(&src);
    }

    /// Adversarial concatenations of special-cased constructs, and every
    /// char-boundary prefix of each (truncation mid-construct must not
    /// panic either — that is how unterminated strings/comments arise).
    #[test]
    fn lexer_is_total_on_adversarial_fragments(
        picks in proptest::collection::vec(0usize..24, 1..8),
        cut in 0usize..400,
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check_invariants(&src);
        let mut cut = cut.min(src.len());
        while !src.is_char_boundary(cut) {
            cut -= 1;
        }
        check_invariants(&src[..cut]);
    }

    /// Re-lexing the text of every token in isolation stays total
    /// (tokens are themselves valid lexer inputs).
    #[test]
    fn token_texts_relex_without_panicking(src in "[\n -~]{0,60}") {
        let lexed = lex(&src);
        for t in &lexed.tokens {
            check_invariants(t.text(&src));
        }
    }
}
