//! Fixture corpus: one known-bad file per rule family plus known-good
//! trap files, scanned exactly like workspace sources. The bad files
//! pin *which* rule fires and where; the good files pin the constructs
//! that defeated the v1 line scanner (multi-line block comments,
//! multi-line raw strings) plus the inline-allow layer.

use datagrid_lint::{scan_standalone, Config};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Scans a fixture as if it were a simnet source file (simulation rules
/// apply; console/export-crate rules do not).
fn scan(name: &str) -> Vec<(String, usize)> {
    let cfg = Config::default();
    let rel = format!("crates/simnet/src/fixture_{}", name.replace('/', "_"));
    scan_standalone(&cfg, "simnet", &rel, &fixture(name))
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn rules(found: &[(String, usize)]) -> Vec<&str> {
    found.iter().map(|(r, _)| r.as_str()).collect()
}

#[test]
fn alloc_hot_fixture_flags_injected_allocations_via_the_call_graph() {
    let found = scan("bad/alloc_hot.rs");
    assert_eq!(
        rules(&found),
        vec![
            "alloc-in-hot-path", // Vec::new in build_report
            "alloc-in-hot-path", // format! in build_report
            "alloc-in-hot-path", // clone in stash
        ],
        "got: {found:?}"
    );
    // The allocation in cold_path (same patterns, unreachable from the
    // hot root) must NOT be flagged.
    assert!(
        found.iter().all(|(_, line)| *line < 22),
        "cold_path was flagged: {found:?}"
    );
}

#[test]
fn determinism_fixture_flags_hash_containers_feeding_exports() {
    let found = scan("bad/determinism.rs");
    assert!(
        found.iter().all(|(r, _)| r == "hash-iter-export"),
        "got: {found:?}"
    );
    // render_summary (export root) and collect_counts (reachable) are
    // both flagged; `unrelated` is not.
    assert_eq!(found.len(), 4, "got: {found:?}");
    assert!(found.iter().all(|(_, line)| *line < 27), "got: {found:?}");
}

#[test]
fn float_eq_fixture() {
    let found = scan("bad/float_eq.rs");
    assert_eq!(
        rules(&found),
        vec!["float-eq", "float-eq"],
        "got: {found:?}"
    );
}

#[test]
fn cast_narrowing_fixture() {
    let found = scan("bad/cast_narrowing.rs");
    assert_eq!(
        rules(&found),
        vec!["cast-narrowing", "cast-narrowing"],
        "got: {found:?}"
    );
    assert!(found.iter().all(|(_, line)| *line <= 6), "got: {found:?}");
}

#[test]
fn wildcard_fixture_flags_watched_enums_only() {
    let found = scan("bad/wildcard.rs");
    assert_eq!(rules(&found), vec!["wildcard-match"], "got: {found:?}");
    assert_eq!(found[0].1, 6, "got: {found:?}");
}

#[test]
fn legacy_fixture_covers_the_v1_rule_families() {
    let found = scan("bad/legacy.rs");
    assert_eq!(
        rules(&found),
        vec![
            "no-unwrap",
            "no-expect",
            "no-panic",
            "no-println",
            "no-wallclock"
        ],
        "got: {found:?}"
    );
}

#[test]
fn clean_fixture_reports_nothing() {
    let found = scan("good/clean.rs");
    assert!(found.is_empty(), "false positives: {found:?}");
}

#[test]
fn allowed_fixture_reports_nothing_and_allows_are_not_stale() {
    let found = scan("good/allowed.rs");
    assert!(found.is_empty(), "got: {found:?}");
}

#[test]
fn severities_are_attached() {
    let cfg = Config::default();
    let found = scan_standalone(
        &cfg,
        "simnet",
        "crates/simnet/src/fx.rs",
        &fixture("bad/cast_narrowing.rs"),
    );
    assert!(found
        .iter()
        .all(|f| f.severity == datagrid_lint::Severity::Warning));
    let found = scan_standalone(
        &cfg,
        "simnet",
        "crates/simnet/src/fx.rs",
        &fixture("bad/legacy.rs"),
    );
    assert!(found
        .iter()
        .all(|f| f.severity == datagrid_lint::Severity::Error));
}
