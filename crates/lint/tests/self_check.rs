//! The workspace must conform to its own lint rules: `cargo test` fails
//! the moment a denied pattern lands outside the audited allowlist, long
//! before the CI `analysis` job runs.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let report = datagrid_lint::run(workspace_root()).expect("workspace walks cleanly");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "datagrid-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}

#[test]
fn every_library_crate_forbids_unsafe() {
    let crates_dir = workspace_root().join("crates");
    let mut checked = 0;
    for entry in std::fs::read_dir(&crates_dir).expect("crates/ exists") {
        let lib = entry.expect("readable dir entry").path().join("src/lib.rs");
        if !lib.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(&lib).expect("readable lib.rs");
        assert!(
            source.contains("#![forbid(unsafe_code)]"),
            "{} is missing #![forbid(unsafe_code)]",
            lib.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 9, "expected all nine crate roots to be checked");
}
