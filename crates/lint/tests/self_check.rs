//! The workspace must conform to its own lint rules: `cargo test` fails
//! the moment a denied pattern lands outside the audited allowlist, long
//! before the CI `analysis` job runs.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let started = std::time::Instant::now();
    let report = datagrid_lint::run(workspace_root()).expect("workspace walks cleanly");
    let elapsed = started.elapsed();
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "datagrid-lint found {} unbaselined violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
    // The analyzer gates every CI run; keep it interactive-fast. The
    // acceptance budget is ~2s — assert with debug-build headroom.
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "lint walk took {elapsed:?}, budget is 2s"
    );
}

#[test]
fn baseline_only_holds_fingerprints_that_still_match() {
    // `run` already fails on stale baseline entries; this pins the
    // accounting: every baselined finding corresponds to exactly one
    // live fingerprint and nothing is double-counted.
    let report = datagrid_lint::run(workspace_root()).expect("workspace walks cleanly");
    let text = std::fs::read_to_string(workspace_root().join("ci/lint_baseline.json"))
        .expect("baseline file exists");
    let baseline = datagrid_lint::baseline::parse(&text).expect("baseline parses");
    assert_eq!(
        baseline.entries.len(),
        report.baselined.len(),
        "baseline entry count must equal baselined finding count"
    );
    for finding in &report.baselined {
        assert!(
            baseline.contains(&finding.fingerprint),
            "baselined finding missing from file: {finding}"
        );
    }
}

#[test]
fn findings_artifact_renders_valid_json() {
    let report = datagrid_lint::run(workspace_root()).expect("workspace walks cleanly");
    let text = datagrid_lint::render_findings_json(&report);
    let doc = datagrid_lint::json::parse(&text).expect("artifact is valid JSON");
    let findings = doc
        .get("findings")
        .and_then(datagrid_lint::json::Json::as_arr)
        .expect("findings array");
    assert_eq!(
        findings.len(),
        report.findings.len() + report.baselined.len()
    );
}

#[test]
fn every_library_crate_forbids_unsafe() {
    let crates_dir = workspace_root().join("crates");
    let mut checked = 0;
    for entry in std::fs::read_dir(&crates_dir).expect("crates/ exists") {
        let lib = entry.expect("readable dir entry").path().join("src/lib.rs");
        if !lib.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(&lib).expect("readable lib.rs");
        assert!(
            source.contains("#![forbid(unsafe_code)]"),
            "{} is missing #![forbid(unsafe_code)]",
            lib.display()
        );
        checked += 1;
    }
    assert_eq!(checked, 9, "expected all nine crate roots to be checked");
}
