//! End-to-end proof that the baseline is a one-way ratchet. A synthetic
//! workspace gets an injected hot-path allocation; the run must fail
//! with no baseline, pass once the finding is baselined, fail again the
//! moment a *new* finding appears, and fail when the baseline holds an
//! entry that matches nothing (entries may only be removed).

use datagrid_lint::{render_baseline, run_with, Options};
use std::fs;
use std::path::{Path, PathBuf};

struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "datagrid-lint-ratchet-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
        fs::create_dir_all(root.join("ci")).expect("mkdir ci");
        TempWorkspace { root }
    }

    fn write_lib(&self, source: &str) {
        fs::write(self.root.join("crates/demo/src/lib.rs"), source).expect("write lib.rs");
    }

    fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const HOT_ALLOC: &str = "#![forbid(unsafe_code)]\n\
    // lint: hot-path\n\
    fn dispatch() { build(); }\n\
    fn build() { let _v: Vec<u8> = Vec::with_capacity(8); }\n";

#[test]
fn ratchet_trips_on_injected_finding_and_only_shrinks() {
    let ws = TempWorkspace::new("trip");
    ws.write_lib(HOT_ALLOC);
    let opts = Options::default();

    // 1. No baseline: the injected allocation is a new finding.
    let report = run_with(ws.root(), &opts).expect("walks");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "alloc-in-hot-path"),
        "injected allocation not found: {:?}",
        report.findings
    );
    assert!(!report.is_clean());

    // 2. Baseline the current state: the same run is now clean, with the
    //    finding accounted as baselined debt.
    let baseline_path = ws.root().join("ci/lint_baseline.json");
    fs::write(&baseline_path, render_baseline(&report)).expect("write baseline");
    let report = run_with(ws.root(), &opts).expect("walks");
    assert!(
        report.is_clean(),
        "baselined run not clean: {:?}",
        report.findings
    );
    assert_eq!(report.baselined.len(), 1);

    // 3. Inject a second allocation: its fingerprint is not in the
    //    baseline, so the ratchet trips again.
    ws.write_lib(&format!(
        "{HOT_ALLOC}fn extra() {{ let _s = String::with_capacity(4); }}\n\
         // lint: hot-path\n\
         fn dispatch2() {{ extra(); }}\n"
    ));
    let report = run_with(ws.root(), &opts).expect("walks");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "alloc-in-hot-path" && f.scope == "extra"),
        "new finding did not trip the ratchet: {:?}",
        report.findings
    );
    assert_eq!(report.baselined.len(), 1, "old finding stays baselined");
}

#[test]
fn stale_baseline_entries_fail_the_run() {
    let ws = TempWorkspace::new("stale");
    // A clean workspace with a baseline entry that matches nothing.
    ws.write_lib("#![forbid(unsafe_code)]\nfn quiet() {}\n");
    fs::write(
        ws.root().join("ci/lint_baseline.json"),
        "{\"version\": 2, \"findings\": [\
            {\"fingerprint\": \"00000000deadbeef\", \"rule\": \"float-eq\", \"path\": \"crates/demo/src/lib.rs\", \"note\": \"gone\"}\
        ]}\n",
    )
    .expect("write baseline");
    let report = run_with(ws.root(), &Options::default()).expect("walks");
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "stale-baseline")
        .collect();
    assert_eq!(stale.len(), 1, "got: {:?}", report.findings);
    assert!(!report.is_clean());
}

#[test]
fn malformed_baseline_is_a_hard_error() {
    let ws = TempWorkspace::new("malformed");
    ws.write_lib("#![forbid(unsafe_code)]\nfn quiet() {}\n");
    fs::write(ws.root().join("ci/lint_baseline.json"), "{not json").expect("write");
    assert!(run_with(ws.root(), &Options::default()).is_err());
}

#[test]
fn baseline_path_override_is_honoured() {
    let ws = TempWorkspace::new("override");
    ws.write_lib(HOT_ALLOC);
    let report = run_with(ws.root(), &Options::default()).expect("walks");
    assert!(!report.is_clean());

    let alt = ws.root().join("alt_baseline.json");
    fs::write(&alt, render_baseline(&report)).expect("write alt baseline");
    let opts = Options {
        baseline_path: Some(alt),
    };
    let report = run_with(ws.root(), &opts).expect("walks");
    assert!(report.is_clean(), "got: {:?}", report.findings);
}
