//! Hand-rolled Rust lexer for the conformance analyzer.
//!
//! The v1 scanner sanitized one line at a time, which is exactly why it
//! mishandled multi-line block comments and raw strings: a `*/` or `"#`
//! on a later line is invisible to a per-line state machine. The lexer
//! replaces it with a single pass over the whole file that produces
//! spanned tokens and never loses track of what is code and what is
//! text:
//!
//! - nested block comments (`/* /* */ */`) with unbounded depth,
//! - raw and byte strings (`r"…"`, `r#"…"#` with any hash count,
//!   `b"…"`, `br#"…"#`) including multi-line bodies,
//! - raw identifiers (`r#match`),
//! - char literals vs. lifetimes (`'a'` vs. `'a`),
//! - float vs. integer literals, tuple indices (`x.0`), ranges (`1..2`),
//! - maximal-munch compound operators (`==`, `!=`, `=>`, `::`, …).
//!
//! Comments are not tokens, but line comments whose body starts with
//! `lint:` are captured as [`Directive`]s — the annotation channel the
//! item index uses for `// lint: hot-path` roots and
//! `// lint: allow(<rule>) -- <reason>` site-level suppressions.
//!
//! The lexer is total: any byte sequence lexes without panicking
//! (unterminated strings and comments run to end of file), a property
//! pinned by the `lexer_props` proptest suite.

/// What a [`Token`] is. Keywords are `Ident`s; rule code compares the
/// source text via [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Lifetime such as `'a` (the tick is part of the span).
    Lifetime,
    /// String literal of any flavour: cooked, raw, byte, byte-raw.
    Str,
    /// Character literal, e.g. `'x'` or `'\n'`.
    Char,
    /// Integer literal (any radix, with or without suffix).
    Int,
    /// Float literal (`1.0`, `1.`, `1e9`, `1f64`).
    Float,
    /// Punctuation / operator; compound operators span multiple bytes.
    Punct,
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive, on a char boundary).
    pub start: usize,
    /// Byte offset one past the last byte (on a char boundary).
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// A captured `// lint: …` comment. `body` is the text after `lint:`,
/// trimmed (e.g. `hot-path` or `allow(no-expect) -- reason`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Directive body after the `lint:` marker, trimmed.
    pub body: String,
}

/// Lexer output: the token stream plus any lint directives found in
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `// lint: …` directives in source order.
    pub directives: Vec<Directive>,
}

/// Compound operators, longest first so maximal munch is a prefix scan.
const COMPOUND_OPS: [&str; 22] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, counting newlines. Multi-byte chars are
    /// consumed byte-by-byte; only `\n` affects the line counter, so
    /// byte-wise consumption keeps the count exact.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Consumes bytes while `f` holds.
    fn eat_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if !f(b) {
                break;
            }
            self.bump();
        }
    }

    /// Byte offset snapped back to the nearest char boundary at or
    /// before `pos`, so spans always slice cleanly.
    fn boundary(&self, mut pos: usize) -> usize {
        while pos > 0 && pos < self.src.len() && !self.src.is_char_boundary(pos) {
            pos -= 1;
        }
        pos.min(self.src.len())
    }
}

/// Lexes a full source file. Total: never panics, whatever the input.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.peek(1) == Some(b'*') => lex_block_comment(&mut cur),
            b'"' => {
                lex_cooked_string(&mut cur);
                push(&mut out, TokenKind::Str, start, &cur, line);
            }
            b'\'' => lex_tick(&mut cur, &mut out),
            b'0'..=b'9' => {
                let kind = lex_number(&mut cur);
                push(&mut out, kind, start, &cur, line);
            }
            _ if is_ident_start(b) => lex_ident_or_prefixed_string(&mut cur, &mut out),
            _ => {
                lex_punct(&mut cur);
                push(&mut out, TokenKind::Punct, start, &cur, line);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokenKind, start: usize, cur: &Cursor<'_>, line: u32) {
    let start = cur.boundary(start);
    let end = cur.boundary(cur.pos);
    if end > start {
        out.tokens.push(Token {
            kind,
            start,
            end,
            line,
        });
    }
}

fn lex_line_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let line = cur.line;
    let start = cur.pos;
    while let Some(b) = cur.peek(0) {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    let text = cur.src.get(start..cur.pos).unwrap_or("");
    // Strip `//`, `///`, `//!` and leading whitespace to find `lint:`.
    let body = text.trim_start_matches('/').trim_start_matches('!').trim();
    if let Some(rest) = body.strip_prefix("lint:") {
        out.directives.push(Directive {
            line,
            body: rest.trim().to_string(),
        });
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
}

fn lex_cooked_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '"'
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Raw string body after the `r`/`br` prefix: `#`*N `"` … `"` `#`*N.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek(0) != Some(b'"') {
        return; // not actually a raw string (e.g. `r#ident` handled upstream)
    }
    cur.bump(); // opening '"'
    'body: while let Some(b) = cur.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if cur.peek(i) != Some(b'#') {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// `'` starts either a char literal or a lifetime.
fn lex_tick(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let start = cur.pos;
    let line = cur.line;
    cur.bump(); // the tick
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume until the closing tick or
            // end of line (char literals cannot span lines).
            cur.bump();
            cur.bump(); // the escaped char
            while let Some(b) = cur.peek(0) {
                if b == b'\n' {
                    break;
                }
                cur.bump();
                if b == b'\'' {
                    break;
                }
            }
            push(out, TokenKind::Char, start, cur, line);
        }
        Some(b) if is_ident_start(b) => {
            // Could be `'a'` (char) or `'a` (lifetime). Decode one char,
            // then look for a closing tick.
            let ch_len = utf8_len(b);
            if cur.peek(ch_len) == Some(b'\'') {
                for _ in 0..=ch_len {
                    cur.bump();
                }
                push(out, TokenKind::Char, start, cur, line);
            } else {
                cur.eat_while(is_ident_continue);
                push(out, TokenKind::Lifetime, start, cur, line);
            }
        }
        Some(b'\'') | None => {
            // `''` or trailing tick: emit as punct so nothing is lost.
            cur.bump();
            push(out, TokenKind::Punct, start, cur, line);
        }
        Some(b) => {
            // Non-ident single char like `'+'`.
            let ch_len = utf8_len(b);
            if cur.peek(ch_len) == Some(b'\'') {
                for _ in 0..=ch_len {
                    cur.bump();
                }
                push(out, TokenKind::Char, start, cur, line);
            } else {
                push(out, TokenKind::Punct, start, cur, line);
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek(0) == Some(b'0')
        && matches!(
            cur.peek(1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        )
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        return TokenKind::Int;
    }
    cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
    let mut float = false;
    if cur.peek(0) == Some(b'.') {
        match cur.peek(1) {
            // `1.0`: fraction digits follow.
            Some(d) if d.is_ascii_digit() => {
                cur.bump();
                cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
                float = true;
            }
            // `1..2` is a range, `1.max()` a method call: the dot is
            // not part of the number.
            Some(b'.') => {}
            Some(b) if is_ident_start(b) => {}
            // `1.` with nothing number-ish after: a float.
            _ => {
                cur.bump();
                float = true;
            }
        }
    }
    // Exponent: `1e9`, `2.5E-3`.
    if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
        let (sign, digit) = (cur.peek(1), cur.peek(2));
        let direct_digit = sign.is_some_and(|b| b.is_ascii_digit());
        let signed_digit =
            matches!(sign, Some(b'+') | Some(b'-')) && digit.is_some_and(|b| b.is_ascii_digit());
        if direct_digit || signed_digit {
            cur.bump(); // e
            if signed_digit {
                cur.bump(); // sign
            }
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
            float = true;
        }
    }
    // Type suffix (`u32`, `f64`, …): an `f` suffix makes it a float.
    if cur.peek(0).is_some_and(is_ident_start) {
        if cur.peek(0) == Some(b'f') {
            float = true;
        }
        cur.eat_while(is_ident_continue);
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

/// Identifier, or a string with an `r` / `b` / `br` prefix, or a raw
/// identifier `r#name`.
fn lex_ident_or_prefixed_string(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let start = cur.pos;
    let line = cur.line;
    cur.eat_while(is_ident_continue);
    let ident = cur.src.get(start..cur.pos).unwrap_or("");
    match ident {
        "r" | "br" | "rb" => match cur.peek(0) {
            Some(b'"') => {
                lex_raw_string(cur);
                push(out, TokenKind::Str, start, cur, line);
                return;
            }
            Some(b'#') => {
                // `r#"…"#` raw string vs `r#ident` raw identifier.
                let mut i = 0;
                while cur.peek(i) == Some(b'#') {
                    i += 1;
                }
                if cur.peek(i) == Some(b'"') {
                    lex_raw_string(cur);
                    push(out, TokenKind::Str, start, cur, line);
                    return;
                }
                if i == 1 && cur.peek(1).is_some_and(is_ident_start) {
                    cur.bump(); // '#'
                    cur.eat_while(is_ident_continue);
                }
            }
            _ => {}
        },
        "b" => {
            if cur.peek(0) == Some(b'"') {
                lex_cooked_string(cur);
                push(out, TokenKind::Str, start, cur, line);
                return;
            }
            if cur.peek(0) == Some(b'\'') {
                // Byte literal `b'x'`: reuse the tick lexer and patch
                // the span back to include the `b`.
                let before = out.tokens.len();
                lex_tick(cur, out);
                if out.tokens.len() > before {
                    if let Some(tok) = out.tokens.last_mut() {
                        tok.start = cur.boundary(start);
                    }
                }
                return;
            }
        }
        _ => {}
    }
    push(out, TokenKind::Ident, start, cur, line);
}

fn lex_punct(cur: &mut Cursor<'_>) {
    for op in COMPOUND_OPS {
        let bytes = op.as_bytes();
        if (0..bytes.len()).all(|i| cur.peek(i) == Some(bytes[i])) {
            for _ in 0..bytes.len() {
                cur.bump();
            }
            return;
        }
    }
    // Single char (multi-byte chars consumed whole so spans stay on
    // boundaries).
    if let Some(b) = cur.peek(0) {
        for _ in 0..utf8_len(b) {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_ops_and_numbers() {
        let got = texts("let x = a.b_2 == 1.5e3;");
        let kinds: Vec<_> = got.iter().map(|(k, t)| (*k, t.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "b_2"),
                (TokenKind::Punct, "=="),
                (TokenKind::Float, "1.5e3"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn nested_block_comments_hide_their_contents() {
        let src = "a /* x.unwrap() /* nested */ still comment */ b";
        let got = texts(src);
        assert_eq!(
            got,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Ident, "b".into())
            ]
        );
    }

    #[test]
    fn multi_line_block_comment_tracks_lines() {
        let src = "/* one\ntwo\nthree */ x";
        let lexed = lex(src);
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn raw_strings_with_hashes_and_newlines() {
        let src = "let s = r#\"panic!(\"inner\")\nline2\"#; t";
        let got = texts(src);
        assert!(got.contains(&(TokenKind::Str, "r#\"panic!(\"inner\")\nline2\"#".into())));
        assert_eq!(got.last(), Some(&(TokenKind::Ident, "t".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let got = texts(r##"b"bytes" b'x' br#"raw"#"##);
        assert_eq!(got[0], (TokenKind::Str, "b\"bytes\"".into()));
        assert_eq!(got[1], (TokenKind::Char, "b'x'".into()));
        assert_eq!(got[2].0, TokenKind::Str);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        let got = texts("r#match");
        assert_eq!(got, vec![(TokenKind::Ident, "r#match".into())]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let got = texts("fn f<'a>(c: char) { let x = 'y'; let n = '\\n'; }");
        assert!(got.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(got.contains(&(TokenKind::Char, "'y'".into())));
        assert!(got.contains(&(TokenKind::Char, "'\\n'".into())));
    }

    #[test]
    fn tuple_index_and_range_are_not_floats() {
        let got = texts("x.0 1..2 3.max(4) 5.");
        assert!(got.contains(&(TokenKind::Int, "0".into())));
        assert!(got.contains(&(TokenKind::Int, "1".into())));
        assert!(got.contains(&(TokenKind::Punct, "..".into())));
        assert!(got.contains(&(TokenKind::Int, "3".into())));
        assert!(got.contains(&(TokenKind::Float, "5.".into())));
    }

    #[test]
    fn directives_are_captured_with_lines() {
        let src = "// lint: hot-path\nfn f() {}\n//   lint: allow(no-expect) -- reason\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 2);
        assert_eq!(lexed.directives[0].line, 1);
        assert_eq!(lexed.directives[0].body, "hot-path");
        assert_eq!(lexed.directives[1].line, 3);
        assert_eq!(lexed.directives[1].body, "allow(no-expect) -- reason");
    }

    #[test]
    fn unterminated_constructs_lex_to_eof() {
        assert!(lex("\"never closed").tokens.len() == 1);
        assert!(lex("/* never closed").tokens.is_empty());
        assert!(lex("r#\"never closed").tokens.len() == 1);
        let _ = lex("'");
        let _ = lex("b");
        let _ = lex("r#");
    }

    #[test]
    fn spans_are_monotonic_and_on_boundaries() {
        let src = "let s = \"héllo\"; // é\nfn f() { 'é' }";
        let lexed = lex(src);
        let mut prev_end = 0;
        for t in &lexed.tokens {
            assert!(t.start >= prev_end);
            assert!(t.end <= src.len());
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prev_end = t.end;
        }
    }
}
