//! Stable finding fingerprints and the ratcheting baseline.
//!
//! A fingerprint must survive unrelated edits (line shifts, neighbouring
//! code churn) but change when the finding itself moves or mutates, so
//! it hashes *what* and *where-structurally*, never the line number:
//!
//! ```text
//! fnv1a64(rule ‖ path ‖ enclosing-fn ‖ whitespace-normalised excerpt ‖ ordinal)
//! ```
//!
//! The ordinal disambiguates identical excerpts inside one function
//! (first `x.clone()` vs. second). Renaming the function or editing the
//! offending line re-fingerprints the finding — by design: a changed
//! line deserves a fresh look, not a grandfathered pass.
//!
//! The baseline (`ci/lint_baseline.json`) is the ratchet: findings whose
//! fingerprints it lists are tolerated *legacy debt*; anything new fails
//! `--deny`, and a baseline entry matching no current finding is itself
//! a failure (`stale-baseline`), so the file can only shrink. The same
//! one-way policy the allowlist has had since PR 5, now at
//! per-finding granularity.

use crate::json::{self, Json};

/// One tolerated legacy finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Fingerprint of the tolerated finding.
    pub fingerprint: String,
    /// Rule id, for human readers of the baseline file.
    pub rule: String,
    /// Workspace-relative path, for human readers.
    pub path: String,
    /// Optional context note.
    pub note: String,
}

/// Parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// True when `fingerprint` is a tolerated legacy finding.
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.iter().any(|e| e.fingerprint == fingerprint)
    }
}

/// 64-bit FNV-1a over `parts` with a separator byte between parts.
pub fn fnv1a64(parts: &[&str]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        for b in part.bytes() {
            eat(b);
        }
        eat(0x1f); // unit separator: "ab"+"c" must differ from "a"+"bc"
    }
    hash
}

/// Collapses runs of whitespace so formatting churn does not
/// re-fingerprint a finding.
pub fn normalize_excerpt(excerpt: &str) -> String {
    let mut out = String::with_capacity(excerpt.len());
    let mut last_space = true;
    for c in excerpt.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Computes the stable fingerprint for one finding.
pub fn fingerprint(rule: &str, path: &str, scope: &str, excerpt: &str, ordinal: usize) -> String {
    let norm = normalize_excerpt(excerpt);
    let ord = ordinal.to_string();
    format!("{:016x}", fnv1a64(&[rule, path, scope, &norm, &ord]))
}

/// Parses `ci/lint_baseline.json`. Unknown keys are ignored so the
/// format can grow; a missing `fingerprint` is an error.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline: {e}"))?;
    let mut baseline = Baseline::default();
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or_else(|| "baseline: missing `findings` array".to_string())?;
    for (idx, item) in findings.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_default()
        };
        let fp = field("fingerprint");
        if fp.is_empty() {
            return Err(format!("baseline: entry {idx} has no fingerprint"));
        }
        baseline.entries.push(BaselineEntry {
            fingerprint: fp,
            rule: field("rule"),
            path: field("path"),
            note: field("note"),
        });
    }
    Ok(baseline)
}

/// Renders a baseline document for `--write-baseline`. Entries are
/// sorted by (path, rule, fingerprint) so regeneration is diff-stable.
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut sorted: Vec<&BaselineEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, &a.rule, &a.fingerprint).cmp(&(&b.path, &b.rule, &b.fingerprint))
    });
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str("  \"policy\": \"ratchet: new findings fail CI; entries may only be removed\",\n");
    out.push_str("  \"findings\": [");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"fingerprint\": \"");
        out.push_str(&json::escape(&e.fingerprint));
        out.push_str("\", \"rule\": \"");
        out.push_str(&json::escape(&e.rule));
        out.push_str("\", \"path\": \"");
        out.push_str(&json::escape(&e.path));
        out.push_str("\", \"note\": \"");
        out.push_str(&json::escape(&e.note));
        out.push_str("\"}");
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_across_line_shifts_but_not_edits() {
        let a = fingerprint(
            "no-unwrap",
            "crates/core/src/x.rs",
            "decide",
            "x.unwrap()",
            0,
        );
        let b = fingerprint(
            "no-unwrap",
            "crates/core/src/x.rs",
            "decide",
            "  x.unwrap()  ",
            0,
        );
        assert_eq!(a, b, "whitespace normalisation");
        let c = fingerprint(
            "no-unwrap",
            "crates/core/src/x.rs",
            "decide",
            "y.unwrap()",
            0,
        );
        assert_ne!(a, c, "edited excerpt re-fingerprints");
        let d = fingerprint(
            "no-unwrap",
            "crates/core/src/x.rs",
            "decide",
            "x.unwrap()",
            1,
        );
        assert_ne!(a, d, "ordinal disambiguates duplicates");
    }

    #[test]
    fn separator_prevents_field_bleed() {
        assert_ne!(fnv1a64(&["ab", "c"]), fnv1a64(&["a", "bc"]));
    }

    #[test]
    fn parse_and_render_round_trip() {
        let entries = vec![BaselineEntry {
            fingerprint: "00deadbeef001234".into(),
            rule: "float-eq".into(),
            path: "crates/core/src/x.rs".into(),
            note: "legacy".into(),
        }];
        let text = render(&entries);
        let parsed = parse(&text).expect("round trips");
        assert_eq!(parsed.entries, entries);
        assert!(parsed.contains("00deadbeef001234"));
        assert!(!parsed.contains("ffff"));
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let text = render(&[]);
        let parsed = parse(&text).expect("parses");
        assert!(parsed.entries.is_empty());
    }

    #[test]
    fn missing_fingerprint_is_an_error() {
        assert!(parse("{\"findings\": [{\"rule\": \"x\"}]}").is_err());
        assert!(parse("{\"nope\": 1}").is_err());
    }
}
