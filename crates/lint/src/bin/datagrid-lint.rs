//! CLI for the datagrid source conformance scanner.
//!
//! ```text
//! datagrid-lint [--deny-all] [--root <path>]
//! ```
//!
//! Advisory by default: findings print but the exit code stays 0 so a
//! developer can run it mid-refactor. `--deny-all` is the CI mode — any
//! finding (including a stale allowlist entry) exits 1. `--root` points
//! at the workspace root when invoked from elsewhere; it defaults to the
//! current directory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("datagrid-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: datagrid-lint [--deny-all] [--root <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("datagrid-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match datagrid_lint::run(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("datagrid-lint: {err}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "datagrid-lint: {} file(s) scanned, {} finding(s), {} allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.allowed
    );
    if deny_all && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
