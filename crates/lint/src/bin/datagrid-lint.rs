//! CLI for the datagrid token-level static analyzer.
//!
//! ```text
//! datagrid-lint [--deny] [--deny-all] [--root <path>]
//!               [--baseline <path>] [--write-baseline]
//!               [--json <path>]
//! ```
//!
//! Advisory by default: findings print but the exit code stays 0 so a
//! developer can run it mid-refactor. `--deny` is the CI mode — any
//! *new* (unbaselined) finding, stale allowlist entry, or stale baseline
//! entry exits 1. `--deny-all` additionally fails on baselined findings,
//! for burn-down sprints. `--baseline` overrides the default
//! `<root>/ci/lint_baseline.json`; `--write-baseline` regenerates that
//! file from the current findings (ratchet reset — review the diff).
//! `--json` writes the machine-readable findings artifact.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: datagrid-lint [--deny] [--deny-all] [--root <path>] [--baseline <path>] [--write-baseline] [--json <path>]";

fn main() -> ExitCode {
    let mut deny = false;
    let mut deny_all = false;
    let mut write_baseline = false;
    let mut root = PathBuf::from(".");
    let mut opts = datagrid_lint::Options::default();
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--deny-all" => deny_all = true,
            "--write-baseline" => write_baseline = true,
            "--root" | "--baseline" | "--json" => {
                let Some(p) = args.next() else {
                    eprintln!("datagrid-lint: {arg} needs a path");
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--root" => root = PathBuf::from(p),
                    "--baseline" => opts.baseline_path = Some(PathBuf::from(p)),
                    _ => json_out = Some(PathBuf::from(p)),
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("datagrid-lint: unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match datagrid_lint::run_with(&root, &opts) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("datagrid-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(err) = std::fs::write(path, datagrid_lint::render_findings_json(&report)) {
            eprintln!("datagrid-lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    if write_baseline {
        let path = opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| root.join("ci").join("lint_baseline.json"));
        if let Err(err) = std::fs::write(&path, datagrid_lint::render_baseline(&report)) {
            eprintln!("datagrid-lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("datagrid-lint: baseline written to {}", path.display());
        return ExitCode::SUCCESS;
    }

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "datagrid-lint: {} file(s) scanned, {} new finding(s), {} baselined, {} allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.baselined.len(),
        report.allowed
    );
    if (deny || deny_all) && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    if deny_all && !report.baselined.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
