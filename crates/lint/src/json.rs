//! Minimal JSON reader/writer for the findings artifact and the
//! ratcheting baseline.
//!
//! Hand-rolled on purpose: the lint crate is the workspace's
//! dependency-free conformance layer, so it cannot pull in serde. The
//! parser accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null); the writer emits deterministic output —
//! object keys in insertion order, `\u` escapes only where required.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the baseline only uses small ints).
    Num(f64),
    /// String value.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse error with byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data", pos));
    }
    Ok(value)
}

fn err(message: &str, at: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        at,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(text, bytes, pos),
        Some(b'[') => parse_arr(text, bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b'-') | Some(b'0'..=b'9') => parse_num(text, bytes, pos),
        _ => Err(err("expected a JSON value", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err("bad literal", *pos))
    }
}

fn parse_num(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    text.get(start..*pos)
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| err("bad number", start))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = text
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("short \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one whole UTF-8 char.
                let rest = text.get(*pos..).ok_or_else(|| err("bad utf-8", *pos))?;
                let ch = rest.chars().next().ok_or_else(|| err("bad utf-8", *pos))?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(text, bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(text, bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

fn parse_arr(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(text, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_shape() {
        let text = r#"{
            "version": 2,
            "findings": [
                {"fingerprint": "abc123", "rule": "float-eq", "line": 7, "note": "legacy \"quoted\""}
            ]
        }"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("version").and_then(Json::as_num), Some(2.0));
        let findings = v.get("findings").and_then(Json::as_arr).expect("arr");
        assert_eq!(
            findings[0].get("fingerprint").and_then(Json::as_str),
            Some("abc123")
        );
        assert_eq!(
            findings[0].get("note").and_then(Json::as_str),
            Some("legacy \"quoted\"")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_unicode_escapes_and_numbers() {
        let v = parse("{\"s\": \"\\u0041\", \"n\": -1.5e2}").expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("A"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(-150.0));
    }
}
