//! Per-file item index on top of the token stream.
//!
//! The index gives every rule the same three answers the v1 line
//! scanner faked with brace counting:
//!
//! 1. **Is this token test code?** `#[cfg(test)]` attributes are
//!    resolved at token level (including `cfg(any(test, …))`, one-line
//!    `#[cfg(test)] mod tests { … }`, and attribute stacks), producing
//!    token spans that rules skip.
//! 2. **Which function owns this token?** Every `fn` item is recorded
//!    with its name and the token range of its body, so findings carry
//!    a stable scope and the call graph has nodes to connect.
//! 3. **What did the author annotate?** `// lint: hot-path` marks the
//!    next `fn` as a hot-path root; `// lint: allow(<rule>) -- <reason>`
//!    suppresses that rule on the directive's own line and the line
//!    below. Unattached or malformed directives are reported, so the
//!    annotation layer cannot rot silently.

use crate::lexer::{Lexed, Token, TokenKind};

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Bare function name (last path segment only).
    pub name: String,
    /// Token index of the name.
    pub name_token: usize,
    /// 1-based source line of the signature.
    pub line: u32,
    /// Token indices of the body's `{` and its matching `}`; `None` for
    /// bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// True when the item lives under `#[cfg(test)]` (or the whole file
    /// is test code by path).
    pub is_test: bool,
    /// True when a `// lint: hot-path` directive annotates this item.
    pub hot_root: bool,
    /// Self type of the enclosing `impl` block, if any — the last path
    /// segment (`impl fmt::Display for Finding` → `Finding`). Lets the
    /// call graph resolve `Type::name(…)` to the right `fn name`.
    pub owner: Option<String>,
}

/// A site-level suppression: `// lint: allow(<rule>) -- <reason>`.
/// Applies to findings on the directive's line and the next line, so it
/// works both as a trailing comment and as a line above.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    /// Rule identifier being suppressed.
    pub rule: String,
    /// Mandatory audit note.
    pub reason: String,
    /// 1-based line of the directive.
    pub line: u32,
}

/// Everything the analyzer knows about one file's structure.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Indexed functions, in source order.
    pub items: Vec<Item>,
    /// Token-index spans (inclusive) that are `#[cfg(test)]` code.
    pub test_spans: Vec<(usize, usize)>,
    /// Site-level suppressions.
    pub allows: Vec<InlineAllow>,
    /// `lint:` directives that did not parse: (line, body).
    pub bad_directives: Vec<(u32, String)>,
    /// `hot-path` directive lines that attached to no function.
    pub stale_hot: Vec<u32>,
    /// Whole file is test code (path under `tests/`, or `#![cfg(test)]`).
    pub file_test: bool,
    /// For each token index of a `{`, the token index of its matching
    /// `}` (self for unbalanced opens).
    pub brace_match: Vec<usize>,
}

impl FileIndex {
    /// True when the token at `tok` is inside test code.
    pub fn in_test(&self, tok: usize) -> bool {
        self.file_test
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| tok >= lo && tok <= hi)
    }

    /// Index of the innermost function whose body contains `tok`.
    pub fn enclosing_item(&self, tok: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span len, idx)
        for (idx, item) in self.items.iter().enumerate() {
            if let Some((open, close)) = item.body {
                if tok >= open && tok <= close {
                    let len = close - open;
                    if best.map(|(l, _)| len < l).unwrap_or(true) {
                        best = Some((len, idx));
                    }
                }
            }
        }
        best.map(|(_, idx)| idx)
    }
}

fn is(tok: &Token, src: &str, kind: TokenKind, text: &str) -> bool {
    tok.kind == kind && tok.text(src) == text
}

/// Builds the index for one lexed file. `file_test` marks files whose
/// path already exempts them (integration tests).
pub fn index_file(src: &str, lexed: &Lexed, file_test: bool) -> FileIndex {
    let toks = &lexed.tokens;
    let mut out = FileIndex {
        file_test,
        brace_match: vec![0; toks.len()],
        ..FileIndex::default()
    };

    // --- Pass 1: brace matching -----------------------------------------
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if is(t, src, TokenKind::Punct, "{") {
            out.brace_match[i] = i; // provisional: unbalanced opens match themselves
            stack.push(i);
        } else if is(t, src, TokenKind::Punct, "}") {
            if let Some(open) = stack.pop() {
                out.brace_match[open] = i;
            }
        }
    }

    // --- Pass 2: cfg(test) spans ----------------------------------------
    // `armed` holds the brace depth at which a `#[cfg(test)]` attribute
    // is waiting for its item's block; a `;` at that depth (bodiless
    // item) disarms it.
    let mut depth = 0usize;
    let mut armed: Option<usize> = None;
    let mut test_stack: Vec<bool> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if is(t, src, TokenKind::Punct, "#") {
            let inner = i + 1 < toks.len() && is(&toks[i + 1], src, TokenKind::Punct, "!");
            let open = i + if inner { 2 } else { 1 };
            if open < toks.len() && is(&toks[open], src, TokenKind::Punct, "[") {
                let close = matching_bracket(toks, src, open);
                if attr_is_cfg_test(toks, src, open, close) {
                    if inner && depth == 0 {
                        out.file_test = true;
                    } else {
                        armed = Some(depth);
                    }
                }
                i = close + 1;
                continue;
            }
        } else if is(t, src, TokenKind::Punct, "{") {
            let parent_test = test_stack.last().copied().unwrap_or(false);
            let this_test = parent_test || armed == Some(depth);
            if armed == Some(depth) {
                armed = None;
            }
            if this_test && !parent_test {
                out.test_spans.push((i, out.brace_match[i]));
            }
            test_stack.push(this_test);
            depth += 1;
        } else if is(t, src, TokenKind::Punct, "}") {
            test_stack.pop();
            depth = depth.saturating_sub(1);
        } else if is(t, src, TokenKind::Punct, ";") && armed == Some(depth) {
            armed = None;
        }
        i += 1;
    }

    // --- Pass 3: directives ----------------------------------------------
    // Parsed up front so hot-path lines can be consumed by pass 4.
    let mut hot_lines: Vec<(u32, bool)> = Vec::new(); // (line, consumed)
    for d in &lexed.directives {
        if d.body == "hot-path" {
            hot_lines.push((d.line, false));
        } else if let Some(rest) = d.body.strip_prefix("allow(") {
            match parse_allow(rest) {
                Some((rule, reason)) => out.allows.push(InlineAllow {
                    rule,
                    reason,
                    line: d.line,
                }),
                None => out.bad_directives.push((d.line, d.body.clone())),
            }
        } else {
            out.bad_directives.push((d.line, d.body.clone()));
        }
    }

    // --- Pass 4: impl blocks ----------------------------------------------
    // (body open, body close, self type) for owner attribution.
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is(&toks[i], src, TokenKind::Ident, "impl") {
            if let Some(entry) = parse_impl_head(toks, src, i, &out.brace_match) {
                impls.push(entry);
            }
        }
        i += 1;
    }

    // --- Pass 5: fn items -------------------------------------------------
    let mut i = 0usize;
    while i < toks.len() {
        if is(&toks[i], src, TokenKind::Ident, "fn")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
        {
            let name_token = i + 1;
            let line = toks[name_token].line;
            let body = find_body(toks, src, name_token + 1, &out.brace_match);
            // A span from `#[cfg(test)] fn lone() { … }` starts at the
            // body brace, after the name token — check both.
            let is_test =
                out.in_test(name_token) || body.is_some_and(|(open, _)| out.in_test(open));
            // A hot-path directive attaches to the first fn at or below
            // its line, within 8 lines (room for doc comments and
            // attributes in between).
            let mut hot_root = false;
            for (dline, consumed) in hot_lines.iter_mut() {
                if !*consumed && *dline <= line && line - *dline <= 8 {
                    *consumed = true;
                    hot_root = true;
                    break;
                }
            }
            // Innermost impl block containing the name token.
            let owner = impls
                .iter()
                .filter(|(open, close, _)| name_token > *open && name_token < *close)
                .min_by_key(|(open, close, _)| close - open)
                .map(|(_, _, ty)| ty.clone());
            out.items.push(Item {
                name: toks[name_token].text(src).to_string(),
                name_token,
                line,
                body,
                is_test,
                hot_root,
                owner,
            });
        }
        i += 1;
    }
    for (dline, consumed) in &hot_lines {
        if !consumed {
            out.stale_hot.push(*dline);
        }
    }
    out
}

/// Parses an `impl` head starting at token `i` into its body span and
/// self type name: the last path-segment ident before the body brace
/// (after `for` when present, so `impl fmt::Display for Finding` →
/// `Finding`, `impl<T> Grid<T>` → `Grid`). Returns `None` when no body
/// brace follows (e.g. the `impl` keyword in `impl Trait` return types).
fn parse_impl_head(
    toks: &[Token],
    src: &str,
    i: usize,
    brace_match: &[usize],
) -> Option<(usize, usize, String)> {
    let mut angle = 0i64;
    let mut last_ident: Option<&str> = None;
    let mut frozen = false; // set once a `where` clause starts
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokenKind::Punct => match t.text(src) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" if angle <= 0 => {
                    let name = last_ident?;
                    return Some((
                        j,
                        brace_match.get(j).copied().unwrap_or(j),
                        name.to_string(),
                    ));
                }
                ";" if angle <= 0 => return None,
                _ => {}
            },
            TokenKind::Ident if angle <= 0 && !frozen => {
                let text = t.text(src);
                if text == "for" {
                    last_ident = None; // self type comes after `for`
                } else if text == "where" {
                    frozen = true;
                } else {
                    last_ident = Some(text);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// `allow(<rule>) -- <reason>` body after the opening paren.
fn parse_allow(rest: &str) -> Option<(String, String)> {
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let after = rest[close + 1..].trim();
    let reason = after.strip_prefix("--")?.trim();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}

/// Token index of the `]` closing the `[` at `open` (or the last token).
fn matching_bracket(toks: &[Token], src: &str, open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is(t, src, TokenKind::Punct, "[") {
            depth += 1;
        } else if is(t, src, TokenKind::Punct, "]") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// True when the attribute tokens in `(open, close)` are a
/// `cfg(… test …)` that is not `cfg(not(test))`.
fn attr_is_cfg_test(toks: &[Token], src: &str, open: usize, close: usize) -> bool {
    let mut saw_cfg_head = false;
    let mut saw_test = false;
    let mut saw_not = false;
    for (j, t) in toks
        .iter()
        .enumerate()
        .skip(open + 1)
        .take_while(|(j, _)| *j < close)
    {
        if t.kind == TokenKind::Ident {
            match t.text(src) {
                "cfg" if j == open + 1 => saw_cfg_head = true,
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
        }
    }
    saw_cfg_head && saw_test && !saw_not
}

/// Scans forward from just past the fn name for the body `{`, skipping
/// generics, the parameter list, the return type and any where-clause.
/// Returns the `{`/`}` token pair, or `None` at a `;` (no body).
fn find_body(
    toks: &[Token],
    src: &str,
    mut i: usize,
    brace_match: &[usize],
) -> Option<(usize, usize)> {
    // Generic parameters: angle-bracket counting (`<<`/`>>` count twice).
    if i < toks.len() && is(&toks[i], src, TokenKind::Punct, "<") {
        let mut angle = 0i64;
        while i < toks.len() {
            match toks[i].text(src) {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            i += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    // Parameter list.
    let mut paren = 0i64;
    let mut seen_params = false;
    while i < toks.len() {
        let text = toks[i].text(src);
        if toks[i].kind == TokenKind::Punct {
            match text {
                "(" => {
                    paren += 1;
                    seen_params = true;
                }
                ")" => paren -= 1,
                _ => {}
            }
        }
        i += 1;
        if seen_params && paren == 0 {
            break;
        }
    }
    // Return type / where clause up to `{` or `;`.
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match t.text(src) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => {
                    return Some((i, brace_match.get(i).copied().unwrap_or(i)));
                }
                ";" if paren == 0 && bracket == 0 => return None,
                "}" if paren == 0 && bracket == 0 => return None, // ran out of item
                _ => {}
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> FileIndex {
        index_file(src, &lex(src), false)
    }

    #[test]
    fn indexes_functions_with_bodies_and_names() {
        let src = "pub fn alpha(x: u32) -> u32 { x + 1 }\nfn beta<T: Clone>(t: T) { let _ = t; }\nfn decl();\n";
        let idx = index(src);
        let names: Vec<_> = idx.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "decl"]);
        assert!(idx.items[0].body.is_some());
        assert!(idx.items[1].body.is_some());
        assert!(idx.items[2].body.is_none());
    }

    #[test]
    fn cfg_test_spans_cover_mods_and_single_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n#[cfg(test)]\nfn lone() {}\n";
        let idx = index(src);
        let by_name = |n: &str| idx.items.iter().find(|i| i.name == n).expect("item");
        assert!(!by_name("live").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("lone").is_test);
    }

    #[test]
    fn cfg_any_test_counts_but_cfg_not_test_does_not() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod a { fn f() {} }\n#[cfg(not(test))]\nmod b { fn g() {} }\n";
        let idx = index(src);
        let by_name = |n: &str| idx.items.iter().find(|i| i.name == n).expect("item");
        assert!(by_name("f").is_test);
        assert!(!by_name("g").is_test);
    }

    #[test]
    fn one_line_cfg_test_mod_is_scoped() {
        let src = "#[cfg(test)] mod tests { fn f() {} }\nfn live() {}\n";
        let idx = index(src);
        assert!(idx.items.iter().find(|i| i.name == "f").expect("f").is_test);
        assert!(
            !idx.items
                .iter()
                .find(|i| i.name == "live")
                .expect("live")
                .is_test
        );
    }

    #[test]
    fn bodiless_cfg_test_disarms_on_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let idx = index(src);
        assert!(
            !idx.items
                .iter()
                .find(|i| i.name == "live")
                .expect("live")
                .is_test
        );
    }

    #[test]
    fn hot_path_directive_attaches_to_next_fn() {
        let src = "// lint: hot-path\n/// Docs between directive and item are fine.\npub fn solve() {}\nfn cold() {}\n";
        let idx = index(src);
        assert!(idx.items[0].hot_root, "solve should be a hot root");
        assert!(!idx.items[1].hot_root);
        assert!(idx.stale_hot.is_empty());
    }

    #[test]
    fn unattached_hot_directive_is_reported() {
        let src = "// lint: hot-path\n\n\n\n\n\n\n\n\n\nstatic X: u32 = 0;\n";
        let idx = index(src);
        assert_eq!(idx.stale_hot, vec![1]);
    }

    #[test]
    fn inline_allow_parses_rule_and_reason() {
        let src = "fn f() {} // lint: allow(no-expect) -- audited: invariant\n// lint: allow(bad syntax\nfn g() {}\n";
        let idx = index(src);
        assert_eq!(idx.allows.len(), 1);
        assert_eq!(idx.allows[0].rule, "no-expect");
        assert_eq!(idx.allows[0].reason, "audited: invariant");
        assert_eq!(idx.bad_directives.len(), 1);
    }

    #[test]
    fn enclosing_item_prefers_innermost() {
        let src = "fn outer() {\n    fn inner() { let x = 1; }\n}\n";
        let idx = index(src);
        let lexed = lex(src);
        // Find the token for `x`.
        let xt = lexed
            .tokens
            .iter()
            .position(|t| t.text(src) == "x")
            .expect("x token");
        let item = idx.enclosing_item(xt).expect("enclosed");
        assert_eq!(idx.items[item].name, "inner");
    }
}
