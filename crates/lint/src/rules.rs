//! Rule families over the token stream, item index and call graph.
//!
//! Legacy v1 rules (`no-unwrap`, `no-expect`, `no-panic`,
//! `no-wallclock`, `no-hashmap-export`, `no-println`) are re-implemented
//! on tokens, which fixes the v1 sanitizer's blind spots: nothing inside
//! a multi-line block comment or raw string can match, and nothing real
//! can hide in one.
//!
//! New families:
//!
//! - **`alloc-in-hot-path`** — allocation constructors
//!   (`Vec::new`/`with_capacity`/`from`, `Box::new`, `vec!`, `format!`,
//!   `.collect()`, `.clone()`, `.to_string()`, `.to_owned()`,
//!   `.to_vec()`) inside any function reachable from a
//!   `// lint: hot-path` root. The static twin of the counting-allocator
//!   tests: those prove the steady state allocates zero bytes at two
//!   probe points; this rule watches every line of every function the
//!   hot path can reach. Amortised-growth calls (`Vec::push`) are out of
//!   scope — the dynamic probes own those.
//! - **`hash-iter-export`** — `HashMap`/`HashSet` mentioned in any
//!   function reachable from an export root (`render_*`, `*snapshot*`,
//!   `emit_*`, …): hash iteration order must never feed a rendered
//!   artifact. Extends the crate-scoped `no-hashmap-export`.
//! - **`float-eq`** — `==`/`!=` adjacent to a float literal outside the
//!   sanctioned comparison modules (solver tolerances live there on
//!   purpose).
//! - **`cast-narrowing`** — `<id-ish> as <narrower int>` where the
//!   source reads like an identifier or counter (`…id`, `…count`,
//!   `len`, `seq`, `epoch`, `slot`, `version`, …): ids must not be
//!   silently truncated as the federation work multiplies their range.
//! - **`wildcard-match`** — `_ =>` arms in matches over the event/state
//!   enums that `core::grid::modelcheck` explores exhaustively; a new
//!   variant must be handled (or rejected) explicitly, never absorbed.

use crate::index::FileIndex;
use crate::lexer::{Lexed, TokenKind};

/// Analyzer configuration: which crates get which scoped rules, which
/// modules may compare floats, which enums must be matched exhaustively.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose clocks must come from the simulation.
    pub simulation_crates: Vec<String>,
    /// Crates whose whole artifact surface bans `HashMap`.
    pub export_crates: Vec<String>,
    /// Crates whose purpose is console reporting (exempt `no-println`).
    pub console_crates: Vec<String>,
    /// Workspace-relative paths allowed to compare floats exactly
    /// (tolerance/verification modules).
    pub sanctioned_float_paths: Vec<String>,
    /// Enums whose matches must not use `_ =>`.
    pub watched_enums: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            simulation_crates: to_owned(&["simnet", "sysmon", "gridftp", "catalog", "core", "obs"]),
            export_crates: to_owned(&["obs"]),
            console_crates: to_owned(&["bench", "lint"]),
            sanctioned_float_paths: to_owned(&[
                // Solver certificates compare against explicit tolerances.
                "crates/simnet/src/verify.rs",
                // Summary statistics order NaN-free samples exactly.
                "crates/simnet/src/stats.rs",
            ]),
            watched_enums: to_owned(&["EventKind", "FaultKind", "ModelPhase", "ReplayStatus"]),
        }
    }
}

fn to_owned(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|s| (*s).to_string()).collect()
}

/// Everything `scan_file` needs about one file.
pub struct FileContext<'a> {
    /// Analyzer configuration.
    pub cfg: &'a Config,
    /// Directory name under `crates/`.
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// File source.
    pub src: &'a str,
    /// Token stream.
    pub lexed: &'a Lexed,
    /// Item index.
    pub index: &'a FileIndex,
    /// Per-item hot-path reachability (parallel to `index.items`).
    pub hot: &'a [bool],
    /// Per-item export reachability (parallel to `index.items`).
    pub export: &'a [bool],
    /// True for `src/bin/*` / `main.rs` entry points.
    pub is_bin: bool,
}

/// A rule hit before excerpt/fingerprint assembly: rule id, 1-based
/// line, and the triggering token index (`None` for file-level hits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// Stable rule identifier.
    pub rule: &'static str,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// Index of the triggering token, for scope attribution.
    pub token: Option<usize>,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];
const ALLOC_CONTAINERS: [&str; 10] = [
    "Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
const ALLOC_METHODS: [&str; 6] = [
    "collect",
    "cloned",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
const ID_SUFFIXES: [&str; 9] = [
    "id", "idx", "index", "count", "len", "seq", "epoch", "slot", "version",
];

fn text<'a>(ctx: &FileContext<'a>, i: usize) -> &'a str {
    ctx.lexed
        .tokens
        .get(i)
        .map(|t| t.text(ctx.src))
        .unwrap_or("")
}

fn kind(ctx: &FileContext<'_>, i: usize) -> Option<TokenKind> {
    ctx.lexed.tokens.get(i).map(|t| t.kind)
}

fn is_ident(ctx: &FileContext<'_>, i: usize, any_of: &[&str]) -> bool {
    kind(ctx, i) == Some(TokenKind::Ident) && any_of.contains(&text(ctx, i))
}

fn is_punct(ctx: &FileContext<'_>, i: usize, p: &str) -> bool {
    kind(ctx, i) == Some(TokenKind::Punct) && text(ctx, i) == p
}

/// True when the item owning token `i` is hot-path-reachable.
fn in_hot(ctx: &FileContext<'_>, i: usize) -> bool {
    ctx.index
        .enclosing_item(i)
        .is_some_and(|item| ctx.hot.get(item).copied().unwrap_or(false))
}

fn in_export_reach(ctx: &FileContext<'_>, i: usize) -> bool {
    ctx.index
        .enclosing_item(i)
        .is_some_and(|item| ctx.export.get(item).copied().unwrap_or(false))
}

/// Runs every token-level rule over one file.
pub fn scan_file(ctx: &FileContext<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let toks = &ctx.lexed.tokens;
    let simulation = ctx
        .cfg
        .simulation_crates
        .iter()
        .any(|c| c == ctx.crate_name);
    let export_crate = ctx.cfg.export_crates.iter().any(|c| c == ctx.crate_name);
    let console = ctx.cfg.console_crates.iter().any(|c| c == ctx.crate_name);
    let float_sanctioned = ctx
        .cfg
        .sanctioned_float_paths
        .iter()
        .any(|p| ctx.rel_path == p);
    let watched: Vec<&str> = ctx.cfg.watched_enums.iter().map(String::as_str).collect();

    macro_rules! push {
        ($rule:expr, $i:expr) => {{
            let i = $i;
            out.push(RawFinding {
                rule: $rule,
                line: toks[i].line,
                token: Some(i),
            });
        }};
    }

    for i in 0..toks.len() {
        if ctx.index.in_test(i) {
            continue;
        }

        // --- panic-family and console rules (library code only) -----------
        if !ctx.is_bin {
            if is_punct(ctx, i, ".") && is_punct(ctx, i + 2, "(") {
                if is_ident(ctx, i + 1, &["unwrap"]) {
                    push!("no-unwrap", i + 1);
                } else if is_ident(ctx, i + 1, &["expect"]) {
                    push!("no-expect", i + 1);
                }
            }
            if is_ident(ctx, i, &PANIC_MACROS) && is_punct(ctx, i + 1, "!") {
                push!("no-panic", i);
            }
            if !console && is_ident(ctx, i, &PRINT_MACROS) && is_punct(ctx, i + 1, "!") {
                push!("no-println", i);
            }
        }

        // --- wall clocks in simulation crates ------------------------------
        if simulation
            && is_ident(ctx, i, &["Instant", "SystemTime"])
            && is_punct(ctx, i + 1, "::")
            && is_ident(ctx, i + 2, &["now"])
        {
            push!("no-wallclock", i);
        }

        // --- determinism family --------------------------------------------
        if is_ident(ctx, i, &["HashMap"]) && export_crate {
            push!("no-hashmap-export", i);
        }
        if is_ident(ctx, i, &["HashMap", "HashSet"]) && in_export_reach(ctx, i) {
            push!("hash-iter-export", i);
        }

        // --- alloc-in-hot-path ---------------------------------------------
        if in_hot(ctx, i) {
            if is_ident(ctx, i, &ALLOC_CONTAINERS) && is_punct(ctx, i + 1, "::") {
                // `Vec::new`, `Vec::<u8>::new`, `String::from`, …
                let mut j = i + 2;
                if is_punct(ctx, j, "<") {
                    let mut angle = 0i64;
                    while j < toks.len() {
                        match text(ctx, j) {
                            "<" => angle += 1,
                            "<<" => angle += 2,
                            ">" => angle -= 1,
                            ">>" => angle -= 2,
                            _ => {}
                        }
                        j += 1;
                        if angle <= 0 {
                            break;
                        }
                    }
                    if is_punct(ctx, j, "::") {
                        j += 1;
                    }
                }
                if is_ident(ctx, j, &ALLOC_CTORS) {
                    push!("alloc-in-hot-path", i);
                }
            }
            if is_ident(ctx, i, &ALLOC_MACROS) && is_punct(ctx, i + 1, "!") {
                push!("alloc-in-hot-path", i);
            }
            if is_punct(ctx, i, ".")
                && is_ident(ctx, i + 1, &ALLOC_METHODS)
                && (is_punct(ctx, i + 2, "(") || is_punct(ctx, i + 2, "::"))
            {
                push!("alloc-in-hot-path", i + 1);
            }
        }

        // --- float-safety --------------------------------------------------
        if !float_sanctioned
            && (is_punct(ctx, i, "==") || is_punct(ctx, i, "!="))
            && (kind(ctx, i.wrapping_sub(1)) == Some(TokenKind::Float)
                || kind(ctx, i + 1) == Some(TokenKind::Float)
                || (is_punct(ctx, i + 1, "-") && kind(ctx, i + 2) == Some(TokenKind::Float)))
        {
            push!("float-eq", i);
        }

        // --- cast-narrowing ------------------------------------------------
        if is_ident(ctx, i, &["as"]) && is_ident(ctx, i + 1, &NARROW_INTS) && i > 0 {
            if let Some(name) = cast_source_name(ctx, i - 1) {
                let lower = name.to_ascii_lowercase();
                if ID_SUFFIXES
                    .iter()
                    .any(|s| lower == *s || lower.ends_with(s))
                {
                    push!("cast-narrowing", i);
                }
            }
        }

        // --- wildcard-match ------------------------------------------------
        if is_ident(ctx, i, &["match"]) {
            scan_match(ctx, i, &watched, &mut out);
        }
    }
    out
}

/// The identifier naming the value being cast, looking back from the
/// token before `as`: either a bare ident or, for `x.len() as u32`, the
/// method name before the call parens.
fn cast_source_name<'a>(ctx: &FileContext<'a>, mut j: usize) -> Option<&'a str> {
    if is_punct(ctx, j, ")") {
        // Walk back to the matching open paren.
        let mut depth = 0i64;
        loop {
            match text(ctx, j) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if kind(ctx, j) == Some(TokenKind::Ident) {
        Some(text(ctx, j))
    } else {
        None
    }
}

/// Scans one `match` expression (starting at the `match` keyword) for a
/// `_ =>` arm while any arm pattern references a watched enum.
fn scan_match(ctx: &FileContext<'_>, at: usize, watched: &[&str], out: &mut Vec<RawFinding>) {
    let toks = &ctx.lexed.tokens;
    // Find the body `{`: first brace at zero paren/bracket depth after
    // the scrutinee.
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut open = None;
    for j in at + 1..toks.len() {
        match text(ctx, j) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => {
                open = Some(j);
                break;
            }
            ";" if paren == 0 && bracket == 0 => return, // not a match expr after all
            _ => {}
        }
    }
    let Some(open) = open else { return };
    let close = ctx
        .index
        .brace_match
        .get(open)
        .copied()
        .unwrap_or(open)
        .min(toks.len().saturating_sub(1));

    let mut depth = 1i64; // inside the body
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut in_pattern = true;
    let mut watched_pattern = false;
    let mut wildcards: Vec<usize> = Vec::new();
    for j in open + 1..close {
        let t = text(ctx, j);
        match t {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 1 {
                    in_pattern = true; // end of a block arm body
                }
            }
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "=>" if depth == 1 && paren == 0 && bracket == 0 => in_pattern = false,
            "," if depth == 1 && paren == 0 && bracket == 0 => in_pattern = true,
            _ => {}
        }
        if in_pattern && depth == 1 {
            if kind(ctx, j) == Some(TokenKind::Ident)
                && watched.contains(&t)
                && is_punct(ctx, j + 1, "::")
            {
                watched_pattern = true;
            }
            if t == "_"
                && kind(ctx, j) == Some(TokenKind::Ident)
                && is_punct(ctx, j + 1, "=>")
                && paren == 0
                && bracket == 0
            {
                wildcards.push(j);
            }
        }
    }
    if watched_pattern {
        for w in wildcards {
            out.push(RawFinding {
                rule: "wildcard-match",
                line: toks[w].line,
                token: Some(w),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{self, CrateFile};
    use crate::index::index_file;
    use crate::lexer::lex;

    /// Runs the full single-file pipeline with the default config.
    fn scan(crate_name: &str, rel_path: &str, src: &str) -> Vec<(&'static str, u32)> {
        let cfg = Config::default();
        let lexed = lex(src);
        let index = index_file(src, &lexed, false);
        let files = [CrateFile {
            src,
            lexed: &lexed,
            index: &index,
        }];
        let reach = callgraph::analyze(&files);
        let ctx = FileContext {
            cfg: &cfg,
            crate_name,
            rel_path,
            src,
            lexed: &lexed,
            index: &index,
            hot: &reach.hot[0],
            export: &reach.export[0],
            is_bin: rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs"),
        };
        scan_file(&ctx)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn legacy_rules_fire_outside_tests_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"p\"); }\n#[cfg(test)]\nmod tests {\n    fn g() { z.unwrap(); }\n}\n";
        let got = scan("core", "crates/core/src/x.rs", src);
        assert_eq!(
            got,
            vec![("no-unwrap", 1), ("no-expect", 1), ("no-panic", 1)]
        );
    }

    #[test]
    fn block_comments_and_raw_strings_do_not_trigger() {
        // The v1 sanitizer's two failure modes, now regression-pinned:
        // commented-out code across lines, and violations inside
        // multi-line raw strings.
        let src = "/*\nfn old() { x.unwrap(); }\n*/\nfn f() {\n    let _s = r#\"\n        y.unwrap();\n        panic!(\"inside string\")\n    \"#;\n}\n";
        assert!(scan("core", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_block_comment_close_is_still_scanned() {
        let src = "/* comment\nspanning lines */ fn f() { x.unwrap(); }\n";
        let got = scan("core", "crates/core/src/x.rs", src);
        assert_eq!(got, vec![("no-unwrap", 2)]);
    }

    #[test]
    fn alloc_in_hot_path_fires_only_in_hot_reachable_fns() {
        let src = "// lint: hot-path\nfn settle() { helper(); }\nfn helper() { let v = Vec::new(); let s = x.to_string(); }\nfn cold() { let v = Vec::new(); }\n";
        let got = scan("simnet", "crates/simnet/src/engine.rs", src);
        assert_eq!(
            got,
            vec![("alloc-in-hot-path", 3), ("alloc-in-hot-path", 3)]
        );
    }

    #[test]
    fn alloc_patterns_cover_macros_turbofish_and_ctors() {
        let src = "// lint: hot-path\nfn hot() {\n    let a = vec![1];\n    let b = format!(\"x\");\n    let c = items.iter().collect::<Vec<_>>();\n    let d = Box::new(1);\n    let e = Vec::<u8>::with_capacity(4);\n}\n";
        let got = scan("simnet", "crates/simnet/src/engine.rs", src);
        let lines: Vec<u32> = got.iter().map(|(_, l)| *l).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7]);
        assert!(got.iter().all(|(r, _)| *r == "alloc-in-hot-path"));
    }

    #[test]
    fn float_eq_fires_near_float_literals_but_not_in_sanctioned_files() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert_eq!(
            scan("core", "crates/core/src/factors.rs", src),
            vec![("float-eq", 1)]
        );
        assert!(scan("simnet", "crates/simnet/src/verify.rs", src).is_empty());
        // Integer comparisons never fire.
        assert!(scan(
            "core",
            "crates/core/src/x.rs",
            "fn g(n: u32) -> bool { n == 0 }\n"
        )
        .is_empty());
    }

    #[test]
    fn cast_narrowing_flags_id_like_sources_only() {
        let src = "fn f(flow_id: u64, ratio: f64) {\n    let a = flow_id as u32;\n    let b = items.len() as u32;\n    let c = ratio as u32;\n}\n";
        let got = scan("core", "crates/core/src/x.rs", src);
        assert_eq!(got, vec![("cast-narrowing", 2), ("cast-narrowing", 3)]);
    }

    #[test]
    fn wildcard_match_fires_on_watched_enums_only() {
        let src = "fn f(e: EventKind, n: u32) {\n    match e {\n        EventKind::FlowCompleted => {}\n        _ => {}\n    }\n    match n {\n        0 => {}\n        _ => {}\n    }\n}\n";
        let got = scan("simnet", "crates/simnet/src/x.rs", src);
        assert_eq!(got, vec![("wildcard-match", 4)]);
    }

    #[test]
    fn wildcard_match_sees_through_nested_arms() {
        let src = "fn f(e: EventKind) {\n    match e {\n        EventKind::A => match inner {\n            1 => {}\n            _ => {}\n        },\n        EventKind::B => {}\n    }\n}\n";
        // The inner `_` belongs to a non-watched integer match; the outer
        // match has no wildcard. Nothing fires.
        assert!(scan("simnet", "crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iter_export_follows_the_call_graph() {
        let src = "pub fn render_json() -> String { gather() }\nfn gather() -> String { let m: HashMap<u32, u32> = HashMap::default(); String::default() }\nfn unrelated() { let m: HashMap<u32, u32> = HashMap::default(); }\n";
        let got = scan("testbed", "crates/testbed/src/report.rs", src);
        assert_eq!(got, vec![("hash-iter-export", 2), ("hash-iter-export", 2)]);
    }

    #[test]
    fn wallclock_and_println_scoping_matches_v1() {
        let src = "fn t() { let _ = Instant::now(); println!(\"x\"); }\n";
        let got = scan("simnet", "crates/simnet/src/a.rs", src);
        assert_eq!(got, vec![("no-wallclock", 1), ("no-println", 1)]);
        let testbed = scan("testbed", "crates/testbed/src/a.rs", src);
        assert_eq!(testbed, vec![("no-println", 1)]);
        assert!(scan("bench", "crates/bench/src/a.rs", src).is_empty());
        assert!(scan("testbed", "crates/testbed/src/bin/run.rs", src).is_empty());
    }
}
