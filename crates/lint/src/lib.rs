//! # datagrid-lint v2
//!
//! Token-level static analyzer for the datagrid workspace. The
//! simulation makes determinism and allocation promises that `rustc`
//! cannot check; v1 encoded them as per-line pattern rules, and v2 grows
//! that into a real (still dependency-free) analysis pipeline:
//!
//! ```text
//! lexer  →  item index  →  call graph  →  rules  →  allowlists  →  baseline
//! (spans)   (fns, cfg(test),  (hot-path /    (token    (inline + file)  (ratchet)
//!            directives)       export reach)  patterns)
//! ```
//!
//! | rule | what it denies | where |
//! |---|---|---|
//! | `no-unwrap` / `no-expect` | `.unwrap()` / `.expect(…)` | library code |
//! | `no-panic` | `panic!` / `unreachable!` / `todo!` / `unimplemented!` | library code |
//! | `no-wallclock` | `Instant::now` / `SystemTime::now` | simulation crates |
//! | `no-hashmap-export` | `HashMap` anywhere | export crates (`obs`) |
//! | `hash-iter-export` | `HashMap`/`HashSet` reachable from a render/export root | every crate |
//! | `no-println` | console macros | library crates |
//! | `forbid-unsafe` | crate root missing `#![forbid(unsafe_code)]` | every crate |
//! | `alloc-in-hot-path` | allocation constructs reachable from a `// lint: hot-path` root | every crate |
//! | `float-eq` | `==`/`!=` against float literals | outside sanctioned modules |
//! | `cast-narrowing` | `<id-ish> as <narrower int>` | every crate |
//! | `wildcard-match` | `_ =>` over model-checked event/state enums | every crate |
//! | `stale-allow` / `stale-baseline` / `stale-inline-allow` / `stale-directive` / `bad-directive` | suppressions or annotations that no longer bite | hygiene |
//!
//! Suppression layers, from narrowest to widest:
//!
//! 1. `// lint: allow(<rule>) -- <reason>` on the offending line (or the
//!    line above) — site-level, audited, reported when stale.
//! 2. `lint-allow.txt` `<rule> <path> -- <reason>` — file-level, audited,
//!    reported when stale.
//! 3. `ci/lint_baseline.json` — fingerprinted legacy debt; new findings
//!    fail `--deny`, entries matching nothing fail as `stale-baseline`,
//!    so the baseline can only shrink.
//!
//! Findings export as machine-readable JSON ([`render_findings_json`])
//! with severities and stable fingerprints (see [`baseline`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod callgraph;
pub mod index;
pub mod json;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub use rules::Config;

/// Finding severity, carried in the JSON artifact. The `--deny` gate
/// fails on any unbaselined finding regardless of severity; severity
/// tells a human which to burn down first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a hard invariant (determinism, no-panic, hot-path purity).
    Error,
    /// Suspicious but sometimes legitimate (narrowing casts, wildcards).
    Warning,
}

impl Severity {
    /// Lowercase name for JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

fn severity_of(rule: &str) -> Severity {
    match rule {
        "cast-narrowing" | "wildcard-match" => Severity::Warning,
        _ => Severity::Error,
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `alloc-in-hot-path`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Enclosing function name, or `file` outside any function.
    pub scope: String,
    /// Severity class.
    pub severity: Severity,
    /// What was matched, trimmed for display.
    pub excerpt: String,
    /// Stable fingerprint (see [`baseline::fingerprint`]).
    pub fingerprint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] ({}) {}",
            self.path, self.line, self.rule, self.scope, self.excerpt
        )
    }
}

/// A parsed `lint-allow.txt` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the exception applies to.
    pub rule: String,
    /// Workspace-relative path the exception covers.
    pub path: String,
    /// Mandatory human justification (text after `--`).
    pub reason: String,
    /// Line in `lint-allow.txt`, for stale-entry reporting.
    pub line: usize,
}

/// Scanner outcome: surviving findings plus walk statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// Unallowed, unbaselined findings (the `--deny` gate) plus all
    /// hygiene findings (stale allows/baseline entries/directives).
    pub findings: Vec<Finding>,
    /// Findings tolerated by the fingerprint baseline.
    pub baselined: Vec<Finding>,
    /// Findings suppressed by inline or file-level allowlists.
    pub allowed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree conforms (nothing unbaselined to report).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Analyzer options beyond the built-in [`Config`].
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Baseline file path. `None` uses `<root>/ci/lint_baseline.json`
    /// when present, else an empty baseline.
    pub baseline_path: Option<PathBuf>,
}

/// Errors from walking the workspace or parsing support files.
#[derive(Debug)]
pub enum LintError {
    /// The workspace root did not look like this repository.
    BadRoot(PathBuf),
    /// An allowlist line did not parse as `<rule> <path> -- <reason>`.
    BadAllowEntry {
        /// 1-based line in the allowlist file.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The baseline file did not parse.
    BadBaseline(String),
    /// Filesystem failure, with the path that caused it.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::BadRoot(p) => {
                write!(f, "{} does not contain a crates/ directory", p.display())
            }
            LintError::BadAllowEntry { line, text } => write!(
                f,
                "lint-allow.txt:{line}: expected `<rule> <path> -- <reason>`, got `{text}`"
            ),
            LintError::BadBaseline(msg) => write!(f, "{msg}"),
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// True when the whole file is test code by location or naming, so every
/// line is exempt from the library rules.
fn is_test_file(rel_path: &str) -> bool {
    rel_path.contains("/tests/") || rel_path.ends_with("/tests.rs")
}

/// True for executable entry points (`src/bin/*`, `main.rs`): panicking
/// on a broken invocation is idiomatic there, and stdout is their output
/// channel.
fn is_bin_file(rel_path: &str) -> bool {
    rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs")
}

/// Checks a crate root for the `#![forbid(unsafe_code)]` attribute.
pub fn check_forbid_unsafe(rel_path: &str, source: &str) -> Option<Finding> {
    if source.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        let excerpt = "crate root is missing #![forbid(unsafe_code)]".to_string();
        Some(Finding {
            rule: "forbid-unsafe",
            path: rel_path.to_string(),
            line: 0,
            scope: "file".to_string(),
            severity: Severity::Error,
            excerpt: excerpt.clone(),
            fingerprint: baseline::fingerprint("forbid-unsafe", rel_path, "file", &excerpt, 0),
        })
    }
}

/// Parses `lint-allow.txt`. Blank lines and `#` comments are skipped;
/// everything else must be `<rule> <path> -- <reason>`.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, LintError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || LintError::BadAllowEntry {
            line: idx + 1,
            text: line.to_string(),
        };
        let (head, reason) = line.split_once(" -- ").ok_or_else(bad)?;
        let (rule, path) = head.trim().split_once(' ').ok_or_else(bad)?;
        if rule.is_empty() || path.trim().is_empty() || reason.trim().is_empty() {
            return Err(bad());
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: path.trim().to_string(),
            reason: reason.trim().to_string(),
            line: idx + 1,
        });
    }
    Ok(entries)
}

/// One analyzed source file, kept so the crate-level call graph can see
/// all files at once.
struct AnalyzedFile {
    rel: String,
    source: String,
    lexed: lexer::Lexed,
    index: index::FileIndex,
    is_bin: bool,
    is_lib_root: bool,
}

/// Scans one file in isolation (intra-file call graph only). The
/// fixture tests and one-off checks use this; [`run_with`] uses the
/// crate-level path below.
pub fn scan_standalone(
    cfg: &Config,
    crate_name: &str,
    rel_path: &str,
    source: &str,
) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let idx = index::index_file(source, &lexed, is_test_file(rel_path));
    let files = [callgraph::CrateFile {
        src: source,
        lexed: &lexed,
        index: &idx,
    }];
    let reach = callgraph::analyze(&files);
    let file = AnalyzedFile {
        rel: rel_path.to_string(),
        source: source.to_string(),
        lexed,
        index: idx,
        is_bin: is_bin_file(rel_path),
        is_lib_root: rel_path.ends_with("/lib.rs"),
    };
    let (mut findings, allowed) =
        assemble_file_findings(cfg, crate_name, &file, &reach.hot[0], &reach.export[0]);
    let _ = allowed;
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Runs rules over one analyzed file and applies the *inline* allow
/// layer. Returns (surviving findings, inline-allowed count).
fn assemble_file_findings(
    cfg: &Config,
    crate_name: &str,
    file: &AnalyzedFile,
    hot: &[bool],
    export: &[bool],
) -> (Vec<Finding>, usize) {
    let ctx = rules::FileContext {
        cfg,
        crate_name,
        rel_path: &file.rel,
        src: &file.source,
        lexed: &file.lexed,
        index: &file.index,
        hot,
        export,
        is_bin: file.is_bin,
    };
    let raw = rules::scan_file(&ctx);
    let lines: Vec<&str> = file.source.lines().collect();

    // Assemble findings with fingerprints. Ordinals count duplicates of
    // (rule, scope, normalized excerpt) within the file, in source
    // order, so fingerprints survive unrelated churn.
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for rf in &raw {
        let excerpt: String = lines
            .get(rf.line.saturating_sub(1) as usize)
            .map(|l| l.trim().chars().take(96).collect())
            .unwrap_or_default();
        let scope = rf
            .token
            .and_then(|t| file.index.enclosing_item(t))
            .map(|i| file.index.items[i].name.clone())
            .unwrap_or_else(|| "file".to_string());
        let norm = baseline::normalize_excerpt(&excerpt);
        let key = format!("{}\u{1f}{}\u{1f}{}", rf.rule, scope, norm);
        let ordinal = match seen.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                seen.push((key, 0));
                0
            }
        };
        findings.push(Finding {
            rule: rf.rule,
            path: file.rel.clone(),
            line: rf.line as usize,
            scope: scope.clone(),
            severity: severity_of(rf.rule),
            excerpt,
            fingerprint: baseline::fingerprint(rf.rule, &file.rel, &scope, &norm, ordinal),
        });
    }

    // Crate-root unsafe check.
    if file.is_lib_root {
        findings.extend(check_forbid_unsafe(&file.rel, &file.source));
    }

    // Directive hygiene.
    for (line, body) in &file.index.bad_directives {
        let excerpt = format!("unparseable directive `lint: {body}`");
        findings.push(Finding {
            rule: "bad-directive",
            path: file.rel.clone(),
            line: *line as usize,
            scope: "file".to_string(),
            severity: Severity::Error,
            fingerprint: baseline::fingerprint("bad-directive", &file.rel, "file", &excerpt, 0),
            excerpt,
        });
    }
    for line in &file.index.stale_hot {
        let excerpt = "`lint: hot-path` attaches to no function — move or delete it".to_string();
        findings.push(Finding {
            rule: "stale-directive",
            path: file.rel.clone(),
            line: *line as usize,
            scope: "file".to_string(),
            severity: Severity::Error,
            fingerprint: baseline::fingerprint(
                "stale-directive",
                &file.rel,
                "file",
                &excerpt,
                *line as usize,
            ),
            excerpt,
        });
    }

    // Inline allow layer: `// lint: allow(rule) -- reason` suppresses
    // the rule on its own line (trailing comment) or the next line
    // (directive above).
    let mut used = vec![false; file.index.allows.len()];
    let mut allowed = 0usize;
    findings.retain(|f| {
        for (ai, allow) in file.index.allows.iter().enumerate() {
            let l = allow.line as usize;
            if allow.rule == f.rule && (f.line == l || f.line == l + 1) {
                used[ai] = true;
                allowed += 1;
                return false;
            }
        }
        true
    });
    for (ai, allow) in file.index.allows.iter().enumerate() {
        if !used[ai] {
            let excerpt = format!(
                "inline allow for `{}` suppresses nothing — delete it",
                allow.rule
            );
            findings.push(Finding {
                rule: "stale-inline-allow",
                path: file.rel.clone(),
                line: allow.line as usize,
                scope: "file".to_string(),
                severity: Severity::Error,
                fingerprint: baseline::fingerprint(
                    "stale-inline-allow",
                    &file.rel,
                    "file",
                    &excerpt,
                    allow.line as usize,
                ),
                excerpt,
            });
        }
    }
    (findings, allowed)
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks `crates/*/src` under `root` with default options.
pub fn run(root: &Path) -> Result<Report, LintError> {
    run_with(root, &Options::default())
}

/// Walks `crates/*/src` under `root`, applies every rule per crate
/// (lexer → index → call graph → rules), subtracts the three allow
/// layers, and reports stale entries at every layer.
pub fn run_with(root: &Path, opts: &Options) -> Result<Report, LintError> {
    let cfg = Config::default();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::BadRoot(root.to_path_buf()));
    }

    let mut report = Report::default();
    let mut findings = Vec::new();

    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| LintError::Io(crates_dir.clone(), e))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        rust_files_under(&src, &mut files)?;
        files.sort();

        // Analyze every file up front so the call graph sees the crate.
        let mut analyzed: Vec<AnalyzedFile> = Vec::with_capacity(files.len());
        for file in &files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = read(file)?;
            report.files_scanned += 1;
            let lexed = lexer::lex(&source);
            let idx = index::index_file(&source, &lexed, is_test_file(&rel));
            analyzed.push(AnalyzedFile {
                is_bin: is_bin_file(&rel),
                is_lib_root: rel.ends_with("/lib.rs"),
                rel,
                source,
                lexed,
                index: idx,
            });
        }
        let crate_files: Vec<callgraph::CrateFile<'_>> = analyzed
            .iter()
            .map(|f| callgraph::CrateFile {
                src: &f.source,
                lexed: &f.lexed,
                index: &f.index,
            })
            .collect();
        let reach = callgraph::analyze(&crate_files);
        for (fi, file) in analyzed.iter().enumerate() {
            let (file_findings, inline_allowed) =
                assemble_file_findings(&cfg, &crate_name, file, &reach.hot[fi], &reach.export[fi]);
            report.allowed += inline_allowed;
            findings.extend(file_findings);
        }
    }

    // File-level allowlist.
    let allow_path = root.join("lint-allow.txt");
    let allow = if allow_path.is_file() {
        parse_allowlist(&read(&allow_path)?)?
    } else {
        Vec::new()
    };
    let mut used = vec![false; allow.len()];
    let mut unallowed = Vec::new();
    for finding in findings {
        let covered = allow
            .iter()
            .position(|a| a.rule == finding.rule && a.path == finding.path);
        match covered {
            Some(i) => {
                used[i] = true;
                report.allowed += 1;
            }
            None => unallowed.push(finding),
        }
    }
    for (entry, used) in allow.iter().zip(&used) {
        if !used {
            let excerpt = format!(
                "entry `{} {}` no longer matches any finding — delete it",
                entry.rule, entry.path
            );
            unallowed.push(Finding {
                rule: "stale-allow",
                path: "lint-allow.txt".to_string(),
                line: entry.line,
                scope: "file".to_string(),
                severity: Severity::Error,
                fingerprint: baseline::fingerprint(
                    "stale-allow",
                    "lint-allow.txt",
                    "file",
                    &excerpt,
                    entry.line,
                ),
                excerpt,
            });
        }
    }

    // Fingerprint baseline (the ratchet).
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("ci").join("lint_baseline.json"));
    let base = if baseline_path.is_file() {
        baseline::parse(&read(&baseline_path)?).map_err(LintError::BadBaseline)?
    } else {
        baseline::Baseline::default()
    };
    let mut matched = vec![false; base.entries.len()];
    for finding in unallowed {
        let hit = base
            .entries
            .iter()
            .position(|e| e.fingerprint == finding.fingerprint);
        match hit {
            Some(i) => {
                matched[i] = true;
                report.baselined.push(finding);
            }
            None => report.findings.push(finding),
        }
    }
    for (entry, matched) in base.entries.iter().zip(&matched) {
        if !matched {
            let excerpt = format!(
                "baseline entry `{}` ({} {}) matches no finding — the ratchet only shrinks: delete it",
                entry.fingerprint, entry.rule, entry.path
            );
            report.findings.push(Finding {
                rule: "stale-baseline",
                path: "ci/lint_baseline.json".to_string(),
                line: 0,
                scope: "file".to_string(),
                severity: Severity::Error,
                fingerprint: baseline::fingerprint(
                    "stale-baseline",
                    "ci/lint_baseline.json",
                    "file",
                    &excerpt,
                    0,
                ),
                excerpt,
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
        .baselined
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// Renders the machine-readable findings artifact: every finding (new
/// and baselined) with rule, severity, location, scope and fingerprint.
pub fn render_findings_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"datagrid-lint\",\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"allowed\": {},\n",
        report.files_scanned, report.allowed
    ));
    out.push_str("  \"findings\": [");
    let mut first = true;
    let mut emit = |f: &Finding, status: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"severity\": \"{}\", \"status\": \"{}\", \"path\": \"{}\", \"line\": {}, \"scope\": \"{}\", \"excerpt\": \"{}\"}}",
            json::escape(&f.fingerprint),
            json::escape(f.rule),
            f.severity.as_str(),
            status,
            json::escape(&f.path),
            f.line,
            json::escape(&f.scope),
            json::escape(&f.excerpt),
        ));
    };
    for f in &report.findings {
        emit(f, "new", &mut out);
    }
    for f in &report.baselined {
        emit(f, "baselined", &mut out);
    }
    if !report.findings.is_empty() || !report.baselined.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"new\": {}, \"baselined\": {}}}\n}}\n",
        report.findings.len(),
        report.baselined.len()
    ));
    out
}

/// Renders the current unallowed findings as a baseline document
/// (`--write-baseline`).
pub fn render_baseline(report: &Report) -> String {
    let entries: Vec<baseline::BaselineEntry> = report
        .findings
        .iter()
        .chain(report.baselined.iter())
        .filter(|f| {
            f.rule != "stale-baseline" && f.rule != "stale-allow" && f.rule != "stale-inline-allow"
        })
        .map(|f| baseline::BaselineEntry {
            fingerprint: f.fingerprint.clone(),
            rule: f.rule.to_string(),
            path: f.path.clone(),
            note: format!("line {} ({})", f.line, f.scope),
        })
        .collect();
    baseline::render(&entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_scan_matches_v1_semantics() {
        let cfg = Config::default();
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); z.expect(\"boom\"); }\n}\nfn h() { w.expect(\"msg\"); }\n";
        let found = scan_standalone(&cfg, "core", "crates/core/src/x.rs", src);
        let rules: Vec<_> = found.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("no-unwrap", 1), ("no-expect", 6)]);
        assert_eq!(found[0].scope, "f");
        assert_eq!(found[1].scope, "h");
    }

    #[test]
    fn inline_allow_suppresses_and_goes_stale() {
        let cfg = Config::default();
        let src = "fn f() { x.expect(\"invariant\"); } // lint: allow(no-expect) -- audited: module invariant\n";
        assert!(scan_standalone(&cfg, "core", "crates/core/src/x.rs", src).is_empty());

        let above = "// lint: allow(no-expect) -- audited: module invariant\nfn f() { x.expect(\"invariant\"); }\n";
        assert!(scan_standalone(&cfg, "core", "crates/core/src/x.rs", above).is_empty());

        let stale = "// lint: allow(no-expect) -- nothing here\nfn f() { let _ = 1; }\n";
        let found = scan_standalone(&cfg, "core", "crates/core/src/x.rs", stale);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "stale-inline-allow");
    }

    #[test]
    fn forbid_unsafe_check() {
        assert!(check_forbid_unsafe("crates/a/src/lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        let f = check_forbid_unsafe("crates/a/src/lib.rs", "pub mod x;\n").expect("finding");
        assert_eq!(f.rule, "forbid-unsafe");
        assert_eq!(f.line, 0);
    }

    #[test]
    fn allowlist_parses_and_rejects_reasonless_entries() {
        let ok = parse_allowlist(
            "# audited exceptions\n\
             no-panic crates/simnet/src/engine.rs -- documented # Panics contract\n",
        )
        .expect("parses");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rule, "no-panic");
        assert!(parse_allowlist("no-panic crates/x.rs\n").is_err());
        assert!(parse_allowlist("no-panic -- why\n").is_err());
    }

    #[test]
    fn findings_json_is_valid_and_carries_fingerprints() {
        let cfg = Config::default();
        let src = "fn f() { x.unwrap(); }\n";
        let findings = scan_standalone(&cfg, "core", "crates/core/src/x.rs", src);
        let report = Report {
            findings,
            ..Report::default()
        };
        let text = render_findings_json(&report);
        let doc = json::parse(&text).expect("valid JSON");
        let arr = doc
            .get("findings")
            .and_then(json::Json::as_arr)
            .expect("arr");
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("rule").and_then(json::Json::as_str),
            Some("no-unwrap")
        );
        let fp = arr[0]
            .get("fingerprint")
            .and_then(json::Json::as_str)
            .expect("fp");
        assert_eq!(fp.len(), 16);
    }

    #[test]
    fn bin_files_are_exempt_from_library_rules() {
        let cfg = Config::default();
        let src = "fn main() { println!(\"report\"); cfg.unwrap(); }\n";
        assert!(scan_standalone(&cfg, "testbed", "crates/testbed/src/bin/run.rs", src).is_empty());
        let lib = scan_standalone(&cfg, "testbed", "crates/testbed/src/lib.rs", src);
        assert!(lib.iter().any(|f| f.rule == "no-println"));
    }
}
