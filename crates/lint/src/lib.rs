//! # datagrid-lint
//!
//! Source conformance scanner for the datagrid workspace. The simulation
//! makes determinism and no-panic promises that `rustc` cannot check for
//! us, so this crate encodes them as a handful of mechanical rules and
//! walks `crates/*/src` enforcing each one:
//!
//! | rule | what it denies | where |
//! |---|---|---|
//! | `no-unwrap` | `.unwrap()` outside test code | library code |
//! | `no-expect` | `.expect(` outside test code | library code |
//! | `no-panic` | `panic!` / `unreachable!` / `todo!` / `unimplemented!` | library code |
//! | `no-wallclock` | `Instant::now` / `SystemTime::now` | simulation crates |
//! | `no-hashmap-export` | `HashMap` (iteration order leaks into artifacts) | export/report paths |
//! | `no-println` | `println!` / `eprintln!` / `print!` / `dbg!` | library crates |
//! | `forbid-unsafe` | a crate root missing `#![forbid(unsafe_code)]` | every library crate |
//! | `stale-allow` | an allowlist entry that no longer matches anything | `lint-allow.txt` |
//!
//! The scanner is deliberately a line-level state machine, not a parser:
//! it tracks `#[cfg(test)]` blocks by brace depth, strips string literals
//! and comments before matching, and treats everything under `src/bin/`
//! as an executable entry point (exempt from the library-only rules).
//! Audited exceptions live in `lint-allow.txt` at the workspace root, one
//! `<rule-id> <path> -- <reason>` per line; entries that stop matching
//! are themselves reported so the allowlist can only shrink.
//!
//! By default findings are advisory (exit 0). `--deny-all` turns any
//! finding into a non-zero exit for CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose clocks must come from the simulation, never the host.
/// `testbed` and `bench` drive real experiment harnesses and may time
/// themselves with `Instant::now`; everything else may not.
const SIMULATION_CRATES: [&str; 6] = ["simnet", "sysmon", "gridftp", "catalog", "core", "obs"];

/// Crates whose artifacts (JSONL event dumps, audit exports, metric
/// snapshots) must not depend on `HashMap` iteration order.
const EXPORT_CRATES: [&str; 1] = ["obs"];

/// Crates whose purpose is console reporting; exempt from `no-println`.
const CONSOLE_CRATES: [&str; 2] = ["bench", "lint"];

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// What was matched, trimmed for display.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// A parsed `lint-allow.txt` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the exception applies to.
    pub rule: String,
    /// Workspace-relative path the exception covers.
    pub path: String,
    /// Mandatory human justification (text after `--`).
    pub reason: String,
    /// Line in `lint-allow.txt`, for stale-entry reporting.
    pub line: usize,
}

/// Scanner outcome: surviving findings plus walk statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by the allowlist (includes stale entries).
    pub findings: Vec<Finding>,
    /// Findings suppressed by allowlist entries.
    pub allowed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree conforms (nothing to report).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Errors from walking the workspace or parsing the allowlist.
#[derive(Debug)]
pub enum LintError {
    /// The workspace root did not look like this repository.
    BadRoot(PathBuf),
    /// An allowlist line did not parse as `<rule> <path> -- <reason>`.
    BadAllowEntry {
        /// 1-based line in the allowlist file.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// Filesystem failure, with the path that caused it.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::BadRoot(p) => {
                write!(f, "{} does not contain a crates/ directory", p.display())
            }
            LintError::BadAllowEntry { line, text } => write!(
                f,
                "lint-allow.txt:{line}: expected `<rule> <path> -- <reason>`, got `{text}`"
            ),
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// Strips string literals, char literals and `//` comments from one line
/// so rule patterns never match inside text. Raw strings longer than one
/// line are rare in this workspace and covered by the allowlist escape
/// hatch rather than extra scanner state.
pub fn sanitize_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '\'' => {
                // Char literal: consume up to the closing quote. Lifetimes
                // (`'a`) have no closing quote within a few chars; bail out
                // and keep the tick so generics still read through.
                let lookahead: String = chars.clone().take(3).collect();
                if let Some(end) = lookahead.find('\'') {
                    for _ in 0..=end {
                        chars.next();
                    }
                } else if lookahead.starts_with('\\') {
                    chars.next();
                    chars.next();
                    chars.next();
                } else {
                    out.push(c);
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// True when the whole file is test code by location or naming, so every
/// line is exempt from the library rules.
fn is_test_file(rel_path: &str) -> bool {
    rel_path.contains("/tests/") || rel_path.ends_with("/tests.rs")
}

/// True for executable entry points (`src/bin/*`, `main.rs`): panicking
/// on a broken invocation is idiomatic there, and stdout is their output
/// channel.
fn is_bin_file(rel_path: &str) -> bool {
    rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs")
}

/// Scans one file's source. `crate_name` is the directory under
/// `crates/`; `rel_path` is workspace-relative with forward slashes.
pub fn scan_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if is_test_file(rel_path) {
        return findings;
    }
    let bin = is_bin_file(rel_path);
    let simulation = SIMULATION_CRATES.contains(&crate_name);
    let export = EXPORT_CRATES.contains(&crate_name);
    let console = CONSOLE_CRATES.contains(&crate_name);

    // `#[cfg(test)]` block tracking: once the attribute is seen, the next
    // item's braces are counted until the block closes.
    let mut pending_test_attr = false;
    let mut in_test = false;
    let mut test_depth: i64 = 0;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let code = sanitize_line(raw);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            if opens > closes {
                // `#[cfg(test)] mod tests {` on one line.
                in_test = true;
                test_depth = opens - closes;
            } else {
                pending_test_attr = true;
            }
            continue;
        }
        if pending_test_attr {
            if code.trim().is_empty() || code.trim_start().starts_with("#[") {
                continue; // more attributes between cfg(test) and the item
            }
            pending_test_attr = false;
            if opens > closes {
                in_test = true;
                test_depth = opens - closes;
                continue;
            }
            // `#[cfg(test)] mod tests;` — the out-of-line file is exempt
            // via its own path, nothing to track here.
            continue;
        }

        let mut push = |rule: &'static str| {
            findings.push(Finding {
                rule,
                path: rel_path.to_string(),
                line: line_no,
                excerpt: raw.trim().chars().take(96).collect(),
            });
        };

        if !bin {
            if code.contains(".unwrap()") {
                push("no-unwrap");
            }
            if code.contains(".expect(") {
                push("no-expect");
            }
            if code.contains("panic!(")
                || code.contains("unreachable!(")
                || code.contains("todo!(")
                || code.contains("unimplemented!(")
            {
                push("no-panic");
            }
        }
        if simulation && (code.contains("Instant::now") || code.contains("SystemTime::now")) {
            push("no-wallclock");
        }
        if export && code.contains("HashMap") {
            push("no-hashmap-export");
        }
        if !bin
            && !console
            && (code.contains("println!(")
                || code.contains("eprintln!(")
                || code.contains("print!(")
                || code.contains("dbg!("))
        {
            push("no-println");
        }
    }
    findings
}

/// Checks a crate root for the `#![forbid(unsafe_code)]` attribute.
pub fn check_forbid_unsafe(rel_path: &str, source: &str) -> Option<Finding> {
    if source.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Finding {
            rule: "forbid-unsafe",
            path: rel_path.to_string(),
            line: 0,
            excerpt: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        })
    }
}

/// Parses `lint-allow.txt`. Blank lines and `#` comments are skipped;
/// everything else must be `<rule> <path> -- <reason>`.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, LintError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || LintError::BadAllowEntry {
            line: idx + 1,
            text: line.to_string(),
        };
        let (head, reason) = line.split_once(" -- ").ok_or_else(bad)?;
        let (rule, path) = head.trim().split_once(' ').ok_or_else(bad)?;
        if rule.is_empty() || path.trim().is_empty() || reason.trim().is_empty() {
            return Err(bad());
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: path.trim().to_string(),
            reason: reason.trim().to_string(),
            line: idx + 1,
        });
    }
    Ok(entries)
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|e| LintError::Io(path.to_path_buf(), e))
}

fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            rust_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks `crates/*/src` under `root`, applies every rule, subtracts the
/// allowlist and reports stale entries.
pub fn run(root: &Path) -> Result<Report, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::BadRoot(root.to_path_buf()));
    }

    let mut report = Report::default();
    let mut findings = Vec::new();

    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| LintError::Io(crates_dir.clone(), e))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        rust_files_under(&src, &mut files)?;
        files.sort();
        for file in &files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = read(file)?;
            report.files_scanned += 1;
            findings.extend(scan_source(&crate_name, &rel, &source));
            if rel.ends_with("/lib.rs") {
                findings.extend(check_forbid_unsafe(&rel, &source));
            }
        }
    }

    let allow_path = root.join("lint-allow.txt");
    let allow = if allow_path.is_file() {
        parse_allowlist(&read(&allow_path)?)?
    } else {
        Vec::new()
    };

    let mut used = vec![false; allow.len()];
    for finding in findings {
        let covered = allow
            .iter()
            .position(|a| a.rule == finding.rule && a.path == finding.path);
        match covered {
            Some(i) => {
                used[i] = true;
                report.allowed += 1;
            }
            None => report.findings.push(finding),
        }
    }
    for (entry, used) in allow.iter().zip(&used) {
        if !used {
            report.findings.push(Finding {
                rule: "stale-allow",
                path: "lint-allow.txt".to_string(),
                line: entry.line,
                excerpt: format!(
                    "entry `{} {}` no longer matches any finding — delete it",
                    entry.rule, entry.path
                ),
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_strips_strings_and_comments() {
        assert_eq!(
            sanitize_line(r#"let x = "panic!()"; // .unwrap()"#),
            "let x = ; "
        );
        assert_eq!(
            sanitize_line(r#"let c = '"'; x.unwrap()"#),
            "let c = ; x.unwrap()"
        );
        assert_eq!(
            sanitize_line("fn f<'a>(x: &'a str)"),
            "fn f<'a>(x: &'a str)"
        );
    }

    #[test]
    fn unwrap_outside_tests_is_flagged_inside_tests_is_not() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { y.unwrap(); z.expect(\"boom\"); }\n\
                   }\n\
                   fn h() { w.expect(\"msg\"); }\n";
        let found = scan_source("core", "crates/core/src/x.rs", src);
        let rules: Vec<_> = found.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("no-unwrap", 1), ("no-expect", 6)]);
    }

    #[test]
    fn cfg_test_on_one_line_and_with_extra_attributes() {
        let src = "#[cfg(test)] mod tests { fn f() { x.unwrap(); } }\n\
                   #[cfg(test)]\n\
                   #[allow(dead_code)]\n\
                   mod more {\n\
                       fn g() { panic!(\"ok in tests\"); }\n\
                   }\n\
                   fn live() { panic!(\"caught\"); }\n";
        let found = scan_source("core", "crates/core/src/y.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "no-panic");
        assert_eq!(found[0].line, 7);
    }

    #[test]
    fn wallclock_scoping_follows_the_crate() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            scan_source("simnet", "crates/simnet/src/a.rs", src).len(),
            1
        );
        assert!(scan_source("testbed", "crates/testbed/src/a.rs", src).is_empty());
    }

    #[test]
    fn bins_and_console_crates_are_exempt_where_documented() {
        let src = "fn main() { println!(\"report\"); cfg.unwrap(); }\n";
        assert!(scan_source("testbed", "crates/testbed/src/bin/run.rs", src).is_empty());
        let lib = scan_source("testbed", "crates/testbed/src/lib.rs", src);
        assert!(lib.iter().any(|f| f.rule == "no-println"));
        assert!(scan_source("bench", "crates/bench/src/lib.rs", "println!(\"x\");\n").is_empty());
    }

    #[test]
    fn hashmap_is_denied_only_on_export_paths() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan_source("obs", "crates/obs/src/event.rs", src).len(), 1);
        assert!(scan_source("simnet", "crates/simnet/src/engine.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_check() {
        assert!(check_forbid_unsafe("crates/a/src/lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        let f = check_forbid_unsafe("crates/a/src/lib.rs", "pub mod x;\n").unwrap();
        assert_eq!(f.rule, "forbid-unsafe");
    }

    #[test]
    fn allowlist_parses_and_rejects_reasonless_entries() {
        let ok = parse_allowlist(
            "# audited exceptions\n\
             no-panic crates/simnet/src/engine.rs -- documented # Panics contract\n",
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].rule, "no-panic");
        assert!(parse_allowlist("no-panic crates/x.rs\n").is_err());
        assert!(parse_allowlist("no-panic -- why\n").is_err());
    }
}
