//! Approximate intra-crate call graph.
//!
//! Nodes are the indexed `fn` items of one crate; an edge `f → g` exists
//! when `f`'s body contains a call whose bare callee name matches `g`'s
//! name. Matching is by name only — no type resolution — which makes the
//! graph deliberately *over*-approximate: a call `x.settle()` connects
//! to every `fn settle` in the crate, whichever type it belongs to. For
//! hot-path propagation that is the conservative direction (a function
//! is treated as hot unless no hot caller could possibly reach it), and
//! cross-crate calls simply end at the crate boundary, which keeps the
//! blast radius of one annotation reviewable.
//!
//! Two reachability sets are computed:
//!
//! - **hot**: reachable from a `// lint: hot-path` annotated root; the
//!   `alloc-in-hot-path` rule fires only inside these bodies.
//! - **export-reach**: reachable from an export root — a function whose
//!   name says it renders/serialises output (`render_*`, `export_*`,
//!   `emit_*`, `dump_*`, `write_*`, `*snapshot*`, `*_json`, `*_text`) —
//!   where the `hash-iter-export` determinism rule watches for
//!   `HashMap`/`HashSet`.

use crate::index::FileIndex;
use crate::lexer::{Lexed, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one function across a crate's files: (file index within
/// the crate, item index within the file).
pub type FnRef = (usize, usize);

/// Keywords and call-like constructs that are never callee names.
const NON_CALLEES: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "let", "else",
    "Some", "Ok",
];

/// Std types whose associated functions (`Vec::new`, `String::from`, …)
/// must not be mistaken for calls to same-named crate functions: without
/// this, one `HashMap::new()` in a hot body would mark every `fn new` in
/// the crate hot.
const STD_QUALIFIERS: [&str; 16] = [
    "Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Rc", "Arc",
    "Option", "Result", "Cell", "RefCell", "Duration", "Cow",
];

/// True when `name` marks a function as an export root for the
/// determinism rule.
pub fn is_export_root(name: &str) -> bool {
    name.starts_with("render_")
        || name.starts_with("export_")
        || name.starts_with("emit_")
        || name.starts_with("dump_")
        || name.starts_with("write_")
        || name.contains("snapshot")
        || name.ends_with("_json")
        || name.ends_with("_text")
}

/// Per-crate reachability flags, indexed like the crate's files/items.
#[derive(Debug, Default)]
pub struct Reachability {
    /// `hot[file][item]`: body is reachable from a hot-path root.
    pub hot: Vec<Vec<bool>>,
    /// `export[file][item]`: body is reachable from an export root.
    pub export: Vec<Vec<bool>>,
}

impl Reachability {
    /// True when the item is hot-path-reachable.
    pub fn is_hot(&self, file: usize, item: usize) -> bool {
        self.hot
            .get(file)
            .and_then(|v| v.get(item))
            .copied()
            .unwrap_or(false)
    }

    /// True when the item is export-reachable.
    pub fn is_export(&self, file: usize, item: usize) -> bool {
        self.export
            .get(file)
            .and_then(|v| v.get(item))
            .copied()
            .unwrap_or(false)
    }
}

/// One call site as the graph resolves it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Callee {
    /// Unqualified or method call: matches every `fn name` in the crate.
    Bare(String),
    /// `Type::name(…)`: matches only `fn name` inside `impl Type`.
    Qualified(String, String),
}

/// Collects everything `item`'s body calls: `name(…)`, `recv.name(…)`,
/// `Type::name(…)`, including `.collect::<T>()` turbofish forms. Macro
/// invocations (`name!`) are not calls. `Self::name(…)` resolves against
/// the calling item's own impl type.
pub fn callees(src: &str, lexed: &Lexed, index: &FileIndex, item: usize) -> BTreeSet<Callee> {
    let mut out = BTreeSet::new();
    let Some((open, close)) = index.items[item].body else {
        return out;
    };
    let owner = index.items[item].owner.as_deref();
    let toks = &lexed.tokens;
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let name = toks[i].text(src);
        if NON_CALLEES.contains(&name) {
            continue;
        }
        // Skip definitions: `fn name`.
        if i > 0 && toks[i - 1].kind == TokenKind::Ident && toks[i - 1].text(src) == "fn" {
            continue;
        }
        // Resolve the qualifier, if the call is `Something::name(…)`.
        let qualifier =
            if i >= 2 && toks[i - 1].text(src) == "::" && toks[i - 2].kind == TokenKind::Ident {
                Some(toks[i - 2].text(src))
            } else {
                None
            };
        // Std associated functions (`Vec::new(…)`) are not crate calls.
        if qualifier.is_some_and(|q| STD_QUALIFIERS.contains(&q)) {
            continue;
        }
        let is_call = match toks.get(i + 1).map(|t| t.text(src)) {
            Some("(") => true,
            // Turbofish: `name::<T>(…)`.
            Some("::") if toks.get(i + 2).is_some_and(|t| t.text(src) == "<") => {
                let mut angle = 0i64;
                let mut j = i + 2;
                while j < toks.len() {
                    match toks[j].text(src) {
                        "<" => angle += 1,
                        "<<" => angle += 2,
                        ">" => angle -= 1,
                        ">>" => angle -= 2,
                        _ => {}
                    }
                    j += 1;
                    if angle <= 0 {
                        break;
                    }
                }
                toks.get(j).is_some_and(|t| t.text(src) == "(")
            }
            _ => false,
        };
        if !is_call {
            continue;
        }
        // A type qualifier pins the callee to one impl block; lowercase
        // qualifiers are module paths, which stay bare. `Self::` resolves
        // to the caller's own impl type.
        match qualifier {
            Some("Self") => match owner {
                Some(ty) => {
                    out.insert(Callee::Qualified(ty.to_string(), name.to_string()));
                }
                None => {
                    out.insert(Callee::Bare(name.to_string()));
                }
            },
            Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                out.insert(Callee::Qualified(q.to_string(), name.to_string()));
            }
            _ => {
                out.insert(Callee::Bare(name.to_string()));
            }
        }
    }
    out
}

/// One crate's worth of analyzed files, as the graph sees them.
pub struct CrateFile<'a> {
    /// File source.
    pub src: &'a str,
    /// Token stream.
    pub lexed: &'a Lexed,
    /// Item index.
    pub index: &'a FileIndex,
}

/// Builds the call graph over `files` and returns both reachability
/// sets. Test items neither propagate nor receive reachability.
pub fn analyze(files: &[CrateFile<'_>]) -> Reachability {
    // name -> every non-test fn with that name in the crate.
    let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
    // (impl type, name) -> the fns of that name in that type's impls.
    let mut by_owner: BTreeMap<(&str, &str), Vec<FnRef>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (ii, item) in f.index.items.iter().enumerate() {
            if !item.is_test {
                by_name
                    .entry(item.name.as_str())
                    .or_default()
                    .push((fi, ii));
                if let Some(owner) = &item.owner {
                    by_owner
                        .entry((owner.as_str(), item.name.as_str()))
                        .or_default()
                        .push((fi, ii));
                }
            }
        }
    }

    let mut reach = Reachability {
        hot: files
            .iter()
            .map(|f| vec![false; f.index.items.len()])
            .collect(),
        export: files
            .iter()
            .map(|f| vec![false; f.index.items.len()])
            .collect(),
    };

    let mut hot_roots = Vec::new();
    let mut export_roots = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (ii, item) in f.index.items.iter().enumerate() {
            if item.is_test {
                continue;
            }
            if item.hot_root {
                hot_roots.push((fi, ii));
            }
            if is_export_root(&item.name) {
                export_roots.push((fi, ii));
            }
        }
    }

    propagate(files, &by_name, &by_owner, hot_roots, &mut reach.hot);
    propagate(files, &by_name, &by_owner, export_roots, &mut reach.export);
    reach
}

fn propagate(
    files: &[CrateFile<'_>],
    by_name: &BTreeMap<&str, Vec<FnRef>>,
    by_owner: &BTreeMap<(&str, &str), Vec<FnRef>>,
    roots: Vec<FnRef>,
    flags: &mut [Vec<bool>],
) {
    let mut queue: Vec<FnRef> = Vec::new();
    for (fi, ii) in roots {
        if !flags[fi][ii] {
            flags[fi][ii] = true;
            queue.push((fi, ii));
        }
    }
    while let Some((fi, ii)) = queue.pop() {
        let f = &files[fi];
        for callee in callees(f.src, f.lexed, f.index, ii) {
            let targets = match &callee {
                Callee::Bare(name) => by_name.get(name.as_str()),
                Callee::Qualified(owner, name) => by_owner.get(&(owner.as_str(), name.as_str())),
            };
            for &(tf, ti) in targets.into_iter().flatten() {
                if !flags[tf][ti] {
                    flags[tf][ti] = true;
                    queue.push((tf, ti));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::lexer::lex;

    struct Owned {
        src: String,
        lexed: crate::lexer::Lexed,
        index: FileIndex,
    }

    fn own(src: &str) -> Owned {
        let lexed = lex(src);
        let index = index_file(src, &lexed, false);
        Owned {
            src: src.to_string(),
            lexed,
            index,
        }
    }

    fn reach(sources: &[&str]) -> (Vec<Owned>, Reachability) {
        let owned: Vec<Owned> = sources.iter().map(|s| own(s)).collect();
        let files: Vec<CrateFile<'_>> = owned
            .iter()
            .map(|o| CrateFile {
                src: &o.src,
                lexed: &o.lexed,
                index: &o.index,
            })
            .collect();
        let r = analyze(&files);
        (owned, r)
    }

    #[test]
    fn hot_propagates_through_direct_and_method_calls() {
        let (owned, r) = reach(&[
            "// lint: hot-path\nfn settle() { helper(); obj.step(); }\nfn helper() {}\nfn step() {}\nfn cold() {}\n",
        ]);
        let idx = &owned[0].index;
        let pos = |n: &str| idx.items.iter().position(|i| i.name == n).expect("item");
        assert!(r.is_hot(0, pos("settle")));
        assert!(r.is_hot(0, pos("helper")));
        assert!(r.is_hot(0, pos("step")));
        assert!(!r.is_hot(0, pos("cold")));
    }

    #[test]
    fn hot_crosses_files_within_the_crate() {
        let (owned, r) = reach(&[
            "// lint: hot-path\nfn root() { shared(); }\n",
            "fn shared() { leaf(); }\nfn leaf() {}\n",
        ]);
        let idx1 = &owned[1].index;
        let pos = |n: &str| idx1.items.iter().position(|i| i.name == n).expect("item");
        assert!(r.is_hot(1, pos("shared")));
        assert!(r.is_hot(1, pos("leaf")));
    }

    #[test]
    fn test_functions_do_not_catch_reachability() {
        let (owned, r) = reach(&[
            "// lint: hot-path\nfn root() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn helper() {}\n",
        ]);
        let idx = &owned[0].index;
        for (ii, item) in idx.items.iter().enumerate() {
            if item.name == "helper" && item.is_test {
                assert!(!r.is_hot(0, ii), "test helper must stay cold");
            }
            if item.name == "helper" && !item.is_test {
                assert!(r.is_hot(0, ii));
            }
        }
    }

    #[test]
    fn export_roots_are_detected_by_name() {
        assert!(is_export_root("render_json"));
        assert!(is_export_root("metrics_snapshot"));
        assert!(is_export_root("emit_engine_observability"));
        assert!(!is_export_root("settle_flow"));
    }

    #[test]
    fn turbofish_counts_as_a_call() {
        let (owned, r) =
            reach(&["// lint: hot-path\nfn root() { let _ = gather::<u32>(); }\nfn gather() {}\n"]);
        let idx = &owned[0].index;
        let pos = |n: &str| idx.items.iter().position(|i| i.name == n).expect("item");
        assert!(r.is_hot(0, pos("gather")));
    }
}
