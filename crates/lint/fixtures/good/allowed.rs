//! Known-good: real violations, each carrying an audited site-level
//! allow. The analyzer must report nothing — and if any allow stops
//! matching, it must flag the directive itself as stale.

// lint: hot-path
fn hot_with_sanctioned_alloc(&mut self) {
    // A deliberate allocation on the hot path, with its audit trail:
    let label = self.name.to_string(); // lint: allow(alloc-in-hot-path) -- error path only, executes at most once per run
    self.fail(label);
}

fn invariant_backed_expect(x: Option<u32>) -> u32 {
    x.expect("slot map invariant: live handle") // lint: allow(no-expect) -- invariant documented on SlotMap::insert
}
