//! Known-good: the traps that defeated the v1 line scanner. Everything
//! in this file that *looks* like a violation is inert — commented out,
//! quoted, or test-only — so the analyzer must report nothing.

/*
 * A whole function commented out across multiple lines, v1's first
 * blind spot:
 *
 * fn old_code() {
 *     let x = config.unwrap();
 *     panic!("unreachable");
 * }
 */

fn renders_documentation() -> &'static str {
    // Violations inside a multi-line raw string are data, not code —
    // v1's second blind spot.
    r#"
        example: value.unwrap()
        example: panic!("boom")
        example: Instant::now()
    "#
}

/* nested /* block */ comments resolve correctly: fn fake() { x.unwrap(); } */

fn escaped_quotes() -> String {
    let s = "not a real \" string end: x.unwrap()";
    s.into()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("test-only panic is fine");
        }
    }
}
