//! Known-bad: id-ish values silently truncated by `as` casts.

fn register(&mut self, flow_id: u64, hosts: &[Host]) {
    let short = flow_id as u32; // finding: id narrowed
    let n = hosts.len() as u16; // finding: length narrowed
    self.table.insert(short, n);
}

fn fine(ratio: f64, flow_id: u64) -> (u32, u64) {
    // Neither direction fires: a float cast is not an id, and widening
    // an id loses nothing.
    (ratio as u32, flow_id as u64)
}
