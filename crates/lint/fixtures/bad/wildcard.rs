//! Known-bad: `_ =>` arms over enums the model checker enumerates.

fn classify(ev: &SimEvent) -> &'static str {
    match ev.kind {
        EventKind::FlowCompleted(_) => "done",
        _ => "other", // finding: wildcard over a watched enum
    }
}

fn fine(n: u32) -> &'static str {
    match n {
        0 => "zero",
        _ => "many", // not a watched enum; no finding
    }
}
