//! Known-bad: hash-ordered containers feeding a rendered artifact.
//! `render_summary` is an export root by name; `collect_counts` is
//! reachable from it, so the `HashSet` there is flagged too.

use std::collections::{HashMap, HashSet};

pub fn render_summary(stats: &Stats) -> String {
    let counts: HashMap<String, u64> = collect_counts(stats); // finding
    let mut out = String::new();
    for (k, v) in &counts {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

fn collect_counts(stats: &Stats) -> HashMap<String, u64> {
    let mut seen: HashSet<&str> = HashSet::new(); // findings: HashMap + HashSet
    let mut counts = HashMap::new();
    for s in &stats.samples {
        if seen.insert(s.name.as_str()) {
            counts.insert(s.name.clone(), s.value);
        }
    }
    counts
}

fn unrelated(map: &HashMap<u32, u32>) -> usize {
    // Not export-reachable: using a HashMap internally is fine.
    map.len()
}
