//! Known-bad: the v1 rule families, now token-level.

use std::time::Instant;

fn brittle(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // finding: no-unwrap
    let b = x.expect("always here"); // finding: no-expect
    if a != b {
        panic!("mismatch"); // finding: no-panic
    }
    println!("a = {a}"); // finding: no-println
    let _t = Instant::now(); // finding: no-wallclock
    a
}
