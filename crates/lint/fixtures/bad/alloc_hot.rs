//! Known-bad: allocations reached through a `// lint: hot-path` root.
//! The root itself is clean — every finding here is found only because
//! the call graph propagates hotness into `build_report` and `stash`.

// lint: hot-path
fn dispatch(&mut self) {
    self.step();
    build_report(self);
}

fn build_report(sim: &mut Sim) -> Report {
    let mut lines = Vec::new(); // finding: Vec::new in hot-reachable fn
    lines.push(format!("t={}", sim.now)); // finding: format!
    sim.stash(lines)
}

fn stash(&mut self, lines: Vec<String>) -> Report {
    let copy = lines.clone(); // finding: clone
    Report { lines: copy }
}

fn cold_path() {
    // Not reachable from the hot root: allocating here is fine.
    let _scratch: Vec<u8> = Vec::with_capacity(64);
}
