//! Known-bad: exact float comparisons outside the sanctioned modules.

fn check(rate: f64, target: f64) -> bool {
    if rate == 0.0 {
        return false; // finding: == against a float literal
    }
    rate != 1.5 // finding: != against a float literal
}

fn fine(count: u64) -> bool {
    count == 0 // integers compare exactly; no finding
}
