//! Allocation discipline of the concurrent replay loop.
//!
//! A counting global allocator measures two identical
//! [`DataGrid::replay_concurrent`] runs on the same grid. The first run
//! sizes every reusable structure (dispatch maps, candidate buffer, score
//! scratch, engine slab); the second must (a) allocate strictly less —
//! proof the buffers are actually reused — and (b) allocate at a rate
//! bounded by *jobs*, not *events*: with recording disabled, steady-state
//! event dispatch (flow progress, session timers, probe bookkeeping) is
//! allocation-free, so total allocations stay a small multiple of the job
//! count no matter how many events the replay pumps.
//!
//! The allocator lives here (an integration test is its own crate root)
//! because every library crate carries `#![forbid(unsafe_code)]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datagrid_core::grid::{FetchOptions, GridBuilder};
use datagrid_core::recovery::RecoveryOptions;
use datagrid_core::ReplayJob;
use datagrid_simnet::prelude::*;
use datagrid_sysmon::host::HostSpec;
use datagrid_sysmon::load::LoadModel;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn replay_allocations_scale_with_jobs_not_events() {
    let mut b = GridBuilder::new(41);
    let client = b.add_host(
        HostSpec::new("client").with_cpu(2, 2.0),
        LoadModel::Constant(0.1),
        LoadModel::Constant(0.1),
    );
    let fast = b.add_host(
        HostSpec::new("fast").with_cpu(1, 2.8),
        LoadModel::Constant(0.2),
        LoadModel::Constant(0.1),
    );
    let slow = b.add_host(
        HostSpec::new("slow").with_cpu(1, 0.9),
        LoadModel::Constant(0.4),
        LoadModel::Constant(0.3),
    );
    let sw = b.add_switch("switch");
    let ms = SimDuration::from_millis;
    b.topology_mut()
        .add_duplex_link(client, sw, LinkSpec::new(Bandwidth::from_gbps(1.0), ms(1)));
    b.topology_mut()
        .add_duplex_link(fast, sw, LinkSpec::new(Bandwidth::from_mbps(100.0), ms(4)));
    b.topology_mut()
        .add_duplex_link(slow, sw, LinkSpec::new(Bandwidth::from_mbps(50.0), ms(10)));
    b.monitor_all_host_pairs();
    let mut grid = b.build();
    // Steady-state claim: no event history, no audit, no timeline.
    grid.recorder_mut().set_enabled(false);
    grid.set_network_validation(false);
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), 24 << 20)
        .unwrap();
    grid.place_replica("file-a", "fast").unwrap();
    grid.place_replica("file-a", "slow").unwrap();
    grid.warm_up(SimDuration::from_secs(120));

    let client_id = grid.host_id("client").unwrap();
    let jobs: Vec<ReplayJob> = (0..24)
        .map(|i| ReplayJob {
            at: grid.now() + SimDuration::from_millis(200 * i),
            client: client_id,
            lfn: "file-a".to_string(),
        })
        .collect();

    // Warm-up run: sizes the dispatch maps, candidate buffer and slab.
    let e0 = grid.network().stats().events_processed;
    let a0 = allocs();
    let report = grid
        .replay_concurrent(&jobs, FetchOptions::default(), &RecoveryOptions::default())
        .unwrap();
    assert_eq!(report.completed(), jobs.len());
    let warm_allocs = allocs() - a0;
    let warm_events = grid.network().stats().events_processed - e0;

    // Measured run: identical workload on the warmed grid.
    let e1 = grid.network().stats().events_processed;
    let a1 = allocs();
    let report = grid
        .replay_concurrent(&jobs, FetchOptions::default(), &RecoveryOptions::default())
        .unwrap();
    assert_eq!(report.completed(), jobs.len());
    let steady_allocs = allocs() - a1;
    let steady_events = grid.network().stats().events_processed - e1;

    assert!(
        steady_allocs < warm_allocs,
        "second replay must reuse warmed buffers: {steady_allocs} vs {warm_allocs}"
    );
    assert!(
        steady_events > 10 * jobs.len() as u64,
        "workload too small to distinguish per-event from per-job costs \
         ({steady_events} events, {warm_events} in warm-up)"
    );
    // Irreducible per-job work (outcome records, session boxes, ranked
    // candidate materialisation, control-timer bookkeeping) is bounded by
    // a constant per job; everything per-event is allocation-free. The
    // factor is deliberately generous — the regression this guards against
    // (an allocation on the event path) multiplies allocations by the
    // event count, blowing straight through it.
    let budget = 64 * jobs.len() as u64;
    assert!(
        steady_allocs <= budget,
        "steady replay allocated {steady_allocs} times for {} jobs / {steady_events} events \
         (budget {budget}); something is allocating per event",
        jobs.len()
    );
}
