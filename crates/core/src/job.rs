//! Data-intensive job execution — the outer loop of the paper's Fig. 1.
//!
//! The scenario the paper draws does not end at the transfer: "the client
//! login[s] at the local site and execute[s] parallel applications in the
//! Data Grid platform", the application stages its input files in through
//! replica selection, computes, and "returns the results to user". A
//! [`JobSpec`] describes such an application; [`DataGrid::run_job`]
//! executes it end to end: stage-in via the cost-model selector (local
//! replicas read directly), a compute phase whose duration reflects the
//! host's CPU load, and an optional stage-out of results.

use datagrid_gridftp::transfer::{TransferOutcome, TransferRequest};
use datagrid_simnet::time::SimDuration;
use datagrid_sysmon::host::HostId;

use crate::error::GridError;
use crate::grid::{DataGrid, FetchOptions, FetchReport};

/// A data-intensive application to run on a grid host.
///
/// ```
/// use datagrid_core::job::JobSpec;
///
/// let job = JobSpec::new("blast-search")
///     .with_input("blast/nr.part1")
///     .with_compute_work(120.0)
///     .with_output(64 << 20, "alpha1");
/// assert_eq!(job.inputs().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    name: String,
    inputs: Vec<String>,
    compute_work: f64,
    output_bytes: u64,
    output_to: Option<String>,
    options: FetchOptions,
}

impl JobSpec {
    /// Creates a job with no inputs and no compute work.
    pub fn new(name: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            inputs: Vec::new(),
            compute_work: 0.0,
            output_bytes: 0,
            output_to: None,
            options: FetchOptions::default(),
        }
    }

    /// Adds an input logical file to stage in.
    pub fn with_input(mut self, lfn: impl Into<String>) -> Self {
        self.inputs.push(lfn.into());
        self
    }

    /// Sets the compute demand in *GHz-core-seconds*: a fully idle
    /// 1-core 1 GHz machine needs `work` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative or non-finite.
    pub fn with_compute_work(mut self, work: f64) -> Self {
        assert!(work.is_finite() && work >= 0.0, "bad compute work {work}");
        self.compute_work = work;
        self
    }

    /// Declares a result file of `bytes` to upload to `host` when done.
    pub fn with_output(mut self, bytes: u64, host: impl Into<String>) -> Self {
        self.output_bytes = bytes;
        self.output_to = Some(host.into());
        self
    }

    /// Sets the transfer options used for staging.
    pub fn with_options(mut self, options: FetchOptions) -> Self {
        self.options = options;
        self
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input logical files.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }
}

/// The outcome of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// The host that ran it.
    pub client: String,
    /// One fetch report per staged input, in spec order.
    pub staged: Vec<FetchReport>,
    /// Total stage-in time.
    pub stage_in: SimDuration,
    /// Compute-phase duration.
    pub compute: SimDuration,
    /// The result upload, if requested.
    pub stage_out: Option<TransferOutcome>,
    /// End-to-end makespan.
    pub total: SimDuration,
}

impl JobReport {
    /// Fraction of the makespan spent moving data rather than computing —
    /// the number Data Grid replica selection exists to shrink.
    pub fn data_fraction(&self) -> f64 {
        let total = self.total.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            1.0 - self.compute.as_secs_f64() / total
        }
    }
}

impl DataGrid {
    /// Runs a job at `client`: stages every input through the replica
    /// selection scenario, computes (duration scaled by the host's current
    /// CPU headroom and clock), and optionally stages the result out.
    /// Monitoring continues throughout.
    ///
    /// # Errors
    ///
    /// Any [`GridError`] from staging, or [`GridError::UnknownHost`] for a
    /// bad output destination.
    pub fn run_job(&mut self, client: HostId, spec: &JobSpec) -> Result<JobReport, GridError> {
        let started = self.now();

        let mut staged = Vec::with_capacity(spec.inputs().len());
        for lfn in spec.inputs() {
            staged.push(self.fetch_with(client, lfn, spec.options)?);
        }
        let stage_in = self.now() - started;

        // Compute: effective rate in GHz-cores = compute index × headroom,
        // sampled when the job starts crunching (long jobs will see load
        // evolve, but the application occupies the host either way).
        let compute = if spec.compute_work > 0.0 {
            let host = self.host(client);
            let rate = (host.spec().compute_index() * host.cpu_headroom()).max(0.05);
            let duration = SimDuration::from_secs_f64(spec.compute_work / rate);
            self.advance_to(self.now() + duration);
            duration
        } else {
            SimDuration::ZERO
        };

        let stage_out = match (&spec.output_to, spec.output_bytes) {
            (Some(dest), bytes) if bytes > 0 => {
                let dest_id = self
                    .host_id(dest)
                    .ok_or_else(|| GridError::UnknownHost { name: dest.clone() })?;
                if dest_id == client {
                    None // results already local
                } else {
                    let req =
                        TransferRequest::new(bytes).with_parallelism(spec.options.parallelism);
                    Some(self.transfer_between(client, dest_id, req)?)
                }
            }
            _ => None,
        };

        Ok(JobReport {
            name: spec.name().to_string(),
            client: self.host(client).name().to_string(),
            staged,
            stage_in,
            compute,
            stage_out,
            total: self.now() - started,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder() {
        let spec = JobSpec::new("j")
            .with_input("a")
            .with_input("b")
            .with_compute_work(10.0)
            .with_output(100, "alpha1")
            .with_options(FetchOptions::default().with_parallelism(4));
        assert_eq!(spec.name(), "j");
        assert_eq!(spec.inputs(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "bad compute work")]
    fn negative_work_rejected() {
        let _ = JobSpec::new("j").with_compute_work(-1.0);
    }

    #[test]
    fn data_fraction_bounds() {
        let report = JobReport {
            name: "j".into(),
            client: "c".into(),
            staged: Vec::new(),
            stage_in: SimDuration::from_secs(30),
            compute: SimDuration::from_secs(70),
            stage_out: None,
            total: SimDuration::from_secs(100),
        };
        assert!((report.data_fraction() - 0.3).abs() < 1e-12);
        let empty = JobReport {
            total: SimDuration::ZERO,
            ..report
        };
        assert_eq!(empty.data_fraction(), 0.0);
    }
}
