//! The three system factors of the paper's §3.2.
//!
//! For every candidate replica the information service reports:
//!
//! * `BW_P` — the current (forecast) bandwidth from the replica host to
//!   the client, divided by the path's highest theoretical bandwidth
//!   (measured and predicted by NWS),
//! * `CPU_P` — the replica host's CPU idle percentage (from MDS),
//! * `IO_P` — the replica host's I/O idle percentage (from sysstat).

use datagrid_sysmon::host::HostId;

use datagrid_catalog::PhysicalFileName;

/// The three measured fractions for one candidate, all in `[0, 1]`.
///
/// ```
/// use datagrid_core::factors::SystemFactors;
///
/// let f = SystemFactors::new(0.8, 0.9, 0.95);
/// assert_eq!(f.bandwidth_fraction, 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemFactors {
    /// `BW_P`: current bandwidth over highest theoretical bandwidth.
    pub bandwidth_fraction: f64,
    /// `CPU_P`: CPU idle fraction of the replica host.
    pub cpu_idle: f64,
    /// `IO_P`: I/O idle fraction of the replica host.
    pub io_idle: f64,
}

impl SystemFactors {
    /// Creates factors, clamping each into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any input is NaN.
    pub fn new(bandwidth_fraction: f64, cpu_idle: f64, io_idle: f64) -> Self {
        assert!(
            !bandwidth_fraction.is_nan() && !cpu_idle.is_nan() && !io_idle.is_nan(),
            "system factors must not be NaN"
        );
        SystemFactors {
            bandwidth_fraction: bandwidth_fraction.clamp(0.0, 1.0),
            cpu_idle: cpu_idle.clamp(0.0, 1.0),
            io_idle: io_idle.clamp(0.0, 1.0),
        }
    }

    /// The ideal factors (unloaded local replica).
    pub fn perfect() -> Self {
        SystemFactors::new(1.0, 1.0, 1.0)
    }
}

/// One scored candidate replica, as returned by the selection server.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Registry id of the replica host.
    pub host: HostId,
    /// Host name (matches the PFN host).
    pub host_name: String,
    /// The replica's physical location.
    pub location: PhysicalFileName,
    /// The measured factors.
    pub factors: SystemFactors,
    /// The cost-model score (higher is better).
    pub score: f64,
    /// `true` when the replica lives on the requesting client itself.
    pub is_local: bool,
}

/// Sorts candidates by descending score (ties by name for determinism).
pub fn rank_by_score(candidates: &mut [CandidateScore]) {
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.host_name.cmp(&b.host_name))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(name: &str, score: f64) -> CandidateScore {
        CandidateScore {
            host: HostId(0),
            host_name: name.to_string(),
            location: format!("gsiftp://{name}/d/f").parse().unwrap(),
            factors: SystemFactors::perfect(),
            score,
            is_local: false,
        }
    }

    #[test]
    fn factors_clamp() {
        let f = SystemFactors::new(1.5, -0.2, 0.5);
        assert_eq!(f.bandwidth_fraction, 1.0);
        assert_eq!(f.cpu_idle, 0.0);
        assert_eq!(f.io_idle, 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SystemFactors::new(f64::NAN, 0.0, 0.0);
    }

    #[test]
    fn ranking_descending_with_stable_ties() {
        let mut v = vec![
            candidate("b", 0.5),
            candidate("a", 0.9),
            candidate("c", 0.5),
        ];
        rank_by_score(&mut v);
        let names: Vec<&str> = v.iter().map(|c| c.host_name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
