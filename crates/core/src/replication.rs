//! Dynamic replica creation strategies.
//!
//! The paper's scenario *selects* among existing replicas; its companion
//! problem — deciding when to *create* a replica closer to demand — is
//! what the replica management service exists for. This module provides
//! advisory strategies that watch [`FetchReport`]s and recommend new
//! replicas; the caller applies advice with
//! [`DataGrid::replicate`](crate::grid::DataGrid::replicate), keeping the
//! decision loop explicit and testable.

use std::collections::HashMap;

use crate::grid::FetchReport;

/// When to recommend creating a replica at the requesting client's host.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReplicationStrategy {
    /// Never replicate (selection only, as in the paper).
    #[default]
    Never,
    /// Replicate once a host has fetched the same file remotely
    /// `threshold` times (classic count-based caching).
    FetchCount {
        /// Remote fetches of one file by one host before replicating.
        threshold: u32,
    },
    /// Replicate when a remote fetch took longer than `threshold_s`
    /// seconds (latency-triggered placement).
    SlowFetch {
        /// Transfer-duration trigger in seconds.
        threshold_s: f64,
    },
}

/// A recommendation to create a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationAdvice {
    /// The logical file to replicate.
    pub lfn: String,
    /// The host that should receive the new replica.
    pub to_host: String,
}

/// Watches fetch outcomes and emits replication advice per the strategy.
///
/// ```
/// use datagrid_core::replication::{ReplicationManager, ReplicationStrategy};
///
/// let mgr = ReplicationManager::new(ReplicationStrategy::FetchCount { threshold: 3 });
/// assert_eq!(mgr.strategy(), ReplicationStrategy::FetchCount { threshold: 3 });
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicationManager {
    strategy: ReplicationStrategy,
    remote_fetches: HashMap<(String, String), u32>,
    advised: HashMap<(String, String), bool>,
}

impl ReplicationManager {
    /// Creates a manager with the given strategy.
    pub fn new(strategy: ReplicationStrategy) -> Self {
        ReplicationManager {
            strategy,
            remote_fetches: HashMap::new(),
            advised: HashMap::new(),
        }
    }

    /// The active strategy.
    pub fn strategy(&self) -> ReplicationStrategy {
        self.strategy
    }

    /// Remote fetch count observed for `(host, lfn)`.
    pub fn remote_fetch_count(&self, host: &str, lfn: &str) -> u32 {
        self.remote_fetches
            .get(&(host.to_string(), lfn.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Feeds one fetch outcome; returns advice at most once per
    /// `(host, file)` pair (the caller is expected to act on it).
    pub fn observe(&mut self, report: &FetchReport) -> Option<ReplicationAdvice> {
        if report.local_hit {
            return None; // already local: nothing to improve
        }
        let key = (report.client.clone(), report.lfn.to_string());
        if self.advised.get(&key).copied().unwrap_or(false) {
            return None;
        }
        let count = self.remote_fetches.entry(key.clone()).or_insert(0);
        *count += 1;
        let trigger = match self.strategy {
            ReplicationStrategy::Never => false,
            ReplicationStrategy::FetchCount { threshold } => *count >= threshold,
            ReplicationStrategy::SlowFetch { threshold_s } => {
                report.transfer.duration().as_secs_f64() > threshold_s
            }
        };
        if trigger {
            self.advised.insert(key, true);
            Some(ReplicationAdvice {
                lfn: report.lfn.to_string(),
                to_host: report.client.clone(),
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::{CandidateScore, SystemFactors};
    use datagrid_gridftp::transfer::{PhaseRecord, TransferOutcome};
    use datagrid_simnet::time::SimTime;
    use datagrid_sysmon::host::HostId;

    fn report(client: &str, lfn: &str, secs: f64, local: bool) -> FetchReport {
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs_f64(secs);
        let factors = SystemFactors::perfect();
        FetchReport {
            lfn: lfn.parse().unwrap(),
            client: client.to_string(),
            local_hit: local,
            candidates: vec![CandidateScore {
                host: HostId(0),
                host_name: "remote".into(),
                location: "gsiftp://remote/d/f".parse().unwrap(),
                factors,
                score: 1.0,
                is_local: local,
            }],
            chosen: 0,
            transfer: TransferOutcome {
                payload_bytes: 1,
                wire_bytes: 1,
                streams: 1,
                stripes: 1,
                started: t0,
                finished: t1,
                phases: vec![PhaseRecord {
                    name: "data",
                    start: t0,
                    end: t1,
                }],
            },
            decision_latency: datagrid_simnet::time::SimDuration::ZERO,
        }
    }

    #[test]
    fn never_strategy_stays_quiet() {
        let mut mgr = ReplicationManager::new(ReplicationStrategy::Never);
        for _ in 0..10 {
            assert_eq!(mgr.observe(&report("alpha1", "f", 100.0, false)), None);
        }
        assert_eq!(mgr.remote_fetch_count("alpha1", "f"), 10);
    }

    #[test]
    fn fetch_count_triggers_at_threshold_once() {
        let mut mgr = ReplicationManager::new(ReplicationStrategy::FetchCount { threshold: 3 });
        assert_eq!(mgr.observe(&report("alpha1", "f", 10.0, false)), None);
        assert_eq!(mgr.observe(&report("alpha1", "f", 10.0, false)), None);
        let advice = mgr.observe(&report("alpha1", "f", 10.0, false)).unwrap();
        assert_eq!(advice.lfn, "f");
        assert_eq!(advice.to_host, "alpha1");
        // Once advised, stays quiet for that pair.
        assert_eq!(mgr.observe(&report("alpha1", "f", 10.0, false)), None);
        // Other pairs count independently.
        assert_eq!(mgr.observe(&report("gridhit0", "f", 10.0, false)), None);
        assert_eq!(mgr.remote_fetch_count("gridhit0", "f"), 1);
    }

    #[test]
    fn slow_fetch_triggers_on_duration() {
        let mut mgr = ReplicationManager::new(ReplicationStrategy::SlowFetch { threshold_s: 60.0 });
        assert_eq!(mgr.observe(&report("alpha1", "f", 30.0, false)), None);
        assert!(mgr.observe(&report("alpha1", "f", 120.0, false)).is_some());
    }

    #[test]
    fn local_hits_never_count_or_trigger() {
        let mut mgr = ReplicationManager::new(ReplicationStrategy::FetchCount { threshold: 1 });
        assert_eq!(mgr.observe(&report("alpha1", "f", 300.0, true)), None);
        assert_eq!(mgr.remote_fetch_count("alpha1", "f"), 0);
    }
}
