//! Score history — the data behind the paper's Fig. 5 cost program.
//!
//! The paper's Java GUI polls the information service, plots each remote
//! site's cost over time, averages over a user-selectable *time scale*,
//! and sorts sites by cost on demand. [`CostHistory`] is that program's
//! data model; the `fig5` bench binary renders it as text.

use std::collections::BTreeMap;

use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_sysmon::nws::series::TimeSeries;

/// Per-site score time series with window averaging and sorting.
///
/// ```
/// use datagrid_core::history::CostHistory;
/// use datagrid_simnet::time::{SimDuration, SimTime};
///
/// let mut h = CostHistory::new();
/// h.record("hit0", SimTime::from_secs_f64(10.0), 0.8);
/// h.record("lz02", SimTime::from_secs_f64(10.0), 0.3);
/// let sorted = h.sorted(SimTime::from_secs_f64(10.0), SimDuration::from_secs(60));
/// assert_eq!(sorted[0].0, "hit0");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostHistory {
    series: BTreeMap<String, TimeSeries>,
}

impl CostHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        CostHistory::default()
    }

    /// Records one score sample for a site.
    pub fn record(&mut self, site: &str, time: SimTime, score: f64) {
        self.series
            .entry(site.to_string())
            .or_default()
            .push(time, score);
    }

    /// The sites with recorded history, in name order.
    pub fn sites(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The raw series for one site.
    pub fn series(&self, site: &str) -> Option<&TimeSeries> {
        self.series.get(site)
    }

    /// The average score of a site over `[now - window, now]` — the GUI's
    /// adjustable time scale.
    pub fn average(&self, site: &str, now: SimTime, window: SimDuration) -> Option<f64> {
        self.series.get(site)?.mean_over(now, window)
    }

    /// All sites with a score in the window, sorted best (highest average
    /// score) first — the GUI's *Cost* button.
    pub fn sorted(&self, now: SimTime, window: SimDuration) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .series
            .iter()
            .filter_map(|(site, s)| s.mean_over(now, window).map(|m| (site.clone(), m)))
            .collect();
        rows.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        rows
    }

    /// Number of sites tracked.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn w(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn record_and_average() {
        let mut h = CostHistory::new();
        for i in 0..10 {
            h.record("hit0", t(i as f64 * 10.0), 0.5 + 0.01 * i as f64);
        }
        // Window covering the last 3 samples (70, 80, 90).
        let avg = h.average("hit0", t(90.0), w(25)).unwrap();
        assert!((avg - 0.58).abs() < 1e-12);
        assert_eq!(h.average("ghost", t(90.0), w(25)), None);
    }

    #[test]
    fn window_changes_the_average() {
        let mut h = CostHistory::new();
        h.record("a", t(0.0), 0.2);
        h.record("a", t(100.0), 0.8);
        let short = h.average("a", t(100.0), w(10)).unwrap();
        let long = h.average("a", t(100.0), w(1000)).unwrap();
        assert_eq!(short, 0.8);
        assert_eq!(long, 0.5);
    }

    #[test]
    fn sorted_orders_descending_with_name_ties() {
        let mut h = CostHistory::new();
        h.record("lz02", t(1.0), 0.3);
        h.record("alpha4", t(1.0), 0.9);
        h.record("hit0", t(1.0), 0.9);
        let sorted = h.sorted(t(1.0), w(60));
        let names: Vec<&str> = sorted.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha4", "hit0", "lz02"]);
    }

    #[test]
    fn sites_enumerated_in_order() {
        let mut h = CostHistory::new();
        assert!(h.is_empty());
        h.record("z", t(0.0), 0.1);
        h.record("a", t(0.0), 0.1);
        assert_eq!(h.sites().collect::<Vec<_>>(), vec!["a", "z"]);
        assert_eq!(h.len(), 2);
        assert!(h.series("a").is_some());
    }
}
