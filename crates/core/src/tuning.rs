//! Automatic weight determination — the paper's future work item 2.
//!
//! The paper fixes the cost-model weights at 0.8/0.1/0.1 after manual
//! experimentation and explicitly defers "how to determine the system
//! factors weight" to future work. [`WeightTuner`] answers it with the
//! data the grid already produces: feed it `(factors, measured transfer
//! time)` observations — e.g. from counterfactual oracle replays or from
//! production fetch logs — and it searches the weight simplex for the
//! weights whose score ranking agrees best with the measured speed
//! ranking (Kendall-style pairwise concordance).

use crate::cost::{CostModel, Weights};
use crate::factors::SystemFactors;

/// One tuning observation: the factors a candidate showed at selection
/// time and the transfer time it actually achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The candidate's measured system factors.
    pub factors: SystemFactors,
    /// The measured end-to-end transfer duration in seconds.
    pub duration_s: f64,
}

impl Observation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not finite and positive.
    pub fn new(factors: SystemFactors, duration_s: f64) -> Self {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "transfer duration must be positive, got {duration_s}"
        );
        Observation {
            factors,
            duration_s,
        }
    }
}

/// Fraction of observation pairs where the score order agrees with the
/// speed order (1 = perfect agreement, 0.5 ≈ random, 0 = inverted).
/// Pairs with (near-)equal scores or durations are skipped.
pub fn rank_agreement(model: &CostModel, observations: &[Observation]) -> f64 {
    let scores: Vec<f64> = observations
        .iter()
        .map(|o| model.score(&o.factors))
        .collect();
    let mut concordant = 0u64;
    let mut total = 0u64;
    for i in 0..observations.len() {
        for j in (i + 1)..observations.len() {
            let ds = scores[i] - scores[j];
            let dt = observations[i].duration_s - observations[j].duration_s;
            if ds.abs() < 1e-12 || dt.abs() < 1e-9 {
                continue;
            }
            total += 1;
            // Higher score should mean lower duration.
            if (ds > 0.0) == (dt < 0.0) {
                concordant += 1;
            }
        }
    }
    if total == 0 {
        0.5
    } else {
        concordant as f64 / total as f64
    }
}

/// Searches the weight simplex for the weights that rank candidates most
/// like their measured speeds.
///
/// ```
/// use datagrid_core::factors::SystemFactors;
/// use datagrid_core::tuning::{Observation, WeightTuner};
///
/// let mut tuner = WeightTuner::new();
/// // Fast path, moderate host: fast transfer.
/// tuner.record(Observation::new(SystemFactors::new(0.9, 0.5, 0.5), 10.0));
/// // Slow path, idle host: slow transfer.
/// tuner.record(Observation::new(SystemFactors::new(0.1, 1.0, 1.0), 90.0));
/// let (weights, agreement) = tuner.tune(10).expect("enough data");
/// assert!(weights.bandwidth > weights.cpu);
/// assert_eq!(agreement, 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightTuner {
    observations: Vec<Observation>,
}

impl WeightTuner {
    /// Creates an empty tuner.
    pub fn new() -> Self {
        WeightTuner::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, observation: Observation) {
        self.observations.push(observation);
    }

    /// The observations recorded so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Grid search over the simplex `{(b, c, i) : b+c+i = 1}` at the given
    /// `resolution` (number of steps per axis; 10 → 66 candidates).
    /// Returns the best weights and their rank agreement, or `None` with
    /// fewer than two observations. Ties prefer the more
    /// bandwidth-dominant candidate (cheaper to monitor accurately).
    pub fn tune(&self, resolution: usize) -> Option<(Weights, f64)> {
        if self.observations.len() < 2 || resolution == 0 {
            return None;
        }
        let mut best: Option<(Weights, f64)> = None;
        for bi in 0..=resolution {
            for ci in 0..=(resolution - bi) {
                let ii = resolution - bi - ci;
                let w = Weights::normalized(bi as f64, ci as f64, ii as f64 + f64::MIN_POSITIVE);
                // MIN_POSITIVE keeps the all-zero corner valid; renormalise
                // exactly below.
                let w = Weights::normalized(w.bandwidth, w.cpu, w.io);
                let agreement = rank_agreement(&CostModel::new(w), &self.observations);
                let better = match &best {
                    None => true,
                    Some((bw, ba)) => {
                        agreement > *ba + 1e-12
                            || ((agreement - *ba).abs() <= 1e-12 && w.bandwidth > bw.bandwidth)
                    }
                };
                if better {
                    best = Some((w, agreement));
                }
            }
        }
        best
    }
}

impl Extend<Observation> for WeightTuner {
    fn extend<T: IntoIterator<Item = Observation>>(&mut self, iter: T) {
        self.observations.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(bw: f64, cpu: f64, io: f64, secs: f64) -> Observation {
        Observation::new(SystemFactors::new(bw, cpu, io), secs)
    }

    #[test]
    fn agreement_perfect_and_inverted() {
        let model = CostModel::paper();
        let good = vec![obs(0.9, 0.5, 0.5, 10.0), obs(0.1, 0.5, 0.5, 100.0)];
        assert_eq!(rank_agreement(&model, &good), 1.0);
        let bad = vec![obs(0.9, 0.5, 0.5, 100.0), obs(0.1, 0.5, 0.5, 10.0)];
        assert_eq!(rank_agreement(&model, &bad), 0.0);
    }

    #[test]
    fn agreement_skips_ties() {
        let model = CostModel::paper();
        let ties = vec![obs(0.5, 0.5, 0.5, 10.0), obs(0.5, 0.5, 0.5, 20.0)];
        assert_eq!(rank_agreement(&model, &ties), 0.5);
    }

    #[test]
    fn tuner_finds_bandwidth_dominance_when_bandwidth_drives_time() {
        // Duration purely determined by bandwidth; CPU/IO are decoys that
        // anti-correlate (idle hosts on slow paths).
        let mut tuner = WeightTuner::new();
        for (bw, secs) in [(0.9, 10.0), (0.5, 30.0), (0.2, 80.0), (0.05, 200.0)] {
            tuner.record(obs(bw, 1.0 - bw, 1.0 - bw, secs));
        }
        let (w, agreement) = tuner.tune(10).unwrap();
        assert_eq!(agreement, 1.0);
        assert!(
            w.bandwidth > 0.5,
            "bandwidth weight should dominate, got {w:?}"
        );
    }

    #[test]
    fn tuner_can_discover_io_dominance() {
        // IO idleness determines time while bandwidth actively misleads
        // (the fastest candidate has the *worst* bandwidth), so only
        // IO-dominant weights rank all pairs correctly.
        let mut tuner = WeightTuner::new();
        for (bw, io, secs) in [(0.2, 0.9, 10.0), (0.8, 0.5, 30.0), (0.5, 0.2, 80.0)] {
            tuner.record(obs(bw, 0.5, io, secs));
        }
        let (w, agreement) = tuner.tune(10).unwrap();
        assert_eq!(agreement, 1.0);
        assert!(w.io > w.bandwidth, "io should dominate: {w:?}");
        // Bandwidth-only weights would be badly wrong on this data.
        let bw_only = CostModel::new(Weights::new(1.0, 0.0, 0.0));
        assert!(rank_agreement(&bw_only, tuner.observations()) < 0.5);
    }

    #[test]
    fn tuner_needs_data() {
        let mut tuner = WeightTuner::new();
        assert!(tuner.tune(10).is_none());
        tuner.record(obs(0.5, 0.5, 0.5, 10.0));
        assert!(tuner.tune(10).is_none());
        tuner.record(obs(0.6, 0.5, 0.5, 9.0));
        assert!(tuner.tune(10).is_some());
        assert!(tuner.tune(0).is_none());
        assert_eq!(tuner.len(), 2);
        assert!(!tuner.is_empty());
    }

    #[test]
    fn tuned_weights_are_valid() {
        let mut tuner = WeightTuner::new();
        tuner.extend([
            obs(0.9, 0.2, 0.3, 5.0),
            obs(0.4, 0.9, 0.8, 20.0),
            obs(0.1, 0.5, 0.9, 90.0),
        ]);
        let (w, _) = tuner.tune(20).unwrap();
        let sum = w.bandwidth + w.cpu + w.io;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(w.bandwidth >= 0.0 && w.cpu >= 0.0 && w.io >= 0.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn bad_duration_rejected() {
        let _ = Observation::new(SystemFactors::perfect(), 0.0);
    }
}
