//! Replica selection policies.
//!
//! The paper's contribution is the cost-model policy; the others are the
//! baselines a fair evaluation needs (and what the `ablation_policies`
//! bench compares): random and round-robin selection (what a catalog
//! without monitoring can do), bandwidth-only selection (the prior Globus
//! replica selection work), and least-loaded selection (host metrics
//! without network awareness).

use crate::cost::CostModel;
use crate::factors::CandidateScore;

use datagrid_simnet::rng::SimRng;

/// A replica selection policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SelectionPolicy {
    /// The paper's weighted cost model: pick the highest score.
    #[default]
    CostModel,
    /// Uniform random choice (monitoring-free baseline).
    Random,
    /// Rotate through candidates in name order (monitoring-free baseline).
    RoundRobin,
    /// Pick the highest bandwidth fraction, ignoring host state.
    BandwidthOnly,
    /// Pick the most idle host (CPU + I/O), ignoring the network.
    LeastLoaded,
}

impl SelectionPolicy {
    /// A short stable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionPolicy::CostModel => "cost-model",
            SelectionPolicy::Random => "random",
            SelectionPolicy::RoundRobin => "round-robin",
            SelectionPolicy::BandwidthOnly => "bandwidth-only",
            SelectionPolicy::LeastLoaded => "least-loaded",
        }
    }

    /// All implemented policies (for comparison sweeps).
    pub fn all() -> [SelectionPolicy; 5] {
        [
            SelectionPolicy::CostModel,
            SelectionPolicy::Random,
            SelectionPolicy::RoundRobin,
            SelectionPolicy::BandwidthOnly,
            SelectionPolicy::LeastLoaded,
        ]
    }
}

/// The replica selection server: applies a policy over scored candidates.
///
/// Holds the policy's running state (round-robin position, random stream)
/// so repeated queries behave like a long-lived server process.
///
/// ```
/// use datagrid_core::cost::CostModel;
/// use datagrid_core::policy::{ReplicaSelector, SelectionPolicy};
/// use datagrid_simnet::rng::SimRng;
///
/// let selector = ReplicaSelector::new(
///     SelectionPolicy::CostModel,
///     CostModel::paper(),
///     SimRng::seed_from_u64(1),
/// );
/// assert_eq!(selector.policy().name(), "cost-model");
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaSelector {
    policy: SelectionPolicy,
    model: CostModel,
    rng: SimRng,
    round_robin: u64,
}

impl ReplicaSelector {
    /// Creates a selector.
    pub fn new(policy: SelectionPolicy, model: CostModel, rng: SimRng) -> Self {
        ReplicaSelector {
            policy,
            model,
            rng,
            round_robin: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &SelectionPolicy {
        &self.policy
    }

    /// Replaces the active policy (state such as the round-robin position
    /// is kept).
    pub fn set_policy(&mut self, policy: SelectionPolicy) {
        self.policy = policy;
    }

    /// The cost model used by [`SelectionPolicy::CostModel`].
    pub fn cost_model(&self) -> CostModel {
        self.model
    }

    /// Replaces the cost model.
    pub fn set_cost_model(&mut self, model: CostModel) {
        self.model = model;
    }

    /// Scores one candidate with the active cost model.
    pub fn score(&self, factors: &crate::factors::SystemFactors) -> f64 {
        self.model.score(factors)
    }

    /// Chooses among candidates, returning an index into the slice.
    ///
    /// A local replica (on the client itself) is always preferred — the
    /// paper's scenario checks the local site before consulting the
    /// selection server at all.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn choose(&mut self, candidates: &[CandidateScore]) -> usize {
        assert!(
            !candidates.is_empty(),
            "cannot choose among zero candidates"
        );
        if let Some(local) = candidates.iter().position(|c| c.is_local) {
            return local;
        }
        match self.policy {
            SelectionPolicy::CostModel => argmax(candidates, |c| c.score),
            SelectionPolicy::Random => self.rng.below(candidates.len() as u64) as usize,
            SelectionPolicy::RoundRobin => {
                // Rotate deterministically through name order.
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.sort_by(|&a, &b| candidates[a].host_name.cmp(&candidates[b].host_name));
                let pick = order[(self.round_robin as usize) % order.len()];
                self.round_robin += 1;
                pick
            }
            SelectionPolicy::BandwidthOnly => argmax(candidates, |c| c.factors.bandwidth_fraction),
            SelectionPolicy::LeastLoaded => {
                argmax(candidates, |c| c.factors.cpu_idle + c.factors.io_idle)
            }
        }
    }
}

fn argmax(candidates: &[CandidateScore], key: impl Fn(&CandidateScore) -> f64) -> usize {
    let mut best = 0;
    for i in 1..candidates.len() {
        let (ki, kb) = (key(&candidates[i]), key(&candidates[best]));
        // Ties break toward the lexicographically smaller host name so
        // selection is deterministic.
        if ki > kb || (ki == kb && candidates[i].host_name < candidates[best].host_name) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::SystemFactors;
    use datagrid_sysmon::host::HostId;

    fn candidate(name: &str, bw: f64, cpu: f64, io: f64) -> CandidateScore {
        let factors = SystemFactors::new(bw, cpu, io);
        CandidateScore {
            host: HostId(0),
            host_name: name.to_string(),
            location: format!("gsiftp://{name}/d/f").parse().unwrap(),
            factors,
            score: CostModel::paper().score(&factors),
            is_local: false,
        }
    }

    fn selector(policy: SelectionPolicy) -> ReplicaSelector {
        ReplicaSelector::new(policy, CostModel::paper(), SimRng::seed_from_u64(7))
    }

    fn fixture() -> Vec<CandidateScore> {
        vec![
            candidate("alpha4", 0.9, 0.6, 0.7), // best bandwidth & score
            candidate("hit0", 0.6, 0.9, 0.9),   // most idle host
            candidate("lz02", 0.1, 1.0, 1.0),
        ]
    }

    #[test]
    fn cost_model_picks_highest_score() {
        let mut s = selector(SelectionPolicy::CostModel);
        assert_eq!(s.choose(&fixture()), 0);
    }

    #[test]
    fn bandwidth_only_ignores_host_state() {
        let mut s = selector(SelectionPolicy::BandwidthOnly);
        assert_eq!(s.choose(&fixture()), 0);
        // Make hit0 the bandwidth winner.
        let mut v = fixture();
        v[1].factors.bandwidth_fraction = 0.95;
        assert_eq!(s.choose(&v), 1);
    }

    #[test]
    fn least_loaded_ignores_network() {
        let mut s = selector(SelectionPolicy::LeastLoaded);
        assert_eq!(s.choose(&fixture()), 2); // lz02 fully idle
    }

    #[test]
    fn round_robin_cycles_in_name_order() {
        let mut s = selector(SelectionPolicy::RoundRobin);
        let v = fixture();
        let picks: Vec<usize> = (0..6).map(|_| s.choose(&v)).collect();
        // Name order: alpha4(0), hit0(1), lz02(2).
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let v = fixture();
        let picks = |seed| {
            let mut s = ReplicaSelector::new(
                SelectionPolicy::Random,
                CostModel::paper(),
                SimRng::seed_from_u64(seed),
            );
            (0..20).map(|_| s.choose(&v)).collect::<Vec<_>>()
        };
        let a = picks(1);
        assert_eq!(a, picks(1));
        assert!(a.iter().all(|&i| i < 3));
        // With 20 draws over 3 options, at least 2 distinct picks.
        let distinct: std::collections::HashSet<usize> = a.into_iter().collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn local_replica_short_circuits_every_policy() {
        for policy in SelectionPolicy::all() {
            let mut s = selector(policy);
            let mut v = fixture();
            v[2].is_local = true;
            assert_eq!(s.choose(&v), 2, "policy {:?}", s.policy().name());
        }
    }

    #[test]
    #[should_panic(expected = "zero candidates")]
    fn empty_candidates_panics() {
        let mut s = selector(SelectionPolicy::CostModel);
        let _ = s.choose(&[]);
    }

    #[test]
    fn policy_names_are_stable() {
        let names: Vec<&str> = SelectionPolicy::all().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "cost-model",
                "random",
                "round-robin",
                "bandwidth-only",
                "least-loaded"
            ]
        );
    }
}
