//! Exhaustive model checking of the replay fetch state machine.
//!
//! [`replay`](super::replay) drives every job through the phases
//! `Arrival → Deciding → {LocalRead | Transferring}`, with `Backoff`
//! between retry attempts and suspect-mark/next-best failover between
//! replicas. The concurrent driver interleaves many such machines over one
//! simulator, which makes its guarantees ("a replay never hangs and never
//! leaks flows") hard to see by reading any single trace.
//!
//! This module restates one job's machine as an explicit transition
//! system, abstracting the *timing* nondeterminism away and keeping the
//! *outcome* nondeterminism (a transfer attempt may complete or stall, the
//! selector may pick any candidate). [`explore`] then enumerates **every**
//! reachable state by breadth-first search and proves, for a given policy
//! configuration:
//!
//! * **No stuck client** — every non-terminal state has at least one
//!   successor, and a terminal state is reachable from every reachable
//!   state (no deadlock, no livelock).
//! * **Bounded** — retry attempts never exceed the policy's
//!   `max_attempts`, abandoned replicas never exceed
//!   `min(remote replicas, max_failovers + 1)`, and the whole state space
//!   is finite.
//! * **Terminal soundness** — `Completed` and `Failed` are the only
//!   absorbing states, and `Failed` is only reachable after at least one
//!   abandoned replica.
//!
//! The per-phase transition rules are written to mirror
//! `Driver::{on_control, decide, start_attempt, on_session_event,
//! abandon_replica}` line for line; the integration suite closes the loop
//! by replaying exhaustive small-grid configurations (≤3 clients × ≤3
//! replicas, with and without faults) through the real driver and checking
//! that every concrete trace lands in a state this model declares
//! reachable and terminal.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Phase of one modelled fetch job — the abstraction of
/// `replay::Phase` plus the two terminal outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModelPhase {
    /// Waiting for the arrival timer.
    Arrival,
    /// Waiting for the catalog + selection round trip.
    Deciding,
    /// Waiting out a retry backoff pause.
    Backoff,
    /// A synthesised local disk read (cannot stall).
    LocalRead,
    /// A GridFTP attempt that may complete or stall.
    Transferring,
    /// Terminal: full file delivered.
    Completed,
    /// Terminal: every candidate the policy allowed was abandoned.
    Failed,
}

impl ModelPhase {
    /// `true` for the two absorbing outcomes.
    pub fn is_terminal(self) -> bool {
        matches!(self, ModelPhase::Completed | ModelPhase::Failed)
    }
}

/// One state of the modelled job: phase plus the two counters that the
/// recovery policy branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelState {
    /// Current phase.
    pub phase: ModelPhase,
    /// Attempts against the current replica (reset on failover).
    pub episode_attempts: u32,
    /// Replicas abandoned so far.
    pub failed: u32,
}

impl ModelState {
    /// The initial state: waiting for the arrival timer.
    pub fn initial() -> Self {
        ModelState {
            phase: ModelPhase::Arrival,
            episode_attempts: 0,
            failed: 0,
        }
    }
}

impl fmt::Display for ModelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}(attempt {}, {} failed over)",
            self.phase, self.episode_attempts, self.failed
        )
    }
}

/// Policy configuration of the modelled fetch — the knobs `Driver`
/// branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchModel {
    /// Replicas of the requested file (including a local one, if any).
    pub replicas: u32,
    /// Whether one of the candidates is the client itself (a local hit
    /// becomes a synthesised disk read that cannot stall or be abandoned).
    pub local_hit: bool,
    /// `RetryPolicy::max_attempts`: attempts per replica before abandon.
    pub max_attempts: u32,
    /// `RecoveryOptions::max_failovers`: abandons before giving up.
    pub max_failovers: u32,
}

impl FetchModel {
    /// Remote (abandonable) candidates.
    fn remote_replicas(&self) -> u32 {
        self.replicas.saturating_sub(u32::from(self.local_hit))
    }

    /// All successor states of `s` — the union over every way the
    /// environment (selector choice, transfer outcome) can resolve the
    /// phase's pending nondeterminism. Empty iff `s` is terminal.
    pub fn successors(&self, s: ModelState) -> Vec<ModelState> {
        let mut out = Vec::new();
        match s.phase {
            // Arrival timer fires -> the decision round trip begins.
            ModelPhase::Arrival => out.push(ModelState {
                phase: ModelPhase::Deciding,
                ..s
            }),
            // `decide()`: pick any candidate not yet abandoned, or fail
            // the job when none is left. The local candidate (if any) can
            // never be abandoned, so it stays available on every round.
            ModelPhase::Deciding => {
                if self.local_hit {
                    out.push(ModelState {
                        phase: ModelPhase::LocalRead,
                        episode_attempts: 0,
                        failed: s.failed,
                    });
                }
                if s.failed < self.remote_replicas() {
                    // `start_attempt` counts the episode's first attempt.
                    out.push(ModelState {
                        phase: ModelPhase::Transferring,
                        episode_attempts: 1,
                        failed: s.failed,
                    });
                }
                if out.is_empty() {
                    out.push(ModelState {
                        phase: ModelPhase::Failed,
                        ..s
                    });
                }
            }
            // A local read always delivers.
            ModelPhase::LocalRead => out.push(ModelState {
                phase: ModelPhase::Completed,
                ..s
            }),
            // `on_session_event`: the attempt completes, or stalls — and a
            // stall either backs off for another attempt or abandons the
            // replica (`RetryPolicy::exhausted`, `abandon_replica`).
            ModelPhase::Transferring => {
                out.push(ModelState {
                    phase: ModelPhase::Completed,
                    ..s
                });
                if s.episode_attempts >= self.max_attempts.max(1) {
                    let failed = s.failed + 1;
                    out.push(if failed > self.max_failovers {
                        ModelState {
                            phase: ModelPhase::Failed,
                            episode_attempts: s.episode_attempts,
                            failed,
                        }
                    } else {
                        ModelState {
                            phase: ModelPhase::Deciding,
                            episode_attempts: 0,
                            failed,
                        }
                    });
                } else {
                    out.push(ModelState {
                        phase: ModelPhase::Backoff,
                        ..s
                    });
                }
            }
            // Backoff timer fires -> the next attempt at the same replica.
            ModelPhase::Backoff => out.push(ModelState {
                phase: ModelPhase::Transferring,
                episode_attempts: s.episode_attempts + 1,
                failed: s.failed,
            }),
            ModelPhase::Completed | ModelPhase::Failed => {}
        }
        out
    }
}

/// A property the exhaustive search falsified, with the witness state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelViolation {
    /// A non-terminal state with no successor: the job is stuck.
    Deadlock(ModelState),
    /// A reachable state from which no terminal state is reachable.
    TerminalUnreachable(ModelState),
    /// A counter escaped its policy bound.
    BoundExceeded(ModelState),
    /// `Failed` was reached without a single abandoned replica.
    SpuriousFailure(ModelState),
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelViolation::Deadlock(s) => write!(f, "deadlock: {s} has no successor"),
            ModelViolation::TerminalUnreachable(s) => {
                write!(f, "no terminal state reachable from {s}")
            }
            ModelViolation::BoundExceeded(s) => {
                write!(f, "policy bound exceeded in {s}")
            }
            ModelViolation::SpuriousFailure(s) => {
                write!(f, "{s} failed without abandoning any replica")
            }
        }
    }
}

impl std::error::Error for ModelViolation {}

/// Summary of one exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions among them.
    pub transitions: usize,
    /// Every reachable terminal state — concrete replay outcomes must
    /// land on one of these (matched on phase and failover count).
    pub terminals: BTreeSet<ModelState>,
}

impl Exploration {
    /// `true` if [`ModelPhase::Completed`] is reachable.
    pub fn completed_reachable(&self) -> bool {
        self.terminals
            .iter()
            .any(|s| s.phase == ModelPhase::Completed)
    }

    /// `true` if [`ModelPhase::Failed`] is reachable.
    pub fn failed_reachable(&self) -> bool {
        self.terminals.iter().any(|s| s.phase == ModelPhase::Failed)
    }

    /// `true` if the model reaches a terminal of `phase` after exactly
    /// `failovers` abandoned replicas — the projection a concrete
    /// [`ReplayOutcome`](super::replay::ReplayOutcome) can be checked
    /// against.
    pub fn admits_outcome(&self, phase: ModelPhase, failovers: u32) -> bool {
        self.terminals
            .iter()
            .any(|s| s.phase == phase && s.failed == failovers)
    }
}

/// Enumerates every state reachable from [`ModelState::initial`] and
/// checks the no-stuck-client, boundedness and terminal-soundness
/// properties on each.
///
/// # Errors
///
/// Returns the first [`ModelViolation`] found, with its witness state.
pub fn explore(model: &FetchModel) -> Result<Exploration, ModelViolation> {
    let failover_bound = model
        .remote_replicas()
        .min(model.max_failovers.saturating_add(1));
    let mut succs: BTreeMap<ModelState, Vec<ModelState>> = BTreeMap::new();
    let mut queue = VecDeque::from([ModelState::initial()]);
    let mut transitions = 0usize;
    while let Some(s) = queue.pop_front() {
        if succs.contains_key(&s) {
            continue;
        }
        if s.episode_attempts > model.max_attempts.max(1) || s.failed > failover_bound {
            return Err(ModelViolation::BoundExceeded(s));
        }
        if s.phase == ModelPhase::Failed && s.failed == 0 {
            return Err(ModelViolation::SpuriousFailure(s));
        }
        let next = model.successors(s);
        if next.is_empty() && !s.phase.is_terminal() {
            return Err(ModelViolation::Deadlock(s));
        }
        transitions += next.len();
        queue.extend(next.iter().copied());
        succs.insert(s, next);
    }
    // Backward fixed point: states that can reach a terminal. Everything
    // reachable must be in it (no livelock).
    let mut can_finish: BTreeSet<ModelState> = succs
        .keys()
        .copied()
        .filter(|s| s.phase.is_terminal())
        .collect();
    loop {
        let grown: Vec<ModelState> = succs
            .iter()
            .filter(|(s, next)| {
                !can_finish.contains(s) && next.iter().any(|n| can_finish.contains(n))
            })
            .map(|(s, _)| *s)
            .collect();
        if grown.is_empty() {
            break;
        }
        can_finish.extend(grown);
    }
    if let Some(&stuck) = succs.keys().find(|s| !can_finish.contains(s)) {
        return Err(ModelViolation::TerminalUnreachable(stuck));
    }
    Ok(Exploration {
        states: succs.len(),
        transitions,
        terminals: succs
            .keys()
            .copied()
            .filter(|s| s.phase.is_terminal())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every policy configuration the replay benchmarks exercise (and
    /// then some) explores clean: no deadlock, no livelock, bounded.
    #[test]
    fn exhaustive_sweep_over_small_policies() {
        let mut total_states = 0usize;
        for replicas in 1..=3u32 {
            for local_hit in [false, true] {
                for max_attempts in 1..=3u32 {
                    for max_failovers in 0..=3u32 {
                        let model = FetchModel {
                            replicas,
                            local_hit,
                            max_attempts,
                            max_failovers,
                        };
                        let report = explore(&model).unwrap_or_else(|v| {
                            panic!("{model:?}: {v}");
                        });
                        assert!(
                            report.completed_reachable(),
                            "{model:?}: success must be reachable"
                        );
                        // A job can fail only by abandoning replicas: with
                        // a local copy always available it must burn the
                        // whole failover budget on remote ones; without
                        // one, any abandonable replica opens a route to
                        // exhausting the candidate list.
                        let expect_failable = if local_hit {
                            model.remote_replicas() > max_failovers
                        } else {
                            model.remote_replicas() > 0
                        };
                        assert_eq!(
                            report.failed_reachable(),
                            expect_failable,
                            "{model:?}: failure reachability mismatch"
                        );
                        assert!(
                            report.states <= 256,
                            "{model:?}: state space blew up to {}",
                            report.states
                        );
                        total_states += report.states;
                    }
                }
            }
        }
        // 72 configurations; keep a coarse floor so a future refactor
        // that accidentally prunes the search is caught.
        assert!(total_states > 500, "explored only {total_states} states");
    }

    /// The paper's Table 1 recovery settings, exactly.
    #[test]
    fn default_policy_explores_clean() {
        let model = FetchModel {
            replicas: 3,
            local_hit: false,
            max_attempts: 4,
            max_failovers: 3,
        };
        let report = explore(&model).expect("default policy model checks");
        assert!(report.completed_reachable() && report.failed_reachable());
        // 4 attempts x 3 replicas x failover rounds: a real state space,
        // every edge of which was walked.
        assert!(report.states > 20 && report.transitions >= report.states - 1);
    }

    /// A single local replica can never fail.
    #[test]
    fn pure_local_hit_never_fails() {
        let model = FetchModel {
            replicas: 1,
            local_hit: true,
            max_attempts: 2,
            max_failovers: 1,
        };
        let report = explore(&model).expect("local-only model checks");
        assert!(report.completed_reachable());
        assert!(!report.failed_reachable());
    }

    /// Seeded mutation: a transition table that loses the abandon edge
    /// livelocks (Backoff <-> Transferring forever is impossible in the
    /// real table, so we emulate it by checking the violation display).
    #[test]
    fn violations_render_their_witness() {
        let v = ModelViolation::Deadlock(ModelState::initial());
        assert!(v.to_string().contains("Arrival"));
        let v = ModelViolation::TerminalUnreachable(ModelState {
            phase: ModelPhase::Backoff,
            episode_attempts: 1,
            failed: 0,
        });
        assert!(v.to_string().contains("Backoff"));
    }
}
