//! Concurrent multi-client fetch replay.
//!
//! The blocking fetch paths ([`DataGrid::fetch_with`],
//! [`DataGrid::fetch_with_recovery`]) drive one transfer at a time: the
//! caller's event loop owns the simulator until the fetch resolves, so two
//! fetches never share the wire. That is exactly the paper's Table 1
//! setting — and exactly *not* a production grid, where every selection
//! decision is made while other clients' transfers are already consuming
//! the links it is scoring.
//!
//! [`DataGrid::replay_concurrent`] replays a whole workload — N clients
//! with seeded arrival times — against **one shared simulator**. Each job
//! runs the full Fig. 1 scenario as an event-driven state machine
//! (arrival → catalog/selection latency → decision → GridFTP transfer
//! with stall detection, seeded backoff retries, suspect marking and
//! next-best failover), and all in-flight transfers contend for bandwidth
//! in the same max-min allocation. Everything the blocking paths record —
//! `selection.decision` audit entries, `transfer.*` spans and metrics,
//! `selection.failover` events — is recorded here too, interleaved in
//! simulated-time order.
//!
//! Determinism: the replay consumes randomness only through the grid's
//! own seeded sources (selector, backoff jitter, background traffic), and
//! every routing decision is by value, never by map-iteration order — two
//! runs from the same seed produce byte-identical event logs.

use std::collections::HashMap;

use datagrid_catalog::name::LogicalFileName;
use datagrid_gridftp::executor::{SessionStatus, TransferSession};
use datagrid_gridftp::instrument::protocol_label;
use datagrid_gridftp::transfer::{PhaseRecord, TransferOutcome, TransferRequest};
use datagrid_obs::{Event, PhaseProfiler};
use datagrid_simnet::engine::{EventKind, FlowId};
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_sysmon::host::HostId;

use super::{DataGrid, FetchOptions, SESSION_TOKEN_BASE, TOK_MONITOR};
use crate::error::GridError;
use crate::factors::CandidateScore;
use crate::recovery::RecoveryOptions;

/// One scheduled fetch in a replay workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayJob {
    /// Simulated arrival time (clamped to "now" if already past).
    pub at: SimTime,
    /// The requesting host.
    pub client: HostId,
    /// The logical file to fetch.
    pub lfn: String,
}

/// Terminal state of one replayed fetch.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayStatus {
    /// The fetch delivered the full file.
    Completed {
        /// Host that served the winning replica.
        winner: String,
        /// Payload bytes delivered across all attempts (equals the file
        /// size).
        bytes: u64,
        /// `true` when the file was already present at the client.
        local_hit: bool,
    },
    /// Every candidate the failover policy was willing to try was
    /// abandoned (the per-job analogue of
    /// [`GridError::AllReplicasFailed`]).
    Failed {
        /// Hosts tried and abandoned, in order.
        failed: Vec<String>,
    },
}

impl ReplayStatus {
    /// `true` for [`ReplayStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, ReplayStatus::Completed { .. })
    }
}

/// The full record of one replayed fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Requesting host name.
    pub client: String,
    /// The logical file requested.
    pub lfn: String,
    /// When the job entered the system.
    pub submitted: SimTime,
    /// When the job reached a terminal state.
    pub finished: SimTime,
    /// Transfer attempts across all replicas tried.
    pub attempts: u32,
    /// Replicas abandoned before the terminal state.
    pub failovers: u32,
    /// Payload bytes moved, including work lost to stalled attempts.
    pub payload_moved: u64,
    /// How the job ended.
    pub status: ReplayStatus,
}

impl ReplayOutcome {
    /// Submission-to-terminal latency (queueing + decision + transfer).
    pub fn latency(&self) -> SimDuration {
        self.finished - self.submitted
    }
}

/// The result of one [`DataGrid::replay_concurrent`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Per-job outcomes, in submission (input) order.
    pub outcomes: Vec<ReplayOutcome>,
    /// Simulated time when the replay started.
    pub started: SimTime,
    /// Simulated time when the last job reached a terminal state.
    pub finished: SimTime,
}

impl ReplayReport {
    /// Wall time of the whole replay in simulated seconds.
    pub fn makespan(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Jobs that delivered their full file.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status.is_completed())
            .count()
    }

    /// Jobs that exhausted every candidate.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.completed()
    }
}

/// What a job is waiting for.
enum Phase {
    /// Its arrival timer.
    Arrival,
    /// The catalog + selection-server round trip.
    Deciding,
    /// A retry backoff pause.
    Backoff { pause: SimDuration },
    /// A synthesised local disk read.
    LocalRead { started: SimTime },
    /// A GridFTP session it owns.
    Transferring(Box<TransferSession>),
    /// Nothing: terminal.
    Done,
}

struct JobState {
    client: HostId,
    client_name: String,
    lfn: String,
    submitted: SimTime,
    /// Size of the requested file (set at the first decision).
    total_bytes: u64,
    /// Bytes committed by MODE E restart markers in the current episode.
    committed: u64,
    /// Attempts against the current replica.
    episode_attempts: u32,
    /// Attempts across all replicas.
    attempts: u32,
    failed_over: Vec<String>,
    payload_moved: u64,
    decision_started: SimTime,
    /// Audit sequence number of this job's latest decision, for attaching
    /// the measured time to the *right* entry under interleaving.
    audit_seq: Option<u64>,
    /// The replica currently being fetched.
    choice: Option<CandidateScore>,
    phase: Phase,
    /// Token block of the live GridFTP session, if any (key into
    /// [`Driver::session_blocks`]).
    session_block: Option<u64>,
    /// Data flows the live session has started, mirrored into
    /// [`Driver::flow_owner`]; the buffer is reused across attempts.
    owned_flows: Vec<FlowId>,
}

/// The replay event loop: grid + per-job state machines. `grid` and the
/// driver's own fields are disjoint, so job state can be borrowed while
/// grid methods run.
struct Driver<'a> {
    grid: &'a mut DataGrid,
    options: FetchOptions,
    recovery: &'a RecoveryOptions,
    states: Vec<JobState>,
    /// Control-timer token -> job index (arrival, decision, backoff and
    /// local-read timers; removed when fired).
    timers: HashMap<u64, usize>,
    /// Session token block -> job index, for O(1) routing of session
    /// timers (control/ramp/completion/watchdog) without scanning jobs.
    session_blocks: HashMap<u64, usize>,
    /// Data-flow id -> job index, for O(1) routing of flow completions.
    /// Never iterated (HashMap order must stay unobservable).
    flow_owner: HashMap<FlowId, usize>,
    /// Reusable ranked-candidate buffer for [`Driver::decide`].
    cand_buf: Vec<CandidateScore>,
    outcomes: Vec<Option<ReplayOutcome>>,
    remaining: usize,
    /// The grid's phase profiler, held here for the duration of the run
    /// so span guards can borrow it while `grid` methods take `&mut`.
    prof: PhaseProfiler,
}

impl DataGrid {
    /// Replays `jobs` — each a client/file/arrival-time triple — against
    /// this grid **concurrently**: every job runs the paper's Fig. 1
    /// scenario with the recovery semantics of
    /// [`DataGrid::fetch_with_recovery`], but all jobs share the event
    /// loop, so their transfers contend for bandwidth and their selection
    /// decisions observe each other's traffic (especially under
    /// [`SelectionMode::ContentionAware`](super::SelectionMode)).
    ///
    /// Per job, the terminal state is either `Completed` with the full
    /// file delivered or `Failed` after suspect-marking and next-best
    /// failover ran out of candidates — a replay never hangs and never
    /// leaks flows.
    ///
    /// # Errors
    ///
    /// Configuration errors surface as `Err` (unknown files/hosts,
    /// invalid requests); per-job transfer failures do not — they end in
    /// [`ReplayStatus::Failed`].
    pub fn replay_concurrent(
        &mut self,
        jobs: &[ReplayJob],
        options: FetchOptions,
        recovery: &RecoveryOptions,
    ) -> Result<ReplayReport, GridError> {
        let started = self.sim.now();
        self.obs.metrics_mut().add("replay.jobs", jobs.len() as u64);
        self.obs.emit(
            Event::new(started, "replay", "replay.start")
                .with("jobs", jobs.len())
                .with("mode", self.selection_mode.label()),
        );
        // Open the first timeline window at the replay boundary even if no
        // monitor tick has fired yet.
        self.sample_timeline();
        let prof = std::mem::take(&mut self.prof);
        let mut driver = Driver {
            grid: self,
            options,
            recovery,
            states: Vec::with_capacity(jobs.len()),
            timers: HashMap::new(),
            session_blocks: HashMap::new(),
            flow_owner: HashMap::new(),
            cand_buf: Vec::new(),
            outcomes: std::iter::repeat_with(|| None).take(jobs.len()).collect(),
            remaining: jobs.len(),
            prof,
        };
        for (idx, job) in jobs.iter().enumerate() {
            let token = driver.grid.alloc_session_tokens();
            driver.grid.sim.schedule_timer(job.at.max(started), token);
            driver.timers.insert(token, idx);
            driver.states.push(JobState {
                client: job.client,
                client_name: driver.grid.hosts[job.client.index()].name().to_string(),
                lfn: job.lfn.clone(),
                submitted: job.at.max(started),
                total_bytes: 0,
                committed: 0,
                episode_attempts: 0,
                attempts: 0,
                failed_over: Vec::new(),
                payload_moved: 0,
                decision_started: SimTime::ZERO,
                audit_seq: None,
                choice: None,
                phase: Phase::Arrival,
                session_block: None,
                owned_flows: Vec::new(),
            });
        }
        let run_result = driver.run();
        let raw = driver.outcomes;
        let prof = driver.prof;
        self.prof = prof;
        run_result?;
        // Close the timeline on the drained state of the network.
        self.sample_timeline();
        let finished = self.sim.now();
        let outcomes: Vec<ReplayOutcome> = raw
            .into_iter()
            .map(|o| o.expect("every replay job reached a terminal state"))
            .collect();
        let completed = outcomes.iter().filter(|o| o.status.is_completed()).count();
        self.obs.emit(
            Event::new(finished, "replay", "replay.end")
                .with("completed", completed)
                .with("failed", outcomes.len() - completed)
                .with("makespan_secs", (finished - started).as_secs_f64()),
        );
        Ok(ReplayReport {
            outcomes,
            started,
            finished,
        })
    }
}

impl Driver<'_> {
    // lint: hot-path
    fn run(&mut self) -> Result<(), GridError> {
        while self.remaining > 0 {
            let before = self.grid.sim.stats();
            let ev = {
                let _settle = self.prof.span("settle");
                self.grid
                    .sim
                    .next_event()
                    .expect("pending replay jobs keep the queue non-empty")
            };
            // Attribute the solver work this settle step triggered to a
            // nested `settle/solve` phase, from the engine's own counters.
            let after = self.grid.sim.stats();
            let solves = (after.incremental_solves + after.full_solves)
                .saturating_sub(before.incremental_solves + before.full_solves);
            if solves > 0 {
                self.prof.record_external(
                    &["settle", "solve"],
                    solves,
                    after
                        .solver_flows_touched
                        .saturating_sub(before.solver_flows_touched),
                );
            }
            // Cohort batching: count batched solve passes and the per-event
            // solves they replaced, so the profile shows the batching win.
            let avoided = after.solves_avoided.saturating_sub(before.solves_avoided);
            if avoided > 0 {
                self.prof.record_external(
                    &["settle", "batch"],
                    after.batched_solves.saturating_sub(before.batched_solves),
                    avoided,
                );
            }
            // 1. Control timers (arrival, decision latency, backoff,
            //    local read) — exact token match.
            if let EventKind::TimerFired(tok) = &ev.kind {
                if *tok >= SESSION_TOKEN_BASE {
                    if let Some(idx) = self.timers.remove(tok) {
                        self.on_control(idx)?;
                        continue;
                    }
                    // 2a. Session timers (control/ramp/completion/
                    //     watchdog): the token block identifies the owner
                    //     directly. A block with no live session — or one
                    //     whose session disowns the token — is a stale
                    //     watchdog from a finished attempt.
                    let block = (*tok - SESSION_TOKEN_BASE) / TransferSession::TOKENS_PER_SESSION;
                    if let Some(&idx) = self.session_blocks.get(&block) {
                        let owned = matches!(
                            &self.states[idx].phase,
                            Phase::Transferring(session) if session.owns(&ev)
                        );
                        if owned {
                            self.on_session_event(idx, &ev)?;
                            continue;
                        }
                    }
                }
            }
            // 2b. Data-flow completions: the flow index identifies the
            //     owner; unowned completions are NWS probes.
            if let EventKind::FlowCompleted(done) = &ev.kind {
                if let Some(&idx) = self.flow_owner.get(&done.id) {
                    self.on_session_event(idx, &ev)?;
                    continue;
                }
            }
            // 3. Grid plumbing: monitoring, probes, faults, stale timers.
            let monitor_tick = matches!(ev.kind, EventKind::TimerFired(TOK_MONITOR));
            self.grid.handle_internal(&ev);
            if monitor_tick {
                // Host loads just advanced: push fresh disk/CPU limits
                // into every running transfer, as the blocking paths do.
                for st in &mut self.states {
                    if let Phase::Transferring(session) = &mut st.phase {
                        let choice = st.choice.as_ref().expect("transferring jobs have a choice");
                        let fresh = [self.grid.endpoint_for(choice.host)];
                        let dst_fresh = self.grid.endpoint_for(st.client);
                        session.refresh_endpoints(&mut self.grid.sim, &fresh, dst_fresh);
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocates a control token for `idx` firing after `pause`.
    fn schedule_control(&mut self, idx: usize, pause: SimDuration) {
        let token = self.grid.alloc_session_tokens();
        self.grid.sim.schedule_timer_after(pause, token);
        self.timers.insert(token, idx);
    }

    /// Mirrors the flows the job's live session has started into
    /// [`Driver::flow_owner`]. Called after every session call that can
    /// start flows; the per-job `owned_flows` list keeps the mirror exact
    /// without ever iterating the map.
    fn sync_session_flows(&mut self, idx: usize) {
        let st = &mut self.states[idx];
        if let Phase::Transferring(session) = &st.phase {
            for id in session.active_flow_ids() {
                if !st.owned_flows.contains(&id) {
                    st.owned_flows.push(id);
                    self.flow_owner.insert(id, idx);
                }
            }
        }
    }

    /// Unregisters a finished attempt's session block and flow mirror
    /// (buffer capacity is kept for the next attempt).
    fn release_session(&mut self, idx: usize) {
        let st = &mut self.states[idx];
        if let Some(block) = st.session_block.take() {
            self.session_blocks.remove(&block);
        }
        for id in st.owned_flows.drain(..) {
            self.flow_owner.remove(&id);
        }
    }

    fn on_control(&mut self, idx: usize) -> Result<(), GridError> {
        match std::mem::replace(&mut self.states[idx].phase, Phase::Done) {
            Phase::Arrival => {
                self.states[idx].decision_started = self.grid.sim.now();
                self.states[idx].phase = Phase::Deciding;
                let latency = self.grid.service_latency(self.states[idx].client);
                self.schedule_control(idx, latency);
                Ok(())
            }
            Phase::Deciding => self.decide(idx),
            Phase::Backoff { pause } => {
                {
                    let _retry = self.prof.span("retry");
                    let now = self.grid.sim.now();
                    if let Some(tl) = self.grid.timeline.as_mut() {
                        tl.record_retry(now);
                    }
                    self.grid.obs.metrics_mut().inc("transfer.retries");
                    if self.grid.obs.is_enabled() {
                        let st = &self.states[idx];
                        let choice = st.choice.as_ref().expect("backoff implies a choice");
                        self.grid.obs.emit(
                            Event::new(now, "gridftp", "transfer.retry")
                                .with("src", choice.host_name.as_str())
                                .with("dst", st.client_name.as_str())
                                .with("attempt", st.episode_attempts + 1)
                                .with("backoff_secs", pause.as_secs_f64())
                                .with("resume_offset", st.committed),
                        );
                    }
                }
                self.start_attempt(idx)
            }
            Phase::LocalRead { started } => {
                let now = self.grid.sim.now();
                let st = &mut self.states[idx];
                st.attempts += 1;
                let bytes = st.total_bytes;
                let outcome = TransferOutcome {
                    payload_bytes: bytes,
                    wire_bytes: 0,
                    streams: 0,
                    stripes: 0,
                    started,
                    finished: now,
                    phases: vec![PhaseRecord {
                        name: "data",
                        start: started,
                        end: now,
                    }],
                };
                {
                    let st = &self.states[idx];
                    self.grid.record_transfer_for(
                        &st.client_name,
                        &st.client_name,
                        "local",
                        &outcome,
                        Some(&st.lfn),
                    );
                }
                self.finish_transfer(idx, &outcome, true);
                Ok(())
            }
            Phase::Transferring(_) | Phase::Done => {
                unreachable!("control timers only target waiting jobs")
            }
        }
    }

    /// Scores candidates, records the decision and launches the chosen
    /// replica's first attempt. Re-entered after an abandon with the
    /// failed hosts excluded (the `"failover"` policy label).
    fn decide(&mut self, idx: usize) -> Result<(), GridError> {
        let guard = self.prof.span("decide");
        let client = self.states[idx].client;
        // The ranking lands in the driver's reusable buffer; the chosen
        // candidate is moved out of it below, so a decision allocates no
        // candidate list of its own.
        self.grid
            .score_candidates_into(client, &self.states[idx].lfn, &mut self.cand_buf)?;
        self.prof.add_items(self.cand_buf.len() as u64);
        let failover = !self.states[idx].failed_over.is_empty();
        let chosen = if failover {
            let next = self
                .cand_buf
                .iter()
                .position(|c| !self.states[idx].failed_over.contains(&c.host_name));
            match next {
                Some(i) => i,
                None => {
                    drop(guard);
                    self.fail_job(idx);
                    return Ok(());
                }
            }
        } else {
            self.grid.selector.choose(&self.cand_buf)
        };
        let decision_latency = self.grid.sim.now() - self.states[idx].decision_started;
        let seq = self.grid.obs.audit().next_seq();
        self.grid.record_selection(
            &self.states[idx].lfn,
            client,
            &self.cand_buf,
            chosen,
            decision_latency,
            failover.then_some("failover"),
        );
        let choice = self.cand_buf.swap_remove(chosen);
        let st = &mut self.states[idx];
        st.audit_seq = Some(seq);
        st.choice = Some(choice);
        st.committed = 0;
        st.episode_attempts = 0;
        if !failover {
            let name = LogicalFileName::new(&st.lfn)?;
            st.total_bytes = self
                .grid
                .catalog
                .lookup(&name)
                .expect("scored candidates imply a registered file")
                .entry()
                .size_bytes();
        }
        drop(guard);
        self.start_attempt(idx)
    }

    /// Starts one transfer attempt against the current choice — a
    /// synthesised local read for local hits, a GridFTP session
    /// otherwise, resuming from the committed offset on retries.
    fn start_attempt(&mut self, idx: usize) -> Result<(), GridError> {
        let guard = self.prof.span("dispatch");
        let (is_local, choice_host) = {
            let choice = self.states[idx]
                .choice
                .as_ref()
                .expect("attempts follow a decision");
            (choice.is_local, choice.host)
        };
        let client = self.states[idx].client;
        let total = self.states[idx].total_bytes;
        if is_local {
            self.prof.add_items(total);
            let rate = self.grid.hosts[client.index()].available_disk_read();
            let pause = rate.time_for_bytes(total);
            self.states[idx].phase = Phase::LocalRead {
                started: self.grid.sim.now(),
            };
            drop(guard);
            self.schedule_control(idx, pause);
            return Ok(());
        }
        let committed = self.states[idx].committed;
        let req = TransferRequest::new(total)
            .with_protocol(self.options.protocol)
            .with_parallelism(self.options.parallelism)
            .with_protection(self.options.protection);
        let attempt_req = if committed == 0 {
            req
        } else {
            req.with_range(committed, total - committed)
        };
        let cache_key = (self.grid.node_of(client), self.grid.node_of(choice_host));
        let cached = self.grid.control_cached(cache_key);
        let tcp = self
            .grid
            .tcp_for(self.grid.node_of(choice_host), self.grid.node_of(client));
        let base = self.grid.alloc_session_tokens();
        let mut session = TransferSession::new(
            attempt_req,
            self.grid.endpoint_for(choice_host),
            self.grid.endpoint_for(client),
            tcp,
            base,
        )?
        .with_costs(self.grid.costs)
        .with_cached_control(cached)
        .with_stall_timeout(self.recovery.stall_timeout);
        self.prof.add_items(total - committed);
        let st = &mut self.states[idx];
        st.episode_attempts += 1;
        st.attempts += 1;
        session.start(&mut self.grid.sim);
        st.phase = Phase::Transferring(Box::new(session));
        st.owned_flows.clear();
        let block = (base - SESSION_TOKEN_BASE) / TransferSession::TOKENS_PER_SESSION;
        st.session_block = Some(block);
        self.session_blocks.insert(block, idx);
        drop(guard);
        Ok(())
    }

    // lint: hot-path
    fn on_session_event(
        &mut self,
        idx: usize,
        ev: &datagrid_simnet::engine::SimEvent,
    ) -> Result<(), GridError> {
        let status = {
            let Phase::Transferring(session) = &mut self.states[idx].phase else {
                unreachable!("owner scan only matches transferring jobs");
            };
            session.handle(&mut self.grid.sim, ev)
        };
        match status {
            SessionStatus::InProgress => {
                // Ramp-up may have just started the data flows; mirror
                // them into the dispatch index.
                self.sync_session_flows(idx);
                Ok(())
            }
            SessionStatus::Complete(outcome) => {
                self.release_session(idx);
                let st = &mut self.states[idx];
                st.payload_moved += outcome.payload_bytes;
                let cache_key = {
                    let st = &self.states[idx];
                    let choice = st.choice.as_ref().expect("transferring jobs have a choice");
                    (self.grid.node_of(st.client), self.grid.node_of(choice.host))
                };
                self.grid.remember_control(cache_key);
                let protocol = protocol_label(self.options.protocol);
                {
                    let st = &self.states[idx];
                    let choice = st.choice.as_ref().expect("transferring jobs have a choice");
                    self.grid.record_transfer_for(
                        &choice.host_name,
                        &st.client_name,
                        protocol,
                        &outcome,
                        Some(&st.lfn),
                    );
                }
                self.finish_transfer(idx, &outcome, false);
                Ok(())
            }
            SessionStatus::Failed(failure) => {
                self.release_session(idx);
                let st = &mut self.states[idx];
                st.committed += failure.restart_offset();
                st.payload_moved += failure.delivered_payload;
                st.phase = Phase::Done; // placeholder until rescheduled below
                let (attempts, committed) = (st.episode_attempts, st.committed);
                self.grid.obs.metrics_mut().inc("transfer.stalls");
                if self.grid.obs.is_enabled() {
                    let st = &self.states[idx];
                    let choice = st.choice.as_ref().expect("stalled jobs have a choice");
                    self.grid.obs.emit(
                        Event::new(failure.at, "gridftp", "transfer.stall")
                            .with("src", choice.host_name.as_str())
                            .with("dst", st.client_name.as_str())
                            .with("attempt", attempts)
                            .with("delivered", failure.delivered_payload)
                            .with("committed", committed)
                            .with("resumable", failure.resumable),
                    );
                }
                if self.recovery.retry.exhausted(attempts) {
                    self.abandon_replica(idx)
                } else {
                    let pause = self
                        .recovery
                        .retry
                        .backoff(attempts - 1, &mut self.grid.recovery_rng);
                    self.states[idx].phase = Phase::Backoff { pause };
                    self.schedule_control(idx, pause);
                    Ok(())
                }
            }
        }
    }

    /// The current replica's retries are exhausted: mark it suspect,
    /// record the failover, and either fail the job or schedule the next
    /// decision round.
    fn abandon_replica(&mut self, idx: usize) -> Result<(), GridError> {
        let guard = self.prof.span("failover");
        let st = &mut self.states[idx];
        let choice = st.choice.take().expect("abandon follows attempts");
        let now = self.grid.sim.now();
        if let Some(tl) = self.grid.timeline.as_mut() {
            tl.record_failover(now);
        }
        self.grid.obs.metrics_mut().inc("transfer.abandoned");
        if self.grid.obs.is_enabled() {
            self.grid.obs.emit(
                Event::new(now, "gridftp", "transfer.abandoned")
                    .with("src", choice.host_name.as_str())
                    .with("dst", st.client_name.as_str())
                    .with("attempts", st.episode_attempts)
                    .with("delivered", st.committed),
            );
        }
        self.grid.catalog.mark_suspect(&choice.location);
        self.grid.invalidate_scores();
        self.grid.obs.metrics_mut().inc("selection.failovers");
        if self.grid.obs.is_enabled() {
            self.grid.obs.emit(
                Event::new(now, "select", "selection.failover")
                    .with("lfn", st.lfn.as_str())
                    .with("abandoned", choice.host_name.as_str())
                    .with("attempts", st.episode_attempts)
                    .with("delivered", st.committed),
            );
        }
        st.failed_over.push(choice.host_name);
        if st.failed_over.len() as u64 > u64::from(self.recovery.max_failovers) {
            drop(guard);
            self.fail_job(idx);
            return Ok(());
        }
        self.states[idx].decision_started = now;
        self.states[idx].phase = Phase::Deciding;
        let latency = self.grid.service_latency(self.states[idx].client);
        drop(guard);
        self.schedule_control(idx, latency);
        Ok(())
    }

    /// Terminal success: attach the measured time to this job's decision
    /// and record the outcome.
    fn finish_transfer(&mut self, idx: usize, outcome: &TransferOutcome, local_hit: bool) {
        let st = &mut self.states[idx];
        let choice = st.choice.as_ref().expect("finishing jobs have a choice");
        let winner = choice.host_name.clone();
        if local_hit {
            st.payload_moved += outcome.payload_bytes;
        }
        let delivered = st.committed + outcome.payload_bytes;
        if let Some(seq) = st.audit_seq {
            let secs = outcome.duration().as_secs_f64();
            if let Some(decision) = self.grid.obs.audit_mut().decision_mut_by_seq(seq) {
                decision.attach_measured(&winner, secs);
            }
        }
        let st = &self.states[idx];
        let now = self.grid.sim.now();
        let latency_secs = (now - st.submitted).as_secs_f64();
        if let Some(tl) = self.grid.timeline.as_mut() {
            tl.observe_latency(now, latency_secs);
            tl.record_completion(now, true);
        }
        self.grid.obs.metrics_mut().inc("replay.completed");
        if self.grid.obs.is_enabled() {
            self.grid.obs.emit(
                Event::new(now, "replay", "replay.job.done")
                    .with("client", st.client_name.as_str())
                    .with("lfn", st.lfn.as_str())
                    .with("winner", winner.as_str())
                    .with("bytes", delivered)
                    .with("secs", latency_secs),
            );
        }
        self.outcomes[idx] = Some(ReplayOutcome {
            client: st.client_name.clone(),
            lfn: st.lfn.clone(),
            submitted: st.submitted,
            finished: self.grid.sim.now(),
            attempts: st.attempts,
            failovers: st.failed_over.len() as u32,
            payload_moved: st.payload_moved,
            status: ReplayStatus::Completed {
                winner,
                bytes: delivered,
                local_hit,
            },
        });
        self.states[idx].phase = Phase::Done;
        self.remaining -= 1;
    }

    /// Terminal failure: every candidate the policy allowed was tried and
    /// abandoned.
    fn fail_job(&mut self, idx: usize) {
        let st = &self.states[idx];
        if let Some(tl) = self.grid.timeline.as_mut() {
            tl.record_completion(self.grid.sim.now(), false);
        }
        self.grid.obs.metrics_mut().inc("replay.failed");
        if self.grid.obs.is_enabled() {
            self.grid.obs.emit(
                Event::new(self.grid.sim.now(), "replay", "replay.job.failed")
                    .with("client", st.client_name.as_str())
                    .with("lfn", st.lfn.as_str())
                    .with("failed_over", st.failed_over.len()),
            );
        }
        self.outcomes[idx] = Some(ReplayOutcome {
            client: st.client_name.clone(),
            lfn: st.lfn.clone(),
            submitted: st.submitted,
            finished: self.grid.sim.now(),
            attempts: st.attempts,
            failovers: st.failed_over.len() as u32,
            payload_moved: st.payload_moved,
            status: ReplayStatus::Failed {
                failed: st.failed_over.clone(),
            },
        });
        self.states[idx].phase = Phase::Done;
        self.remaining -= 1;
    }
}
