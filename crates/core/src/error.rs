//! Data Grid error types.

use std::error::Error;
use std::fmt;

use datagrid_catalog::CatalogError;
use datagrid_gridftp::TransferError;

/// Errors surfaced by the Data Grid orchestrator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// The replica catalog rejected an operation.
    Catalog(CatalogError),
    /// A transfer could not be planned or executed.
    Transfer(TransferError),
    /// The named host is not part of this grid.
    UnknownHost {
        /// The unknown host name.
        name: String,
    },
    /// The logical file has no registered replicas to fetch from.
    NoReplicas {
        /// The logical file name.
        lfn: String,
    },
    /// A replica points at a host that runs no storage service.
    ReplicaOffGrid {
        /// The physical location in question.
        location: String,
    },
    /// Every candidate replica was tried and abandoned; the fetch cannot
    /// complete until a fault clears or a new replica appears.
    AllReplicasFailed {
        /// The logical file name.
        lfn: String,
        /// Replicas abandoned after their retries were exhausted.
        failed: Vec<String>,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Catalog(e) => write!(f, "catalog: {e}"),
            GridError::Transfer(e) => write!(f, "transfer: {e}"),
            GridError::UnknownHost { name } => write!(f, "unknown grid host {name:?}"),
            GridError::NoReplicas { lfn } => {
                write!(f, "logical file {lfn:?} has no registered replicas")
            }
            GridError::ReplicaOffGrid { location } => {
                write!(f, "replica location {location} is not on any grid host")
            }
            GridError::AllReplicasFailed { lfn, failed } => {
                write!(
                    f,
                    "every replica of {lfn:?} failed (abandoned: {})",
                    failed.join(", ")
                )
            }
        }
    }
}

impl Error for GridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GridError::Catalog(e) => Some(e),
            GridError::Transfer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for GridError {
    fn from(e: CatalogError) -> Self {
        GridError::Catalog(e)
    }
}

impl From<TransferError> for GridError {
    fn from(e: TransferError) -> Self {
        GridError::Transfer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = GridError::UnknownHost {
            name: "mars".into(),
        };
        assert!(e.to_string().contains("mars"));
        assert!(e.source().is_none());
        let e: GridError = CatalogError::UnknownFile { name: "f".into() }.into();
        assert!(e.source().is_some());
        let e: GridError = TransferError::InvalidRequest { reason: "x".into() }.into();
        assert!(e.to_string().starts_with("transfer:"));
        let e = GridError::AllReplicasFailed {
            lfn: "file-a".into(),
            failed: vec!["hit0".into(), "lz02".into()],
        };
        assert!(e.to_string().contains("hit0, lz02"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<GridError>();
    }
}
