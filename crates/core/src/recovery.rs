//! Failure recovery for grid fetches: retry policy, stall detection and
//! next-best-replica failover.
//!
//! The paper's scenario assumes the chosen replica server stays healthy
//! for the whole transfer. Under injected faults (see
//! `datagrid_simnet::fault`) that assumption breaks, and the client walks
//! a recovery ladder instead:
//!
//! 1. a stalled transfer is detected by a watchdog after
//!    [`RecoveryOptions::stall_timeout`] of zero progress,
//! 2. the session is retried against the *same* replica with exponential
//!    backoff, resuming from the last MODE E restart marker
//!    ([`RetryPolicy`]),
//! 3. when retries are exhausted the replica is marked *suspect* in the
//!    catalog, candidates are re-ranked (suspects are penalised) and the
//!    fetch fails over to the next-best replica, up to
//!    [`RecoveryOptions::max_failovers`] times.
//!
//! Every rung is recorded through the observability layer as events,
//! metrics and audit entries, so a fault episode can be reconstructed
//! from the exports alone.

use datagrid_gridftp::retry::RetryPolicy;
use datagrid_simnet::time::SimDuration;

use crate::grid::FetchReport;

/// How a fetch survives stalled transfers and dead replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryOptions {
    /// Per-replica retry schedule (attempt cap, backoff, jitter).
    pub retry: RetryPolicy,
    /// How long a transfer may make zero progress before the watchdog
    /// declares it stalled.
    pub stall_timeout: SimDuration,
    /// How many times the fetch may abandon a replica and fail over to
    /// the next-ranked candidate.
    pub max_failovers: u32,
}

impl Default for RecoveryOptions {
    /// Four attempts per replica, a 5 s stall watchdog and up to three
    /// failovers — enough to walk the whole paper testbed.
    fn default() -> Self {
        RecoveryOptions {
            retry: RetryPolicy::default(),
            stall_timeout: SimDuration::from_secs(5),
            max_failovers: 3,
        }
    }
}

impl RecoveryOptions {
    /// Sets the per-replica retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the stall watchdog interval.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn with_stall_timeout(mut self, timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "stall timeout must be positive");
        self.stall_timeout = timeout;
        self
    }

    /// Sets the failover cap.
    pub fn with_max_failovers(mut self, max_failovers: u32) -> Self {
        self.max_failovers = max_failovers;
        self
    }
}

/// A [`FetchReport`] plus the recovery history that produced it (see
/// [`DataGrid::fetch_with_recovery`](crate::grid::DataGrid::fetch_with_recovery)).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredFetch {
    /// The completed fetch, with candidates re-ranked as of the final,
    /// successful selection.
    pub report: FetchReport,
    /// Hosts abandoned after their retries were exhausted, in the order
    /// they failed.
    pub failed_over: Vec<String>,
    /// GridFTP sessions started across all replicas, including the first.
    pub attempts: u32,
    /// Payload bytes moved over the wire across every attempt, counting
    /// bytes that a restart later threw away.
    pub payload_moved: u64,
    /// Total simulated time spent waiting in backoff pauses.
    pub backoff_total: SimDuration,
}

impl RecoveredFetch {
    /// Number of replicas abandoned before the fetch succeeded.
    pub fn failovers(&self) -> usize {
        self.failed_over.len()
    }

    /// `true` when the first-choice replica delivered the file with no
    /// retries and no failover.
    pub fn clean(&self) -> bool {
        self.attempts == 1 && self.failed_over.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let opts = RecoveryOptions::default();
        assert_eq!(opts.retry.max_attempts, 4);
        assert_eq!(opts.max_failovers, 3);
        assert!(!opts.stall_timeout.is_zero());
    }

    #[test]
    fn builders_compose() {
        let opts = RecoveryOptions::default()
            .with_retry(RetryPolicy::no_retries())
            .with_stall_timeout(SimDuration::from_secs(1))
            .with_max_failovers(1);
        assert_eq!(opts.retry.max_attempts, 1);
        assert_eq!(opts.stall_timeout, SimDuration::from_secs(1));
        assert_eq!(opts.max_failovers, 1);
    }

    #[test]
    #[should_panic(expected = "stall timeout")]
    fn zero_stall_timeout_rejected() {
        let _ = RecoveryOptions::default().with_stall_timeout(SimDuration::ZERO);
    }
}
