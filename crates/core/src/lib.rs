//! # datagrid-core
//!
//! The paper's contribution: **cost-model driven replica selection** for
//! Data Grid environments, plus the [`grid::DataGrid`] orchestrator that
//! stitches every substrate together and executes the paper's replica
//! selection scenario (its Fig. 1) end to end.
//!
//! * [`factors`] — the three system factors (`BW_P`, `CPU_P`, `IO_P`),
//! * [`cost`] — formula (1) with the administrator weights (0.8/0.1/0.1),
//! * [`policy`] — the cost-model policy and the baseline policies used in
//!   ablations,
//! * [`history`] — the Fig. 5 cost program's data model,
//! * [`grid`] — builder and orchestrator.
//!
//! ## Example
//!
//! ```
//! use datagrid_core::grid::GridBuilder;
//! use datagrid_simnet::prelude::*;
//! use datagrid_sysmon::host::HostSpec;
//! use datagrid_sysmon::load::LoadModel;
//!
//! let mut b = GridBuilder::new(7);
//! let a = b.add_host(HostSpec::new("a"), LoadModel::Constant(0.1), LoadModel::Constant(0.1));
//! let c = b.add_host(HostSpec::new("c"), LoadModel::Constant(0.3), LoadModel::Constant(0.2));
//! b.topology_mut().add_duplex_link(
//!     a, c,
//!     LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(5)),
//! );
//! b.monitor_all_host_pairs();
//! let mut grid = b.build();
//! grid.catalog_mut().register_logical("file-a".parse().unwrap(), 8 << 20).unwrap();
//! grid.place_replica("file-a", "c").unwrap();
//! grid.warm_up(SimDuration::from_secs(60));
//! let client = grid.host_id("a").unwrap();
//! let report = grid.fetch(client, "file-a").unwrap();
//! assert_eq!(report.chosen_candidate().host_name, "c");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod error;
pub mod factors;
pub mod grid;
pub mod history;
pub mod job;
pub mod policy;
pub mod recovery;
pub mod replication;
pub mod tuning;

pub use cost::{CostModel, Weights};
pub use error::GridError;
pub use factors::{CandidateScore, SystemFactors};
pub use grid::modelcheck::{explore, Exploration, FetchModel, ModelPhase, ModelState};
pub use grid::replay::{ReplayJob, ReplayOutcome, ReplayReport, ReplayStatus};
pub use grid::{DataGrid, FetchOptions, FetchReport, GridBuilder, SelectionMode};
pub use policy::{ReplicaSelector, SelectionPolicy};
pub use recovery::{RecoveredFetch, RecoveryOptions};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::cost::{CostModel, Weights};
    pub use crate::error::GridError;
    pub use crate::factors::{CandidateScore, SystemFactors};
    pub use crate::grid::replay::{ReplayJob, ReplayOutcome, ReplayReport, ReplayStatus};
    pub use crate::grid::{DataGrid, FetchOptions, FetchReport, GridBuilder, SelectionMode};
    pub use crate::history::CostHistory;
    pub use crate::job::{JobReport, JobSpec};
    pub use crate::policy::{ReplicaSelector, SelectionPolicy};
    pub use crate::recovery::{RecoveredFetch, RecoveryOptions};
    pub use crate::replication::{ReplicationAdvice, ReplicationManager, ReplicationStrategy};
    pub use crate::tuning::{Observation, WeightTuner};
    pub use datagrid_gridftp::retry::RetryPolicy;
    pub use datagrid_obs::{
        CandidateAudit, Event, EventBus, JsonlSink, MetricsRegistry, Recorder, SelectionAuditLog,
        SelectionDecision, TextSink, TransferSpan,
    };
    pub use datagrid_simnet::fault::{FaultKind, FaultPlan};
}
