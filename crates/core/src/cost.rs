//! The replica selection cost model — formula (1) of the paper.
//!
//! ```text
//! Score(i→j) = BW_P(i→j)·BW_W + CPU_P(j)·CPU_W + IO_P(j)·IO_W
//! ```
//!
//! The three weights are set by the Data Grid administrator. After their
//! measurements the authors conclude that network bandwidth dominates
//! transfer time while CPU and I/O state matter only slightly, and fix the
//! weights at **0.8 / 0.1 / 0.1** — exposed here as
//! [`Weights::PAPER_DEFAULT`]. Determining the weights automatically is the
//! paper's future work; the `ablation_weights` bench sweeps them.

use crate::factors::SystemFactors;

/// The administrator-chosen weights of the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// `BW_W`: weight of the network bandwidth factor.
    pub bandwidth: f64,
    /// `CPU_W`: weight of the CPU idle factor.
    pub cpu: f64,
    /// `IO_W`: weight of the I/O idle factor.
    pub io: f64,
}

impl Weights {
    /// The paper's published weights: 80 % bandwidth, 10 % CPU, 10 % I/O.
    pub const PAPER_DEFAULT: Weights = Weights {
        bandwidth: 0.8,
        cpu: 0.1,
        io: 0.1,
    };

    /// Creates validated weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative/non-finite or they do not sum to 1
    /// within `1e-9` (use [`Weights::normalized`] to coerce arbitrary
    /// proportions).
    pub fn new(bandwidth: f64, cpu: f64, io: f64) -> Self {
        let w = Weights { bandwidth, cpu, io };
        w.validate();
        w
    }

    /// Creates weights from arbitrary non-negative proportions, scaling
    /// them to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if any proportion is negative or all are zero.
    pub fn normalized(bandwidth: f64, cpu: f64, io: f64) -> Self {
        assert!(
            bandwidth >= 0.0 && cpu >= 0.0 && io >= 0.0,
            "weights must be non-negative"
        );
        let sum = bandwidth + cpu + io;
        assert!(sum > 0.0 && sum.is_finite(), "weights must not all be zero");
        Weights {
            bandwidth: bandwidth / sum,
            cpu: cpu / sum,
            io: io / sum,
        }
    }

    fn validate(&self) {
        for (name, w) in [
            ("bandwidth", self.bandwidth),
            ("cpu", self.cpu),
            ("io", self.io),
        ] {
            assert!(
                w.is_finite() && w >= 0.0,
                "{name} weight must be finite and non-negative, got {w}"
            );
        }
        let sum = self.bandwidth + self.cpu + self.io;
        assert!((sum - 1.0).abs() < 1e-9, "weights must sum to 1, got {sum}");
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::PAPER_DEFAULT
    }
}

/// The cost model: scores candidates from their system factors.
///
/// Despite the name "cost", higher scores are better (the paper's score
/// expresses how *effectively* the client would acquire the replica).
///
/// ```
/// use datagrid_core::cost::{CostModel, Weights};
/// use datagrid_core::factors::SystemFactors;
///
/// let model = CostModel::new(Weights::PAPER_DEFAULT);
/// let near = SystemFactors::new(0.9, 0.5, 0.5);
/// let far = SystemFactors::new(0.1, 1.0, 1.0);
/// assert!(model.score(&near) > model.score(&far));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostModel {
    weights: Weights,
}

impl CostModel {
    /// Creates a model with the given weights.
    pub fn new(weights: Weights) -> Self {
        CostModel { weights }
    }

    /// The paper's model (weights 0.8/0.1/0.1).
    pub fn paper() -> Self {
        CostModel::new(Weights::PAPER_DEFAULT)
    }

    /// The configured weights.
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// Formula (1): the weighted sum of the three factors. Always in
    /// `[0, 1]`.
    pub fn score(&self, factors: &SystemFactors) -> f64 {
        self.weights.bandwidth * factors.bandwidth_fraction
            + self.weights.cpu * factors.cpu_idle
            + self.weights.io * factors.io_idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_sum_to_one() {
        let w = Weights::PAPER_DEFAULT;
        assert!((w.bandwidth + w.cpu + w.io - 1.0).abs() < 1e-12);
        assert_eq!(Weights::default(), w);
    }

    #[test]
    fn score_matches_formula() {
        let m = CostModel::paper();
        let f = SystemFactors::new(0.5, 0.8, 0.6);
        let expected = 0.8 * 0.5 + 0.1 * 0.8 + 0.1 * 0.6;
        assert!((m.score(&f) - expected).abs() < 1e-12);
    }

    #[test]
    fn score_bounds() {
        let m = CostModel::paper();
        assert_eq!(m.score(&SystemFactors::perfect()), 1.0);
        assert_eq!(m.score(&SystemFactors::new(0.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn normalized_scales_proportions() {
        let w = Weights::normalized(8.0, 1.0, 1.0);
        assert!((w.bandwidth - 0.8).abs() < 1e-12);
        assert!((w.cpu - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_dominates_with_paper_weights() {
        // A replica with terrible bandwidth but idle host must lose to a
        // replica with great bandwidth on a busy host.
        let m = CostModel::paper();
        let idle_far = SystemFactors::new(0.05, 1.0, 1.0);
        let busy_near = SystemFactors::new(0.9, 0.2, 0.2);
        assert!(m.score(&busy_near) > m.score(&idle_far));
    }

    #[test]
    fn custom_weights_change_the_ordering() {
        // With CPU-dominant weights the ordering flips.
        let m = CostModel::new(Weights::new(0.1, 0.8, 0.1));
        let idle_far = SystemFactors::new(0.05, 1.0, 1.0);
        let busy_near = SystemFactors::new(0.9, 0.2, 0.2);
        assert!(m.score(&idle_far) > m.score(&busy_near));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn unnormalised_weights_rejected() {
        let _ = Weights::new(0.8, 0.8, 0.8);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = Weights::new(1.2, -0.1, -0.1);
    }
}
