//! The Data Grid orchestrator.
//!
//! [`DataGrid`] composes every subsystem of the reproduction — the network
//! simulator, simulated hosts, MDS, NWS sensors, the replica catalog, the
//! selection server and the GridFTP executor — and executes the paper's
//! Fig. 1 scenario end to end:
//!
//! 1. the client asks the replica catalog for the physical locations of a
//!    logical file,
//! 2. the replica selection server obtains the three system factors for
//!    every candidate from the information services,
//! 3. the cost model ranks the candidates and one is chosen,
//! 4. the replica is fetched over GridFTP while monitoring continues.
//!
//! Build one with [`GridBuilder`]. Time is explicit: monitoring (host load
//! sampling, MDS refresh, NWS bandwidth probes) runs on a fixed interval
//! whenever the grid advances, including *during* transfers.

pub mod modelcheck;
pub mod replay;

use std::cell::RefCell;
use std::collections::HashMap;

use datagrid_catalog::catalog::ReplicaCatalog;
use datagrid_catalog::name::{LogicalFileName, PhysicalFileName};
use datagrid_gridftp::error::TransferError;
use datagrid_gridftp::executor::{
    ProtocolCosts, RecoveredTransfer, SessionStatus, TransferEndpoint, TransferSession,
};
use datagrid_gridftp::instrument::{protocol_label, span_from_outcome};
use datagrid_gridftp::transfer::{
    DataChannelProtection, PhaseRecord, Protocol, TransferOutcome, TransferRequest,
};
use datagrid_obs::{
    CandidateAudit, Event, MetricsRegistry, PhaseProfiler, Recorder, SelectionAuditLog,
    SelectionDecision, TimelineRecorder,
};
use datagrid_simnet::background::BackgroundProfile;
use datagrid_simnet::engine::{EventKind, FlowId, FlowSpec, FlowTag, NetSim, SimEvent};
use datagrid_simnet::fault::FaultPlan;
use datagrid_simnet::rng::SimRng;
use datagrid_simnet::tcp::TcpParams;
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_simnet::topology::{LinkId, NodeId, Topology};
use datagrid_simnet::trace::NetworkTrace;
use datagrid_sysmon::host::{HostId, HostSpec, SimHost};
use datagrid_sysmon::load::LoadModel;
use datagrid_sysmon::mds::MdsDirectory;
use datagrid_sysmon::nws::sensor::BandwidthSensor;
use datagrid_sysmon::nws::NwsRegistry;

use crate::cost::{CostModel, Weights};
use crate::error::GridError;
use crate::factors::{rank_by_score, CandidateScore, SystemFactors};
use crate::policy::{ReplicaSelector, SelectionPolicy};
use crate::recovery::{RecoveredFetch, RecoveryOptions};

/// Histogram bounds (seconds) for whole transfers — the paper's measured
/// times span roughly a second to a few hundred seconds.
const TRANSFER_BOUNDS_SECS: &[f64] = datagrid_obs::metrics::LATENCY_BOUNDS_SECS;
/// Histogram bounds (seconds) for sub-transfer phases (auth, handshake,
/// ramp-up, data, teardown) — much finer than whole transfers.
const PHASE_BOUNDS_SECS: &[f64] = &[0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0];
/// Histogram bounds for cost-model scores, which live in `[0, 1]`.
const SCORE_BOUNDS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
/// Histogram bounds for parallel stream counts (the Fig. 4 sweep range).
const STREAM_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
/// Histogram bounds (seconds) for catalog + selection decision latency.
const DECISION_BOUNDS_SECS: &[f64] = &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

const TOK_MONITOR: u64 = 0;
const TOK_SENTINEL: u64 = 1;
/// Probe-launch timers: `TOK_PROBE_BASE + pair_index`.
const TOK_PROBE_BASE: u64 = 1000;
const SESSION_TOKEN_BASE: u64 = 1 << 20;

/// Multiplier applied to the cost-model score of a replica whose location
/// is marked suspect in the catalog (a recent transfer from it was
/// abandoned). The replica stays selectable — it may be the only copy —
/// but healthy candidates outrank it until the mark is cleared. NWS keeps
/// reporting the pre-fault bandwidth while a site is dark (probes through
/// it never complete), so the penalty must be strong enough to demote a
/// top-scoring site below realistic remote candidates.
const SUSPECT_SCORE_FACTOR: f64 = 0.15;

/// How the selection server obtains `BW_P` when scoring candidates.
///
/// The paper's selection service ranks replicas on NWS *forecasts* —
/// smoothed history that reacts to contention only as fast as the probe
/// interval. Under a single client that is exactly Table 1; under many
/// concurrent clients every decision made between two probes is blind to
/// the bandwidth the other in-flight transfers already consumed.
/// [`SelectionMode::ContentionAware`] instead reads the *effective
/// residual* bandwidth of the path at decision time through the engine's
/// phantom-flow probe ([`NetSim::available_bandwidth`]), so a path
/// saturated by other replicas' transfers scores low immediately.
///
/// [`SelectionMode::Static`] is the default: the paper's behaviour, and
/// the mode every Table 1 reproduction pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMode {
    /// NWS sensor forecast when a sensor covers the path (falling back to
    /// the residual probe on unmonitored paths) — the paper's behaviour.
    #[default]
    Static,
    /// Effective residual bandwidth from the max-min solver at decision
    /// time, on every path, monitored or not.
    ContentionAware,
}

impl SelectionMode {
    /// Stable label used in reports and audit records.
    pub fn label(self) -> &'static str {
        match self {
            SelectionMode::Static => "static",
            SelectionMode::ContentionAware => "contention-aware",
        }
    }
}

/// Options controlling how a fetched replica is transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOptions {
    /// Parallel TCP streams (0 = plain stream mode).
    pub parallelism: u32,
    /// Protocol family (the paper's scenario always uses GridFTP; FTP is
    /// here for baselines).
    pub protocol: Protocol,
    /// Data-channel protection level (GridFTP `PROT`).
    pub protection: DataChannelProtection,
}

impl Default for FetchOptions {
    fn default() -> Self {
        FetchOptions {
            parallelism: 0,
            protocol: Protocol::GridFtp,
            protection: DataChannelProtection::Clear,
        }
    }
}

impl FetchOptions {
    /// Sets the stream count.
    pub fn with_parallelism(mut self, parallelism: u32) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the data-channel protection level.
    pub fn with_protection(mut self, protection: DataChannelProtection) -> Self {
        self.protection = protection;
        self
    }
}

/// The result of one end-to-end fetch (the paper's Table 1 row set).
#[derive(Debug, Clone, PartialEq)]
pub struct FetchReport {
    /// The requested logical file.
    pub lfn: LogicalFileName,
    /// The requesting host's name.
    pub client: String,
    /// `true` when the file was already present at the client's site.
    pub local_hit: bool,
    /// All candidates, ranked by descending score.
    pub candidates: Vec<CandidateScore>,
    /// Index into `candidates` of the replica actually used.
    pub chosen: usize,
    /// The executed transfer (synthesised local read for local hits).
    pub transfer: TransferOutcome,
    /// Time spent in catalog and selection-server queries before the
    /// transfer began.
    pub decision_latency: SimDuration,
}

impl FetchReport {
    /// The candidate that was fetched.
    pub fn chosen_candidate(&self) -> &CandidateScore {
        &self.candidates[self.chosen]
    }
}

/// Outcome of one replica's full retry episode (internal to the recovery
/// paths): completed, or abandoned with the work totals preserved so a
/// failover can still account for them.
enum ReplicaEpisode {
    Completed(RecoveredTransfer),
    Abandoned {
        attempts: u32,
        delivered: u64,
        payload_moved: u64,
        backoff_total: SimDuration,
    },
}

struct PendingHost {
    node: NodeId,
    spec: HostSpec,
    cpu: LoadModel,
    io: LoadModel,
}

/// Builder for a [`DataGrid`].
///
/// Construct the topology (hosts with [`GridBuilder::add_host`], switches
/// and routers with [`GridBuilder::add_switch`], cables through
/// [`GridBuilder::topology_mut`]), pick what to monitor, then
/// [`build`](GridBuilder::build).
pub struct GridBuilder {
    topo: Topology,
    seed: u64,
    monitor_interval: SimDuration,
    probe_bytes: u64,
    sensor_noise: f64,
    tcp_window: u64,
    weights: Weights,
    policy: SelectionPolicy,
    costs: ProtocolCosts,
    hosts: Vec<PendingHost>,
    background: Vec<BackgroundProfile>,
    monitored: Vec<(NodeId, NodeId)>,
    catalog_host: Option<String>,
    control_cache_ttl: SimDuration,
    watched_links: Vec<LinkId>,
    recording: bool,
    event_capacity: usize,
    selection_mode: SelectionMode,
    timeline: Option<SimDuration>,
}

impl GridBuilder {
    /// Creates a builder; `seed` drives all randomness in the grid.
    pub fn new(seed: u64) -> Self {
        GridBuilder {
            topo: Topology::new(),
            seed,
            monitor_interval: SimDuration::from_secs(10),
            probe_bytes: 512 * 1024,
            sensor_noise: 0.03,
            tcp_window: 256 * 1024,
            weights: Weights::PAPER_DEFAULT,
            policy: SelectionPolicy::CostModel,
            costs: ProtocolCosts::default(),
            hosts: Vec::new(),
            background: Vec::new(),
            monitored: Vec::new(),
            catalog_host: None,
            control_cache_ttl: SimDuration::from_secs(600),
            watched_links: Vec::new(),
            recording: true,
            event_capacity: Recorder::DEFAULT_EVENT_CAPACITY,
            selection_mode: SelectionMode::default(),
            timeline: None,
        }
    }

    /// Direct access to the topology for wiring links and routers.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Adds a network-only node (switch/router).
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.topo.add_node(name)
    }

    /// Adds a storage/compute host with the given load dynamics; the
    /// topology node carries the host's name.
    pub fn add_host(&mut self, spec: HostSpec, cpu: LoadModel, io: LoadModel) -> NodeId {
        let node = self.topo.add_node(spec.name.clone());
        self.hosts.push(PendingHost {
            node,
            spec,
            cpu,
            io,
        });
        node
    }

    /// Registers a directed path for NWS bandwidth monitoring.
    pub fn monitor_path(&mut self, src: NodeId, dst: NodeId) -> &mut Self {
        self.monitored.push((src, dst));
        self
    }

    /// Monitors every ordered pair of distinct hosts (small grids only:
    /// probes cost bandwidth, as in a real NWS deployment).
    pub fn monitor_all_host_pairs(&mut self) -> &mut Self {
        for i in 0..self.hosts.len() {
            for j in 0..self.hosts.len() {
                if i != j {
                    self.monitored
                        .push((self.hosts[i].node, self.hosts[j].node));
                }
            }
        }
        self
    }

    /// Adds WAN cross traffic.
    pub fn add_background(&mut self, profile: BackgroundProfile) -> &mut Self {
        self.background.push(profile);
        self
    }

    /// Sets the monitoring interval (default 10 s).
    pub fn monitor_interval(&mut self, interval: SimDuration) -> &mut Self {
        self.monitor_interval = interval;
        self
    }

    /// Sets the NWS probe size (default 512 KiB).
    pub fn probe_bytes(&mut self, bytes: u64) -> &mut Self {
        self.probe_bytes = bytes;
        self
    }

    /// Sets the relative sensor measurement noise (default 3 %).
    pub fn sensor_noise(&mut self, sigma: f64) -> &mut Self {
        self.sensor_noise = sigma;
        self
    }

    /// Sets the TCP window ceiling used by transfers and probes.
    pub fn tcp_window(&mut self, bytes: u64) -> &mut Self {
        self.tcp_window = bytes;
        self
    }

    /// Sets the cost-model weights (default: the paper's 0.8/0.1/0.1).
    pub fn weights(&mut self, weights: Weights) -> &mut Self {
        self.weights = weights;
        self
    }

    /// Sets the selection policy (default: the cost model).
    pub fn policy(&mut self, policy: SelectionPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Sets protocol cost constants (GSI, per-byte CPU).
    pub fn protocol_costs(&mut self, costs: ProtocolCosts) -> &mut Self {
        self.costs = costs;
        self
    }

    /// Records utilisation samples for these links on every monitoring
    /// tick (see [`DataGrid::network_trace`]).
    pub fn watch_links<I: IntoIterator<Item = LinkId>>(&mut self, links: I) -> &mut Self {
        self.watched_links.extend(links);
        self
    }

    /// Sets how long an idle authenticated control connection stays cached
    /// (default 600 s; zero disables caching).
    pub fn control_cache_ttl(&mut self, ttl: SimDuration) -> &mut Self {
        self.control_cache_ttl = ttl;
        self
    }

    /// Enables or disables observability recording (events and selection
    /// audit). Recording is on by default; metrics are always collected.
    pub fn recording(&mut self, enabled: bool) -> &mut Self {
        self.recording = enabled;
        self
    }

    /// Capacity of the in-memory event ring buffer (default
    /// [`Recorder::DEFAULT_EVENT_CAPACITY`]). Oldest events are evicted
    /// once it fills; the drop count is tracked.
    pub fn event_capacity(&mut self, capacity: usize) -> &mut Self {
        self.event_capacity = capacity;
        self
    }

    /// Sets how the selection server reads `BW_P`
    /// (default: [`SelectionMode::Static`], the paper's behaviour).
    pub fn selection_mode(&mut self, mode: SelectionMode) -> &mut Self {
        self.selection_mode = mode;
        self
    }

    /// Enables the sim-time health timeline with `window`-wide buckets
    /// (default: off). The grid then folds link utilization, active
    /// flows, decisions, failovers and fetch latencies into fixed windows
    /// — see [`DataGrid::timeline`].
    pub fn timeline_window(&mut self, window: SimDuration) -> &mut Self {
        self.timeline = Some(window);
        self
    }

    /// Places the replica catalog / selection servers on a named host
    /// (default: the first host added).
    pub fn catalog_host(&mut self, name: impl Into<String>) -> &mut Self {
        self.catalog_host = Some(name.into());
        self
    }

    /// Builds the grid.
    ///
    /// # Panics
    ///
    /// Panics if no hosts were added, the catalog host is unknown, or a
    /// monitored path is unroutable.
    pub fn build(self) -> DataGrid {
        assert!(!self.hosts.is_empty(), "a grid needs at least one host");
        let timeline_window = self.timeline;
        let root = SimRng::seed_from_u64(self.seed);
        let mut sim = NetSim::new(self.topo, self.seed);
        for profile in self.background {
            sim.add_background(profile);
        }

        let mut hosts = Vec::new();
        let mut host_nodes = Vec::new();
        let mut host_by_name = HashMap::new();
        let mut host_at_node = HashMap::new();
        let mut mds = MdsDirectory::new();
        for (i, pending) in self.hosts.into_iter().enumerate() {
            let id = HostId(u32::try_from(i).expect("few hosts"));
            let rng = root.fork(&format!("host:{}", pending.spec.name));
            let host = SimHost::new(
                pending.spec,
                pending.cpu,
                pending.io,
                self.monitor_interval,
                rng,
            );
            mds.register(id, &host);
            host_by_name.insert(host.name().to_string(), id);
            host_at_node.insert(pending.node, id);
            host_nodes.push(pending.node);
            hosts.push(host);
        }

        // The paper's BW_P normalises against the grid's *highest
        // theoretical bandwidth*, a grid-wide constant, so fractions are
        // comparable across candidates on different paths.
        let reference = sim
            .topology()
            .max_link_capacity()
            .expect("a grid topology has links");
        let mut nws = NwsRegistry::new();
        for &(src, dst) in &self.monitored {
            let path = sim
                .routing()
                .path(src, dst)
                .unwrap_or_else(|| panic!("monitored path {src} -> {dst} is unroutable"));
            if sim.topology().path_capacity(path).is_none() {
                continue; // node-local path needs no sensor
            }
            let rng = root.fork(&format!("sensor:{}:{}", src.index(), dst.index()));
            nws.install(BandwidthSensor::new(
                src,
                dst,
                reference,
                self.sensor_noise,
                rng,
            ));
        }

        let catalog_node = match &self.catalog_host {
            Some(name) => {
                let id = host_by_name
                    .get(name.as_str())
                    .unwrap_or_else(|| panic!("catalog host {name:?} is not a grid host"));
                host_nodes[id.index()]
            }
            None => host_nodes[0],
        };

        let selector = ReplicaSelector::new(
            self.policy,
            CostModel::new(self.weights),
            root.fork("selector"),
        );

        // First monitoring tick shortly after start-up.
        sim.schedule_timer(SimTime::from_secs_f64(1.0), TOK_MONITOR);

        let mut grid = DataGrid {
            sim,
            hosts,
            host_nodes,
            host_by_name,
            host_at_node,
            mds,
            nws,
            catalog: ReplicaCatalog::new(),
            selector,
            costs: self.costs,
            monitor_interval: self.monitor_interval,
            probe_bytes: self.probe_bytes,
            tcp_window: self.tcp_window,
            catalog_node,
            pending_probes: HashMap::new(),
            next_session_base: SESSION_TOKEN_BASE,
            monitored: self.monitored,
            control_cache_ttl: self.control_cache_ttl,
            control_cache: HashMap::new(),
            trace: NetworkTrace::watching(self.watched_links),
            obs: {
                let mut rec = Recorder::with_capacity(self.event_capacity);
                rec.set_enabled(self.recording);
                rec
            },
            next_span_id: 0,
            pending_lfn: None,
            recovery_rng: root.fork("recovery"),
            selection_mode: self.selection_mode,
            timeline: None,
            timeline_scratch: Vec::new(),
            prof: PhaseProfiler::new(),
            score_scratch: RefCell::new(ScoreScratch::default()),
            selection_epoch: 0,
        };
        if let Some(window) = timeline_window {
            grid.enable_timeline(window);
        }
        grid
    }
}

/// One client's cached candidate ranking, stored structure-of-arrays so
/// repeat decisions reuse the parallel factor/score columns without
/// re-deriving them (the paper's per-decision BW_P/CPU_P/IO_P gathering).
#[derive(Debug, Clone, Default)]
struct ScoreEntry {
    /// Whether the columns below hold a ranking at all.
    valid: bool,
    /// Logical file the ranking answers for.
    lfn: String,
    /// [`DataGrid::selection_epoch`] the ranking was computed under.
    epoch: u64,
    /// [`NetSim::net_version`] at compute time; checked only when
    /// `used_residual` is set.
    net_version: u64,
    /// Whether any candidate's `BW_P` came from a live residual-bandwidth
    /// probe (contention-aware mode, or the sensorless fallback) rather
    /// than purely from sensor/MDS readings. Residual reads go stale the
    /// moment any flow starts, ends or changes cap, so such entries are
    /// additionally keyed on the network version.
    used_residual: bool,
    /// Ranked candidate columns, best first (post [`rank_by_score`]).
    host: Vec<HostId>,
    name: Vec<String>,
    location: Vec<PhysicalFileName>,
    bw: Vec<f64>,
    cpu: Vec<f64>,
    io: Vec<f64>,
    score: Vec<f64>,
    local: Vec<bool>,
}

impl ScoreEntry {
    /// Overwrites the entry with a freshly ranked candidate list.
    fn store(
        &mut self,
        lfn: &str,
        epoch: u64,
        net_version: u64,
        used_residual: bool,
        ranked: &[CandidateScore],
    ) {
        self.valid = true;
        self.lfn.clear();
        self.lfn.push_str(lfn);
        self.epoch = epoch;
        self.net_version = net_version;
        self.used_residual = used_residual;
        self.host.clear();
        self.name.clear();
        self.location.clear();
        self.bw.clear();
        self.cpu.clear();
        self.io.clear();
        self.score.clear();
        self.local.clear();
        for c in ranked {
            self.host.push(c.host);
            self.name.push(c.host_name.clone());
            self.location.push(c.location.clone());
            self.bw.push(c.factors.bandwidth_fraction);
            self.cpu.push(c.factors.cpu_idle);
            self.io.push(c.factors.io_idle);
            self.score.push(c.score);
            self.local.push(c.is_local);
        }
    }

    /// Rebuilds the ranked candidate list from the columns into `out`
    /// (assumed cleared), reusing its capacity.
    fn materialize_into(&self, out: &mut Vec<CandidateScore>) {
        out.reserve(self.host.len());
        for i in 0..self.host.len() {
            out.push(CandidateScore {
                host: self.host[i],
                host_name: self.name[i].clone(),
                location: self.location[i].clone(),
                factors: SystemFactors {
                    bandwidth_fraction: self.bw[i],
                    cpu_idle: self.cpu[i],
                    io_idle: self.io[i],
                },
                score: self.score[i],
                is_local: self.local[i],
            });
        }
    }
}

/// Per-client score cache owned by [`DataGrid`], behind a `RefCell` so the
/// pure query [`DataGrid::score_candidates`] can fill it through `&self`
/// (same pattern as the engine's phantom-probe scratch).
#[derive(Debug, Clone, Default)]
struct ScoreScratch {
    /// One slot per client host, indexed by [`HostId::index`].
    entries: Vec<ScoreEntry>,
    /// Queries answered from a still-valid entry.
    hits: u64,
    /// Queries that had to re-derive factors and re-rank.
    misses: u64,
}

/// The assembled Data Grid: network, hosts, monitoring, catalog and the
/// replica selection service.
///
/// `DataGrid` is `Clone`, which makes counterfactual ("oracle") evaluation
/// possible: clone the grid, force a different replica choice on the clone
/// and compare outcomes under identical randomness.
#[derive(Clone)]
pub struct DataGrid {
    sim: NetSim,
    hosts: Vec<SimHost>,
    host_nodes: Vec<NodeId>,
    host_by_name: HashMap<String, HostId>,
    host_at_node: HashMap<NodeId, HostId>,
    mds: MdsDirectory,
    nws: NwsRegistry,
    catalog: ReplicaCatalog,
    selector: ReplicaSelector,
    costs: ProtocolCosts,
    monitor_interval: SimDuration,
    probe_bytes: u64,
    tcp_window: u64,
    catalog_node: NodeId,
    pending_probes: HashMap<FlowId, (NodeId, NodeId)>,
    next_session_base: u64,
    monitored: Vec<(NodeId, NodeId)>,
    control_cache_ttl: SimDuration,
    /// (control node, server node) -> cache expiry.
    control_cache: HashMap<(NodeId, NodeId), SimTime>,
    trace: NetworkTrace,
    obs: Recorder,
    next_span_id: u64,
    /// Logical file served by the transfer in flight, for span labelling.
    pending_lfn: Option<String>,
    /// Jitter source for retry backoff, forked from the grid seed.
    recovery_rng: SimRng,
    /// How `BW_P` is obtained during candidate scoring.
    selection_mode: SelectionMode,
    /// Sim-time windowed health series, when enabled.
    timeline: Option<TimelineRecorder>,
    /// Reusable buffer for per-link utilization sampling.
    timeline_scratch: Vec<f64>,
    /// Hot-path phase profiler (counts always; wall-clock timings only
    /// under the `prof-timing` feature of `datagrid-obs`).
    pub(crate) prof: PhaseProfiler,
    /// Reusable per-client candidate-ranking cache (see [`ScoreScratch`]).
    score_scratch: RefCell<ScoreScratch>,
    /// Bumped by every state change that can move a score — sensor
    /// records, MDS refreshes, catalog/suspect mutations, fault edges,
    /// policy or mode switches. Entries from older epochs are stale.
    selection_epoch: u64,
}

impl std::fmt::Debug for DataGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataGrid")
            .field("now", &self.sim.now())
            .field("hosts", &self.hosts.len())
            .field("sensors", &self.nws.len())
            .field("files", &self.catalog.file_count())
            .finish_non_exhaustive()
    }
}

impl DataGrid {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The underlying network simulator (read-only).
    pub fn network(&self) -> &NetSim {
        &self.sim
    }

    /// Turns per-solve max-min certification on or off in the underlying
    /// simulator (see [`NetSim::set_validation`] and
    /// `datagrid_simnet::verify`) — the plumbing behind the bench bins'
    /// `--verify` flag.
    pub fn set_network_validation(&mut self, enabled: bool) {
        self.sim.set_validation(enabled);
    }

    /// Arms or disarms same-instant cohort batching in the underlying
    /// simulator (see [`NetSim::set_event_batching`]; default on). The
    /// per-event path exists for differential testing only.
    pub fn set_event_batching(&mut self, enabled: bool) {
        self.sim.set_event_batching(enabled);
    }

    /// Overrides how the underlying simulator scopes rate re-solves
    /// (see [`datagrid_simnet::engine::SolverMode`]; default incremental).
    /// The from-scratch full mode exists as the differential-testing
    /// baseline the fuzz harness pairs against.
    pub fn set_solver_mode(&mut self, mode: datagrid_simnet::engine::SolverMode) {
        self.sim.set_solver_mode(mode);
    }

    /// Invalidates every cached candidate ranking by advancing the
    /// selection epoch. Called whenever monitoring, the catalog, faults or
    /// the selector itself change anything a score is derived from.
    pub(crate) fn invalidate_scores(&mut self) {
        self.selection_epoch += 1;
    }

    /// `(hits, misses)` of the reusable score scratch — how many
    /// [`DataGrid::score_candidates`] queries were answered from cache
    /// versus re-derived.
    pub fn score_scratch_stats(&self) -> (u64, u64) {
        let scratch = self.score_scratch.borrow();
        (scratch.hits, scratch.misses)
    }

    /// Resolves a host name.
    pub fn host_id(&self, name: &str) -> Option<HostId> {
        self.host_by_name.get(name).copied()
    }

    /// The simulated host behind an id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn host(&self, id: HostId) -> &SimHost {
        &self.hosts[id.index()]
    }

    /// The topology node a host sits on.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn node_of(&self, id: HostId) -> NodeId {
        self.host_nodes[id.index()]
    }

    /// All host ids, in creation order.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// The replica catalog.
    pub fn catalog(&self) -> &ReplicaCatalog {
        &self.catalog
    }

    /// Mutable access to the replica catalog.
    pub fn catalog_mut(&mut self) -> &mut ReplicaCatalog {
        self.invalidate_scores();
        &mut self.catalog
    }

    /// The MDS information directory.
    pub fn mds(&self) -> &MdsDirectory {
        &self.mds
    }

    /// The NWS sensor registry.
    pub fn nws(&self) -> &NwsRegistry {
        &self.nws
    }

    /// Utilisation traces of the links registered with
    /// [`GridBuilder::watch_links`], sampled on every monitoring tick.
    pub fn network_trace(&self) -> &NetworkTrace {
        &self.trace
    }

    /// The replica selection server.
    pub fn selector_mut(&mut self) -> &mut ReplicaSelector {
        self.invalidate_scores();
        &mut self.selector
    }

    /// How the selection server currently reads `BW_P`.
    pub fn selection_mode(&self) -> SelectionMode {
        self.selection_mode
    }

    /// Switches how the selection server reads `BW_P`. Takes effect on
    /// the next scoring query; past audit records are untouched.
    pub fn set_selection_mode(&mut self, mode: SelectionMode) {
        self.selection_mode = mode;
        self.invalidate_scores();
    }

    /// Compacts the network engine's reusable scratch buffers back to the
    /// current flow population — see [`NetSim::shrink_scratch`]. Intended
    /// between workload sweeps, once a burst of concurrent transfers has
    /// drained.
    pub fn shrink_network_scratch(&mut self) {
        self.sim.shrink_scratch();
    }

    /// The observability recorder: structured event history, metrics
    /// registry and the replica-selection audit log.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable recorder access — toggle recording, attach measured
    /// counterfactual times to audit entries, or clear history.
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// The replica-selection decision audit log (one entry per
    /// [`DataGrid::fetch_with`] / [`DataGrid::fetch_from`] call while
    /// recording is enabled).
    pub fn audit(&self) -> &SelectionAuditLog {
        self.obs.audit()
    }

    /// The sim-time health timeline, when enabled (via
    /// [`GridBuilder::timeline_window`] or [`DataGrid::enable_timeline`]).
    pub fn timeline(&self) -> Option<&TimelineRecorder> {
        self.timeline.as_ref()
    }

    /// Mutable timeline access — e.g. to fold extra per-run markers in.
    pub fn timeline_mut(&mut self) -> Option<&mut TimelineRecorder> {
        self.timeline.as_mut()
    }

    /// Starts (or restarts) the health timeline with `window`-wide
    /// buckets. Link labels come from the topology; the solver-counter
    /// baseline is rebased to now, so a timeline attached after a warm-up
    /// phase attributes only subsequent work.
    pub fn enable_timeline(&mut self, window: SimDuration) {
        let topo = self.sim.topology();
        let links = (0..topo.link_count())
            .map(|i| {
                let (a, b) = topo.link_endpoints(LinkId::from_index(i));
                format!("{}->{}", topo.node_name(a), topo.node_name(b))
            })
            .collect();
        let mut tl = TimelineRecorder::new(window, links);
        let s = self.sim.stats();
        tl.rebase_engine_totals(s.incremental_solves + s.full_solves, s.solver_flows_touched);
        self.timeline = Some(tl);
    }

    /// The hot-path phase profiler. Counts (calls, items) are always
    /// collected and deterministic; wall-clock timings appear only when
    /// `datagrid-obs` is built with its `prof-timing` feature.
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.prof
    }

    /// Folds the network's instantaneous state — per-link utilization,
    /// active flows, solver-work deltas — into the health timeline.
    /// No-op when the timeline is disabled.
    fn sample_timeline(&mut self) {
        let Some(tl) = self.timeline.as_mut() else {
            return;
        };
        let now = self.sim.now();
        let mut utils = std::mem::take(&mut self.timeline_scratch);
        self.sim.link_utilizations_into(&mut utils);
        tl.sample_network(now, &utils, self.sim.active_flow_count());
        self.timeline_scratch = utils;
        let s = self.sim.stats();
        tl.record_engine_totals(
            now,
            s.incremental_solves + s.full_solves,
            s.solver_flows_touched,
        );
    }

    /// A point-in-time metrics snapshot: everything in the live registry
    /// plus the counters maintained outside it by the network engine
    /// (`simnet.*`) and the replica catalog (`catalog.*`).
    ///
    /// Render with [`MetricsRegistry::render_text`] or
    /// [`MetricsRegistry::render_json`]; both are deterministic, so two
    /// identically seeded runs export byte-identical snapshots.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut m = self.obs.metrics_snapshot();
        let s = self.sim.stats();
        m.set_counter("simnet.events_processed", s.events_processed);
        m.set_counter("simnet.timers_fired", s.timers_fired);
        m.set_counter("simnet.flows_started", s.flows_started);
        m.set_counter("simnet.flows_completed", s.flows_completed);
        m.set_counter(
            "simnet.background_flows_started",
            s.background_flows_started,
        );
        m.set_counter("simnet.bytes_completed", s.bytes_completed);
        m.set_counter("simnet.fault_transitions", s.fault_transitions);
        m.set_counter("simnet.flows_dropped", s.flows_dropped);
        m.set_counter("simnet.incremental_solves", s.incremental_solves);
        m.set_counter("simnet.full_solves", s.full_solves);
        m.set_counter("simnet.solver_flows_touched", s.solver_flows_touched);
        m.set_counter("simnet.auto_shrinks", s.auto_shrinks);
        m.set_counter("simnet.event_cohorts", s.event_cohorts);
        m.set_counter("simnet.batched_solves", s.batched_solves);
        m.set_counter("simnet.solves_avoided", s.solves_avoided);
        m.set_counter("simnet.transitions_certified", s.transitions_certified);
        m.set_counter(
            "simnet.transition_flows_checked",
            s.transition_flows_checked,
        );
        let (hits, misses) = self.score_scratch_stats();
        m.set_counter("selection.scratch_hits", hits);
        m.set_counter("selection.scratch_misses", misses);
        let c = self.catalog.stats();
        m.set_counter("catalog.lookups", c.lookups());
        m.set_counter("catalog.hits", c.hits());
        m.set_counter("catalog.misses", c.misses());
        m.set_counter("catalog.lists", c.lists());
        m.set_counter("catalog.mutations", c.mutations());
        m
    }

    /// Data discovery, the opening step of the paper's Fig. 1 scenario:
    /// the application "specifies the characteristics of the desired data"
    /// and the catalog returns matching logical file names.
    pub fn discover(&self, query: &[(&str, &str)]) -> Vec<LogicalFileName> {
        self.catalog
            .find_by_attributes(query)
            .into_iter()
            .map(|e| e.name().clone())
            .collect()
    }

    /// Registers a logical file and drops one replica on `host` (the data
    /// is assumed to already exist there — use
    /// [`DataGrid::replicate`] to create copies by moving bytes).
    ///
    /// # Errors
    ///
    /// [`GridError::UnknownHost`] or catalog errors.
    pub fn place_replica(&mut self, lfn: &str, host: &str) -> Result<PhysicalFileName, GridError> {
        let name = LogicalFileName::new(lfn)?;
        if !self.host_by_name.contains_key(host) {
            return Err(GridError::UnknownHost {
                name: host.to_string(),
            });
        }
        let pfn = PhysicalFileName::new(host, format!("/storage/{lfn}"))?;
        self.catalog.add_replica(&name, pfn.clone())?;
        self.invalidate_scores();
        Ok(pfn)
    }

    /// Installs a deterministic fault schedule on the underlying network.
    /// Fault transitions are recorded as `fault.*` events and metrics as
    /// the grid advances through them.
    ///
    /// # Panics
    ///
    /// Panics if the plan references unknown links or nodes, or schedules
    /// a fault before the current simulated time.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.obs
            .metrics_mut()
            .add("fault.scheduled", plan.len() as u64);
        self.sim.install_fault_plan(plan);
    }

    /// Advances simulated time to `until`, running monitoring on the way.
    pub fn advance_to(&mut self, until: SimTime) {
        if until <= self.sim.now() {
            return;
        }
        self.sim.schedule_timer(until, TOK_SENTINEL);
        loop {
            let ev = self
                .sim
                .next_event()
                .expect("sentinel timer keeps the queue non-empty");
            if matches!(ev.kind, EventKind::TimerFired(TOK_SENTINEL)) {
                break;
            }
            self.handle_internal(&ev);
        }
    }

    /// Advances simulated time by `duration` (e.g. to warm up sensors
    /// before an experiment).
    pub fn warm_up(&mut self, duration: SimDuration) {
        self.advance_to(self.sim.now() + duration);
    }

    /// The TCP parameters a connection between two nodes experiences
    /// (window ceiling from configuration, loss from the path).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are unroutable.
    pub fn tcp_for(&self, src: NodeId, dst: NodeId) -> TcpParams {
        let path = self
            .sim
            .routing()
            .path(src, dst)
            .unwrap_or_else(|| panic!("no route {src} -> {dst}"));
        let loss = self.sim.topology().path_loss(path);
        TcpParams {
            max_window: self.tcp_window,
            loss_rate: loss,
            ..TcpParams::default()
        }
    }

    /// A transfer endpoint snapshot of a host's current resources.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn endpoint_for(&self, id: HostId) -> TransferEndpoint {
        let host = &self.hosts[id.index()];
        TransferEndpoint::new(
            self.host_nodes[id.index()],
            host.available_disk_read(),
            host.available_disk_write(),
            host.cpu_headroom(),
            host.spec().compute_index(),
        )
    }

    /// Runs a transfer between two grid hosts while monitoring continues.
    /// This is the measurement primitive behind the paper's Fig. 3 and
    /// Fig. 4 experiments.
    ///
    /// # Errors
    ///
    /// [`GridError::Transfer`] for invalid requests.
    pub fn transfer_between(
        &mut self,
        src: HostId,
        dst: HostId,
        req: TransferRequest,
    ) -> Result<TransferOutcome, GridError> {
        self.striped_transfer_between(&[src], dst, req)
    }

    /// Runs a transfer between two grid hosts with stall detection,
    /// seeded exponential-backoff retries and MODE E restart-marker
    /// resume, while monitoring continues. Each retry of a MODE E
    /// transfer picks up from the last committed byte; stream-mode
    /// retries restart from zero. Every stall, backoff pause and resume
    /// is recorded as `transfer.*` events and metrics.
    ///
    /// # Errors
    ///
    /// [`GridError::Transfer`] for invalid requests, or wrapping
    /// [`TransferError::RetriesExhausted`] when every permitted attempt
    /// stalled.
    pub fn transfer_between_with_recovery(
        &mut self,
        src: HostId,
        dst: HostId,
        req: TransferRequest,
        recovery: &RecoveryOptions,
    ) -> Result<RecoveredTransfer, GridError> {
        match self.run_recovery_transfer(src, dst, req, recovery)? {
            ReplicaEpisode::Completed(rec) => Ok(rec),
            ReplicaEpisode::Abandoned {
                attempts,
                delivered,
                ..
            } => Err(GridError::Transfer(TransferError::RetriesExhausted {
                attempts,
                delivered,
            })),
        }
    }

    /// One replica's full retry episode: attempts until completion or
    /// exhaustion, with the per-episode totals kept either way so callers
    /// (failover) can account for abandoned work.
    fn run_recovery_transfer(
        &mut self,
        src: HostId,
        dst: HostId,
        req: TransferRequest,
        recovery: &RecoveryOptions,
    ) -> Result<ReplicaEpisode, GridError> {
        req.validate().map_err(GridError::Transfer)?;
        let base_offset = req.range.map_or(0, |r| r.offset);
        let total = req.payload_bytes();
        let protocol = protocol_label(req.protocol);
        let src_name = self.hosts[src.index()].name().to_string();
        let dst_name = self.hosts[dst.index()].name().to_string();
        let cache_key = (self.node_of(dst), self.node_of(src));
        let tcp = self.tcp_for(self.node_of(src), self.node_of(dst));
        let mut committed = 0u64;
        let mut attempts = 0u32;
        let mut resumed_from = Vec::new();
        let mut payload_moved = 0u64;
        let mut backoff_total = SimDuration::ZERO;
        loop {
            let attempt_req = if committed == 0 {
                req
            } else {
                req.with_range(base_offset + committed, total - committed)
            };
            let base = self.alloc_session_tokens();
            let cached = self.control_cached(cache_key);
            let mut session = TransferSession::new(
                attempt_req,
                self.endpoint_for(src),
                self.endpoint_for(dst),
                tcp,
                base,
            )?
            .with_costs(self.costs)
            .with_cached_control(cached)
            .with_stall_timeout(recovery.stall_timeout);
            attempts += 1;
            session.start(&mut self.sim);
            let failure = loop {
                let ev = self
                    .sim
                    .next_event()
                    .expect("an active session keeps the queue non-empty");
                if session.owns(&ev) {
                    match session.handle(&mut self.sim, &ev) {
                        SessionStatus::Complete(outcome) => {
                            self.remember_control(cache_key);
                            payload_moved += outcome.payload_bytes;
                            self.record_transfer(&src_name, &dst_name, protocol, &outcome);
                            return Ok(ReplicaEpisode::Completed(RecoveredTransfer {
                                outcome,
                                attempts,
                                resumed_from,
                                payload_moved,
                                backoff_total,
                            }));
                        }
                        SessionStatus::Failed(failure) => break failure,
                        SessionStatus::InProgress => {}
                    }
                } else {
                    let monitor_tick = matches!(ev.kind, EventKind::TimerFired(TOK_MONITOR));
                    self.handle_internal(&ev);
                    if monitor_tick {
                        let fresh = [self.endpoint_for(src)];
                        let dst_fresh = self.endpoint_for(dst);
                        session.refresh_endpoints(&mut self.sim, &fresh, dst_fresh);
                    }
                }
            };
            committed += failure.restart_offset();
            payload_moved += failure.delivered_payload;
            self.obs.metrics_mut().inc("transfer.stalls");
            self.obs.emit(
                Event::new(failure.at, "gridftp", "transfer.stall")
                    .with("src", src_name.as_str())
                    .with("dst", dst_name.as_str())
                    .with("attempt", attempts)
                    .with("delivered", failure.delivered_payload)
                    .with("committed", committed)
                    .with("resumable", failure.resumable),
            );
            if recovery.retry.exhausted(attempts) {
                self.obs.metrics_mut().inc("transfer.abandoned");
                self.obs.emit(
                    Event::new(self.sim.now(), "gridftp", "transfer.abandoned")
                        .with("src", src_name.as_str())
                        .with("dst", dst_name.as_str())
                        .with("attempts", attempts)
                        .with("delivered", committed),
                );
                return Ok(ReplicaEpisode::Abandoned {
                    attempts,
                    delivered: committed,
                    payload_moved,
                    backoff_total,
                });
            }
            let pause = recovery.retry.backoff(attempts - 1, &mut self.recovery_rng);
            backoff_total += pause;
            // The wait token sits in the session range, so a stale firing
            // after this loop exits is ignored by `handle_internal`.
            let wait_token = self.alloc_session_tokens();
            self.sim.schedule_timer_after(pause, wait_token);
            loop {
                let ev = self
                    .sim
                    .next_event()
                    .expect("backoff timer keeps the queue non-empty");
                if ev.kind == EventKind::TimerFired(wait_token) {
                    break;
                }
                self.handle_internal(&ev);
            }
            resumed_from.push(committed);
            self.obs.metrics_mut().inc("transfer.retries");
            self.obs.emit(
                Event::new(self.sim.now(), "gridftp", "transfer.retry")
                    .with("src", src_name.as_str())
                    .with("dst", dst_name.as_str())
                    .with("attempt", attempts + 1)
                    .with("backoff_secs", pause.as_secs_f64())
                    .with("resume_offset", committed),
            );
        }
    }

    /// Runs a striped transfer from several stripe servers to one
    /// destination host while monitoring continues (GridFTP's striped
    /// transfer feature — the paper's future work item 1).
    ///
    /// # Errors
    ///
    /// [`GridError::Transfer`] for invalid requests or an empty source
    /// list.
    pub fn striped_transfer_between(
        &mut self,
        sources: &[HostId],
        dst: HostId,
        req: TransferRequest,
    ) -> Result<TransferOutcome, GridError> {
        let endpoints: Vec<TransferEndpoint> =
            sources.iter().map(|&s| self.endpoint_for(s)).collect();
        let first = sources.first().ok_or_else(|| {
            GridError::Transfer(datagrid_gridftp::TransferError::InvalidRequest {
                reason: "a transfer needs at least one source".into(),
            })
        })?;
        let tcp = self.tcp_for(self.node_of(*first), self.node_of(dst));
        let base = self.alloc_session_tokens();
        let cache_key = (self.node_of(dst), self.node_of(*first));
        let cached = sources.len() == 1 && self.control_cached(cache_key);
        let protocol = protocol_label(req.protocol);
        let src_name = self.hosts[first.index()].name().to_string();
        let dst_name = self.hosts[dst.index()].name().to_string();
        let mut session =
            TransferSession::striped(req, endpoints, self.endpoint_for(dst), tcp, base)?
                .with_costs(self.costs)
                .with_cached_control(cached);
        session.start(&mut self.sim);
        loop {
            let ev = self
                .sim
                .next_event()
                .expect("an active session keeps the queue non-empty");
            if session.owns(&ev) {
                if let SessionStatus::Complete(outcome) = session.handle(&mut self.sim, &ev) {
                    self.remember_control(cache_key);
                    self.record_transfer(&src_name, &dst_name, protocol, &outcome);
                    return Ok(outcome);
                }
            } else {
                let monitor_tick = matches!(ev.kind, EventKind::TimerFired(TOK_MONITOR));
                self.handle_internal(&ev);
                if monitor_tick {
                    // Host loads just advanced: propagate the fresh disk and
                    // CPU limits into the running transfer, so a transfer
                    // started against a momentarily saturated host recovers
                    // as the load subsides (and vice versa).
                    let fresh: Vec<TransferEndpoint> =
                        sources.iter().map(|&s| self.endpoint_for(s)).collect();
                    let dst_fresh = self.endpoint_for(dst);
                    session.refresh_endpoints(&mut self.sim, &fresh, dst_fresh);
                }
            }
        }
    }

    /// `true` if an authenticated control connection for `key` is cached
    /// and fresh.
    fn control_cached(&self, key: (NodeId, NodeId)) -> bool {
        self.control_cache
            .get(&key)
            .is_some_and(|&expiry| self.sim.now() <= expiry)
    }

    /// Records that a control connection for `key` is open, resetting its
    /// idle expiry.
    fn remember_control(&mut self, key: (NodeId, NodeId)) {
        if self.control_cache_ttl.is_zero() {
            return;
        }
        if let Some(expiry) = self.sim.now().checked_add(self.control_cache_ttl) {
            self.control_cache.insert(key, expiry);
        }
    }

    /// A third-party transfer: `client` orchestrates a copy from
    /// `src_host` to `dst_host` over its control channels while the data
    /// flows directly between the two servers — the GridFTP feature that
    /// lets the replica manager move data without routing bytes through
    /// itself. Monitoring continues throughout.
    ///
    /// # Errors
    ///
    /// [`GridError::Transfer`] for invalid requests.
    pub fn third_party_transfer(
        &mut self,
        client: HostId,
        src: HostId,
        dst: HostId,
        req: TransferRequest,
    ) -> Result<TransferOutcome, GridError> {
        let tcp = self.tcp_for(self.node_of(src), self.node_of(dst));
        let base = self.alloc_session_tokens();
        let protocol = protocol_label(req.protocol);
        let src_name = self.hosts[src.index()].name().to_string();
        let dst_name = self.hosts[dst.index()].name().to_string();
        let mut session = TransferSession::new(
            req,
            self.endpoint_for(src),
            self.endpoint_for(dst),
            tcp,
            base,
        )?
        .with_costs(self.costs)
        .with_control_from(self.node_of(client));
        session.start(&mut self.sim);
        let sources = [src];
        loop {
            let ev = self
                .sim
                .next_event()
                .expect("an active session keeps the queue non-empty");
            if session.owns(&ev) {
                if let SessionStatus::Complete(outcome) = session.handle(&mut self.sim, &ev) {
                    self.record_transfer(&src_name, &dst_name, protocol, &outcome);
                    return Ok(outcome);
                }
            } else {
                let monitor_tick = matches!(ev.kind, EventKind::TimerFired(TOK_MONITOR));
                self.handle_internal(&ev);
                if monitor_tick {
                    let fresh: Vec<TransferEndpoint> =
                        sources.iter().map(|&s| self.endpoint_for(s)).collect();
                    let dst_fresh = self.endpoint_for(dst);
                    session.refresh_endpoints(&mut self.sim, &fresh, dst_fresh);
                }
            }
        }
    }

    /// Creates a new physical replica of `lfn` on `dst_host` by copying
    /// from the first registered location over GridFTP, then registers it
    /// — the replica management service's *create* operation.
    ///
    /// # Errors
    ///
    /// Catalog errors, [`GridError::UnknownHost`], or transfer errors.
    pub fn replicate(
        &mut self,
        lfn: &str,
        dst_host: &str,
        parallelism: u32,
    ) -> Result<TransferOutcome, GridError> {
        let name = LogicalFileName::new(lfn)?;
        let record = self.catalog.lookup(&name).ok_or_else(|| {
            GridError::Catalog(datagrid_catalog::CatalogError::UnknownFile {
                name: lfn.to_string(),
            })
        })?;
        let src_pfn = record
            .locations()
            .first()
            .ok_or_else(|| GridError::NoReplicas {
                lfn: lfn.to_string(),
            })?
            .clone();
        let bytes = record.entry().size_bytes();
        let src_host = self.host_of_pfn(&src_pfn)?;
        let dst = self
            .host_id(dst_host)
            .ok_or_else(|| GridError::UnknownHost {
                name: dst_host.to_string(),
            })?;
        let req = TransferRequest::new(bytes).with_parallelism(parallelism);
        let outcome = self.transfer_between(src_host, dst, req)?;
        let pfn = PhysicalFileName::new(dst_host, format!("/storage/{lfn}"))?;
        self.catalog.add_replica(&name, pfn)?;
        self.invalidate_scores();
        Ok(outcome)
    }

    /// The selection server's core query: scores every registered replica
    /// of `lfn` for a fetch by `client`, ranked best first. Pure query —
    /// does not advance time or transfer anything.
    ///
    /// # Errors
    ///
    /// Catalog errors, [`GridError::NoReplicas`] or
    /// [`GridError::ReplicaOffGrid`].
    pub fn score_candidates(
        &self,
        client: HostId,
        lfn: &str,
    ) -> Result<Vec<CandidateScore>, GridError> {
        let mut out = Vec::new();
        self.score_candidates_into(client, lfn, &mut out)?;
        Ok(out)
    }

    /// [`DataGrid::score_candidates`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so a replay loop can reuse one allocation
    /// across every decision it makes.
    ///
    /// # Errors
    ///
    /// As [`DataGrid::score_candidates`]; on error `out` is left cleared.
    // lint: hot-path
    pub fn score_candidates_into(
        &self,
        client: HostId,
        lfn: &str,
        out: &mut Vec<CandidateScore>,
    ) -> Result<(), GridError> {
        out.clear();
        let net_now = self.sim.net_version();
        {
            let mut scratch = self.score_scratch.borrow_mut();
            if scratch.entries.len() < self.hosts.len() {
                scratch
                    .entries
                    .resize_with(self.hosts.len(), ScoreEntry::default);
            }
            let entry = &scratch.entries[client.index()];
            if entry.valid
                && entry.epoch == self.selection_epoch
                && entry.lfn == lfn
                && (!entry.used_residual || entry.net_version == net_now)
            {
                entry.materialize_into(out);
                scratch.hits += 1;
                return Ok(());
            }
        }
        // Borrow released: the fresh path probes the network through
        // `&self` and must be free to take its own shared borrows.
        let used_residual = match self.compute_scores(client, lfn, out) {
            Ok(flag) => flag,
            Err(e) => {
                out.clear();
                return Err(e);
            }
        };
        let mut scratch = self.score_scratch.borrow_mut();
        scratch.misses += 1;
        scratch.entries[client.index()].store(
            lfn,
            self.selection_epoch,
            net_now,
            used_residual,
            out,
        );
        Ok(())
    }

    /// The uncached scoring path behind [`DataGrid::score_candidates`]:
    /// catalog query, factor gathering, policy scoring, ranking. Also
    /// reports whether any candidate's `BW_P` came from a residual-
    /// bandwidth probe (which keys the cache on the network version).
    fn compute_scores(
        &self,
        client: HostId,
        lfn: &str,
        out: &mut Vec<CandidateScore>,
    ) -> Result<bool, GridError> {
        let name = LogicalFileName::new(lfn)?;
        let locations = self.catalog.replicas(&name)?;
        if locations.is_empty() {
            return Err(GridError::NoReplicas {
                lfn: lfn.to_string(),
            });
        }
        let client_node = self.node_of(client);
        out.reserve(locations.len());
        let mut used_residual = false;
        for pfn in locations.iter().cloned() {
            let host_id = self.host_of_pfn(&pfn)?;
            let node = self.node_of(host_id);
            let is_local = host_id == client;
            let (factors, residual) = self.gather_factors(node, client_node, &pfn, is_local);
            used_residual |= residual;
            let mut score = self.selector.score(&factors);
            if self.catalog.is_suspect(&pfn) {
                score *= SUSPECT_SCORE_FACTOR;
            }
            out.push(CandidateScore {
                host: host_id,
                host_name: pfn.host().to_string(),
                location: pfn,
                factors,
                score,
                is_local,
            });
        }
        rank_by_score(out);
        Ok(used_residual)
    }

    /// The paper's full Fig. 1 scenario with default transfer options.
    ///
    /// # Errors
    ///
    /// See [`DataGrid::fetch_with`].
    pub fn fetch(&mut self, client: HostId, lfn: &str) -> Result<FetchReport, GridError> {
        self.fetch_with(client, lfn, FetchOptions::default())
    }

    /// The paper's full Fig. 1 scenario: catalog query, factor gathering,
    /// policy choice, GridFTP transfer. Time advances through every step;
    /// monitoring keeps running.
    ///
    /// # Errors
    ///
    /// Catalog errors, [`GridError::NoReplicas`],
    /// [`GridError::ReplicaOffGrid`] or transfer errors.
    pub fn fetch_with(
        &mut self,
        client: HostId,
        lfn: &str,
        options: FetchOptions,
    ) -> Result<FetchReport, GridError> {
        let started = self.sim.now();
        // Catalog + selection server round trips.
        let latency = self.service_latency(client);
        self.advance_to(started + latency);
        let candidates = self.score_candidates(client, lfn)?;
        let chosen = self.selector.choose(&candidates);
        let decision_latency = self.sim.now() - started;
        self.record_selection(lfn, client, &candidates, chosen, decision_latency, None);
        let transfer = self.execute_choice(client, lfn, &candidates[chosen], options)?;
        self.attach_measured(&candidates[chosen].host_name, &transfer);
        Ok(FetchReport {
            lfn: LogicalFileName::new(lfn)?,
            client: self.hosts[client.index()].name().to_string(),
            local_hit: candidates[chosen].is_local,
            candidates: candidates.clone(),
            chosen,
            transfer,
            decision_latency,
        })
    }

    /// Like [`DataGrid::fetch_with`] but forcing the replica on
    /// `from_host` — the counterfactual probe used for oracle evaluation
    /// and for regenerating the paper's Table 1 (which measures the
    /// transfer time of *every* candidate).
    ///
    /// # Errors
    ///
    /// As [`DataGrid::fetch_with`], plus [`GridError::UnknownHost`] if the
    /// forced host holds no replica.
    pub fn fetch_from(
        &mut self,
        client: HostId,
        lfn: &str,
        from_host: &str,
        options: FetchOptions,
    ) -> Result<FetchReport, GridError> {
        let started = self.sim.now();
        let latency = self.service_latency(client);
        self.advance_to(started + latency);
        let candidates = self.score_candidates(client, lfn)?;
        let chosen = candidates
            .iter()
            .position(|c| c.host_name == from_host)
            .ok_or_else(|| GridError::UnknownHost {
                name: from_host.to_string(),
            })?;
        let decision_latency = self.sim.now() - started;
        self.record_selection(
            lfn,
            client,
            &candidates,
            chosen,
            decision_latency,
            Some("forced"),
        );
        let transfer = self.execute_choice(client, lfn, &candidates[chosen], options)?;
        self.attach_measured(&candidates[chosen].host_name, &transfer);
        Ok(FetchReport {
            lfn: LogicalFileName::new(lfn)?,
            client: self.hosts[client.index()].name().to_string(),
            local_hit: candidates[chosen].is_local,
            candidates: candidates.clone(),
            chosen,
            transfer,
            decision_latency,
        })
    }

    /// The paper's Fig. 1 scenario hardened for faulty grids: catalog
    /// query, factor gathering, policy choice, then a GridFTP transfer
    /// with stall detection and retries — and when the chosen replica's
    /// retries are exhausted, the site is marked suspect in the catalog,
    /// candidates are re-ranked (suspects are penalised) and the fetch
    /// fails over to the next-best replica. The whole episode — faults,
    /// stalls, backoff pauses, failovers and the final winner — is
    /// recorded through the observability layer.
    ///
    /// # Errors
    ///
    /// Catalog errors, [`GridError::NoReplicas`],
    /// [`GridError::ReplicaOffGrid`], transfer errors, or
    /// [`GridError::AllReplicasFailed`] when every candidate was tried
    /// and abandoned.
    pub fn fetch_with_recovery(
        &mut self,
        client: HostId,
        lfn: &str,
        options: FetchOptions,
        recovery: &RecoveryOptions,
    ) -> Result<RecoveredFetch, GridError> {
        let started = self.sim.now();
        let latency = self.service_latency(client);
        self.advance_to(started + latency);
        let mut candidates = self.score_candidates(client, lfn)?;
        let mut chosen = self.selector.choose(&candidates);
        let mut decision_latency = self.sim.now() - started;
        self.record_selection(lfn, client, &candidates, chosen, decision_latency, None);
        let mut failed_over: Vec<String> = Vec::new();
        let mut attempts = 0u32;
        let mut payload_moved = 0u64;
        let mut backoff_total = SimDuration::ZERO;
        loop {
            let choice = candidates[chosen].clone();
            match self.execute_choice_with_recovery(client, lfn, &choice, options, recovery)? {
                ReplicaEpisode::Completed(rec) => {
                    attempts += rec.attempts;
                    payload_moved += rec.payload_moved;
                    backoff_total += rec.backoff_total;
                    self.attach_measured(&choice.host_name, &rec.outcome);
                    return Ok(RecoveredFetch {
                        report: FetchReport {
                            lfn: LogicalFileName::new(lfn)?,
                            client: self.hosts[client.index()].name().to_string(),
                            local_hit: choice.is_local,
                            candidates,
                            chosen,
                            transfer: rec.outcome,
                            decision_latency,
                        },
                        failed_over,
                        attempts,
                        payload_moved,
                        backoff_total,
                    });
                }
                ReplicaEpisode::Abandoned {
                    attempts: used,
                    delivered,
                    payload_moved: moved,
                    backoff_total: waited,
                } => {
                    attempts += used;
                    payload_moved += moved;
                    backoff_total += waited;
                    self.catalog.mark_suspect(&choice.location);
                    self.invalidate_scores();
                    self.obs.metrics_mut().inc("selection.failovers");
                    self.obs.emit(
                        Event::new(self.sim.now(), "select", "selection.failover")
                            .with("lfn", lfn)
                            .with("abandoned", choice.host_name.as_str())
                            .with("attempts", used)
                            .with("delivered", delivered),
                    );
                    failed_over.push(choice.host_name.clone());
                    if failed_over.len() as u64 > u64::from(recovery.max_failovers) {
                        return Err(GridError::AllReplicasFailed {
                            lfn: lfn.to_string(),
                            failed: failed_over,
                        });
                    }
                    // Re-rank: the suspect mark pushes the failed site down,
                    // and fresh monitoring data may have reshuffled the rest.
                    let t0 = self.sim.now();
                    let latency = self.service_latency(client);
                    self.advance_to(t0 + latency);
                    candidates = self.score_candidates(client, lfn)?;
                    decision_latency += self.sim.now() - t0;
                    let Some(next) = candidates
                        .iter()
                        .position(|c| !failed_over.contains(&c.host_name))
                    else {
                        return Err(GridError::AllReplicasFailed {
                            lfn: lfn.to_string(),
                            failed: failed_over,
                        });
                    };
                    chosen = next;
                    self.record_selection(
                        lfn,
                        client,
                        &candidates,
                        chosen,
                        self.sim.now() - t0,
                        Some("failover"),
                    );
                }
            }
        }
    }

    /// Suggests a parallel stream count for transfers from `src` to `dst`:
    /// enough streams for their aggregate TCP ceiling (window/loss bound)
    /// to cover the path's bottleneck capacity, clamped to `[1, 16]` (the
    /// range the paper sweeps in Fig. 4). Clean short paths get 1; the
    /// lossy Li-Zen path lands near the Fig. 4 sweet spot automatically.
    ///
    /// # Panics
    ///
    /// Panics if the hosts are unroutable.
    pub fn suggested_parallelism(&self, src: HostId, dst: HostId) -> u32 {
        let s = self.node_of(src);
        let d = self.node_of(dst);
        let path = self
            .sim
            .routing()
            .path(s, d)
            .unwrap_or_else(|| panic!("no route {s} -> {d}"));
        let Some(capacity) = self.sim.topology().path_capacity(path) else {
            return 1; // node-local
        };
        let per_stream = self.tcp_for(s, d).steady_rate(self.sim.rtt(s, d)).as_bps();
        if per_stream <= 0.0 {
            return 16;
        }
        ((capacity.as_bps() / per_stream).ceil() as u32).clamp(1, 16)
    }

    /// The current `BW_P` estimate from `src` to `dst` host, if a sensor
    /// is installed and warmed up.
    pub fn bandwidth_fraction(&self, src: HostId, dst: HostId) -> Option<f64> {
        self.nws
            .sensor(self.node_of(src), self.node_of(dst))
            .and_then(BandwidthSensor::bandwidth_fraction)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn execute_choice(
        &mut self,
        client: HostId,
        lfn: &str,
        choice: &CandidateScore,
        options: FetchOptions,
    ) -> Result<TransferOutcome, GridError> {
        let name = LogicalFileName::new(lfn)?;
        let bytes = self
            .catalog
            .lookup(&name)
            .expect("scored candidates imply a registered file")
            .entry()
            .size_bytes();
        self.pending_lfn = Some(lfn.to_string());
        if choice.is_local {
            return Ok(self.local_read(client, bytes));
        }
        let req = TransferRequest::new(bytes)
            .with_protocol(options.protocol)
            .with_parallelism(options.parallelism)
            .with_protection(options.protection);
        self.transfer_between(choice.host, client, req)
    }

    fn execute_choice_with_recovery(
        &mut self,
        client: HostId,
        lfn: &str,
        choice: &CandidateScore,
        options: FetchOptions,
        recovery: &RecoveryOptions,
    ) -> Result<ReplicaEpisode, GridError> {
        let name = LogicalFileName::new(lfn)?;
        let bytes = self
            .catalog
            .lookup(&name)
            .expect("scored candidates imply a registered file")
            .entry()
            .size_bytes();
        self.pending_lfn = Some(lfn.to_string());
        if choice.is_local {
            let outcome = self.local_read(client, bytes);
            let payload_moved = outcome.payload_bytes;
            return Ok(ReplicaEpisode::Completed(RecoveredTransfer {
                outcome,
                attempts: 1,
                resumed_from: Vec::new(),
                payload_moved,
                backoff_total: SimDuration::ZERO,
            }));
        }
        let req = TransferRequest::new(bytes)
            .with_protocol(options.protocol)
            .with_parallelism(options.parallelism)
            .with_protection(options.protection);
        self.run_recovery_transfer(choice.host, client, req, recovery)
    }

    /// A local disk read, synthesised as a one-phase outcome.
    fn local_read(&mut self, client: HostId, bytes: u64) -> TransferOutcome {
        let start = self.sim.now();
        let rate = self.hosts[client.index()].available_disk_read();
        let duration = rate.time_for_bytes(bytes);
        self.advance_to(start + duration);
        let end = self.sim.now();
        let outcome = TransferOutcome {
            payload_bytes: bytes,
            wire_bytes: 0,
            streams: 0,
            stripes: 0,
            started: start,
            finished: end,
            phases: vec![PhaseRecord {
                name: "data",
                start,
                end,
            }],
        };
        let name = self.hosts[client.index()].name().to_string();
        self.record_transfer(&name, &name, "local", &outcome);
        outcome
    }

    /// Catalog and selection server query latency for a client: two round
    /// trips to the catalog node plus processing.
    fn service_latency(&self, client: HostId) -> SimDuration {
        let rtt = self
            .sim
            .routing()
            .rtt(self.node_of(client), self.catalog_node)
            .expect("catalog reachable");
        rtt * 2 + SimDuration::from_millis(5)
    }

    fn host_of_pfn(&self, pfn: &PhysicalFileName) -> Result<HostId, GridError> {
        self.host_by_name
            .get(pfn.host())
            .copied()
            .ok_or_else(|| GridError::ReplicaOffGrid {
                location: pfn.to_string(),
            })
    }

    /// Gathers one candidate's factors; the second return says whether
    /// `BW_P` was read from the live residual-bandwidth probe (true) or
    /// purely from sensor/MDS state (false).
    fn gather_factors(
        &self,
        replica_node: NodeId,
        client_node: NodeId,
        _pfn: &PhysicalFileName,
        is_local: bool,
    ) -> (SystemFactors, bool) {
        let host_id = self.host_at_node[&replica_node];
        let rec = self
            .mds
            .lookup(self.hosts[host_id.index()].name())
            .expect("grid hosts are MDS-registered");
        let (bw, residual) = if is_local {
            (1.0, false)
        } else {
            match self.selection_mode {
                // Contention-aware BW_P: what a new stream would actually
                // get *right now*, with every in-flight transfer's
                // allocation already subtracted by the max-min solver.
                SelectionMode::ContentionAware => {
                    (self.instantaneous_fraction(replica_node, client_node), true)
                }
                SelectionMode::Static => match self
                    .nws
                    .sensor(replica_node, client_node)
                    .and_then(BandwidthSensor::bandwidth_fraction)
                {
                    Some(fraction) => (fraction, false),
                    None => (self.instantaneous_fraction(replica_node, client_node), true),
                },
            }
        };
        (SystemFactors::new(bw, rec.cpu_idle, rec.io_idle), residual)
    }

    /// Fallback `BW_P` when no sensor history exists: the rate a new
    /// stream would get right now, over the grid-wide reference bandwidth.
    fn instantaneous_fraction(&self, src: NodeId, dst: NodeId) -> f64 {
        let Some(path) = self.sim.routing().path(src, dst) else {
            return 0.0;
        };
        if self.sim.topology().path_capacity(path).is_none() {
            return 1.0; // node-local
        }
        let reference = self
            .sim
            .topology()
            .max_link_capacity()
            .expect("grids have links");
        let tcp = self.tcp_for(src, dst);
        let cap = tcp.steady_rate(self.sim.rtt(src, dst));
        let avail = self.sim.available_bandwidth(src, dst, Some(cap));
        (avail.as_bps() / reference.as_bps()).clamp(0.0, 1.0)
    }

    fn alloc_session_tokens(&mut self) -> u64 {
        let base = self.next_session_base;
        self.next_session_base += TransferSession::TOKENS_PER_SESSION;
        base
    }

    /// Records one replica-selection decision: the audit entry with every
    /// candidate's factor breakdown, a `selection.decision` event, and the
    /// selection metrics. `candidates` arrive ranked best-first from
    /// [`rank_by_score`], so the slice index is the rank.
    fn record_selection(
        &mut self,
        lfn: &str,
        client: HostId,
        candidates: &[CandidateScore],
        chosen: usize,
        decision_latency: SimDuration,
        policy_override: Option<&str>,
    ) {
        let now = self.sim.now();
        let picked = &candidates[chosen];
        if let Some(tl) = self.timeline.as_mut() {
            tl.record_decision(now);
        }
        {
            let m = self.obs.metrics_mut();
            m.inc("selection.decisions");
            if picked.is_local {
                m.inc("selection.local_hits");
            }
            m.register_histogram("selection.score", SCORE_BOUNDS)
                .observe(picked.score);
            m.register_histogram("selection.decision_seconds", DECISION_BOUNDS_SECS)
                .observe(decision_latency.as_secs_f64());
        }
        if !self.obs.is_enabled() {
            return;
        }
        let w = self.selector.cost_model().weights();
        let client_name = self.hosts[client.index()].name().to_string();
        let policy = match policy_override {
            Some(label) => label.to_string(),
            None => self.selector.policy().name().to_string(),
        };
        let winner = picked.host_name.clone();
        self.obs.emit(
            Event::new(now, "select", "selection.decision")
                .with("lfn", lfn)
                .with("client", client_name.as_str())
                .with("policy", policy.as_str())
                .with("winner", winner.as_str())
                .with("score", picked.score)
                .with("candidates", candidates.len()),
        );
        let audited = candidates
            .iter()
            .enumerate()
            .map(|(rank, c)| CandidateAudit {
                host: c.host_name.clone(),
                bw_p: c.factors.bandwidth_fraction,
                cpu_p: c.factors.cpu_idle,
                io_p: c.factors.io_idle,
                weighted_bw: w.bandwidth * c.factors.bandwidth_fraction,
                weighted_cpu: w.cpu * c.factors.cpu_idle,
                weighted_io: w.io * c.factors.io_idle,
                score: c.score,
                is_local: c.is_local,
                rank,
                measured_secs: None,
            })
            .collect();
        self.obs.record_decision(SelectionDecision {
            time: now,
            lfn: lfn.to_string(),
            client: client_name,
            policy,
            weights: (w.bandwidth, w.cpu, w.io),
            candidates: audited,
            winner,
        });
    }

    /// Attaches the measured transfer time of `host` to the most recent
    /// audit entry, feeding the rank-vs-measured-time agreement check.
    fn attach_measured(&mut self, host: &str, outcome: &TransferOutcome) {
        let secs = outcome.duration().as_secs_f64();
        if let Some(decision) = self.obs.audit_mut().last_mut() {
            decision.attach_measured(host, secs);
        }
    }

    /// Records one finished transfer: span events, latency/byte/stream
    /// metrics and per-phase timing histograms. `protocol` is a stable
    /// label (`"gridftp"`, `"ftp"`, `"local"`).
    fn record_transfer(
        &mut self,
        src: &str,
        dst: &str,
        protocol: &'static str,
        outcome: &TransferOutcome,
    ) {
        let lfn = self.pending_lfn.take();
        self.record_transfer_for(src, dst, protocol, outcome, lfn.as_deref());
    }

    /// [`DataGrid::record_transfer`] with the logical file passed
    /// explicitly, so hot callers (the replay driver) can borrow it from
    /// their own state instead of cloning into `pending_lfn`.
    pub(crate) fn record_transfer_for(
        &mut self,
        src: &str,
        dst: &str,
        protocol: &'static str,
        outcome: &TransferOutcome,
        lfn: Option<&str>,
    ) {
        let id = self.next_span_id;
        self.next_span_id += 1;
        // The per-protocol / per-phase metric keys come from tiny closed
        // sets; interning them keeps this path off the allocator.
        let protocol_key = match protocol {
            "gridftp" => "transfer.count.gridftp",
            "ftp" => "transfer.count.ftp",
            "local" => "transfer.count.local",
            other => {
                self.obs
                    .metrics_mut()
                    .inc(&format!("transfer.count.{other}"));
                ""
            }
        };
        let m = self.obs.metrics_mut();
        m.inc("transfer.count");
        if !protocol_key.is_empty() {
            m.inc(protocol_key);
        }
        m.add("transfer.payload_bytes", outcome.payload_bytes);
        m.add("transfer.wire_bytes", outcome.wire_bytes);
        m.register_histogram("transfer.seconds", TRANSFER_BOUNDS_SECS)
            .observe(outcome.duration().as_secs_f64());
        m.register_histogram("transfer.streams", STREAM_BOUNDS)
            .observe(f64::from(outcome.streams.max(1)));
        for phase in &outcome.phases {
            let phase_key = match phase.name {
                "control" => "transfer.phase_seconds.control",
                "data" => "transfer.phase_seconds.data",
                "completion" => "transfer.phase_seconds.completion",
                other => {
                    self.obs
                        .metrics_mut()
                        .register_histogram(
                            &format!("transfer.phase_seconds.{other}"),
                            PHASE_BOUNDS_SECS,
                        )
                        .observe((phase.end - phase.start).as_secs_f64());
                    continue;
                }
            };
            self.obs
                .metrics_mut()
                .register_histogram(phase_key, PHASE_BOUNDS_SECS)
                .observe((phase.end - phase.start).as_secs_f64());
        }
        if self.obs.is_enabled() {
            let span = span_from_outcome(id, src, dst, protocol, lfn, outcome);
            for event in span.to_events() {
                self.obs.emit(event);
            }
        }
    }

    fn handle_internal(&mut self, ev: &SimEvent) {
        match &ev.kind {
            EventKind::TimerFired(TOK_MONITOR) => self.on_monitor_tick(),
            EventKind::TimerFired(TOK_SENTINEL) => {
                // A sentinel from an outer advance_to that was overtaken by
                // a nested loop; nothing to do.
            }
            EventKind::TimerFired(tok)
                if (TOK_PROBE_BASE..TOK_PROBE_BASE + self.monitored.len() as u64).contains(tok) =>
            {
                self.launch_probe((tok - TOK_PROBE_BASE) as usize);
            }
            EventKind::TimerFired(tok) if *tok >= SESSION_TOKEN_BASE => {
                // A stale watchdog or backoff timer from a transfer
                // session that has already finished; harmless.
            }
            EventKind::TimerFired(other) => {
                panic!("orphan timer token {other} reached the grid loop")
            }
            EventKind::FaultChanged(notice) => {
                self.invalidate_scores();
                if let Some(tl) = self.timeline.as_mut() {
                    tl.record_fault(ev.time);
                }
                // Capture the post-transition network shape immediately —
                // a fault can reroute or strand flows between monitor
                // ticks, and that is exactly what the timeline is for.
                self.sample_timeline();
                let label = notice.kind.label();
                let m = self.obs.metrics_mut();
                m.inc("fault.transitions");
                if notice.active || notice.kind.is_instant() {
                    m.inc(&format!("fault.{label}"));
                }
                self.obs.emit(
                    Event::new(
                        ev.time,
                        "fault",
                        if notice.active || notice.kind.is_instant() {
                            "fault.start"
                        } else {
                            "fault.end"
                        },
                    )
                    .with("kind", label)
                    .with("index", notice.index),
                );
            }
            EventKind::FlowCompleted(done) => {
                let Some((src, dst)) = self.pending_probes.remove(&done.id) else {
                    panic!("orphan flow completion {:?}", done.id);
                };
                let measured = done.avg_throughput();
                if let Some(sensor) = self.nws.sensor_mut(src, dst) {
                    sensor.record(ev.time, measured);
                    self.invalidate_scores();
                }
                self.obs.metrics_mut().inc("nws.probes_completed");
                if self.obs.is_enabled() {
                    self.obs.emit(
                        Event::new(ev.time, "nws", "probe.complete")
                            .with("src", src.index())
                            .with("dst", dst.index())
                            .with("mbps", measured.as_mbps()),
                    );
                }
            }
        }
    }

    fn on_monitor_tick(&mut self) {
        // Hosts advance and the MDS refreshes below: every cached CPU_P /
        // IO_P reading is about to go stale.
        self.invalidate_scores();
        self.trace.sample(&self.sim);
        self.sample_timeline();
        let now = self.sim.now();
        for (i, host) in self.hosts.iter_mut().enumerate() {
            host.advance_to(now);
            self.mds.refresh(HostId(i as u32), host, now);
        }
        self.obs.metrics_mut().inc("monitor.ticks");
        for i in 0..self.hosts.len() {
            let (name, cpu, io) = {
                let h = &self.hosts[i];
                (h.name().to_string(), h.cpu_idle(), h.io_idle())
            };
            let m = self.obs.metrics_mut();
            m.set_gauge(&format!("host.{name}.cpu_idle"), cpu);
            m.set_gauge(&format!("host.{name}.io_idle"), io);
        }
        let watched: Vec<(LinkId, f64)> = self
            .trace
            .iter()
            .filter_map(|(link, t)| t.samples().last().map(|s| (link, s.utilization)))
            .collect();
        for (link, utilization) in watched {
            self.obs.metrics_mut().set_gauge(
                &format!("net.link.{}.utilization", link.index()),
                utilization,
            );
        }
        // Stagger one probe per monitored path across the interval: NWS
        // serialises probes within a clique so measurements do not contend
        // with each other and distort themselves.
        let n = self.monitored.len() as u64;
        for i in 0..n {
            let offset = self.monitor_interval.saturating_mul(i) / (n + 1);
            self.sim.schedule_timer_after(offset, TOK_PROBE_BASE + i);
        }
        self.sim
            .schedule_timer_after(self.monitor_interval, TOK_MONITOR);
    }

    /// Launches the probe for monitored pair `index`, unless its previous
    /// probe is still in flight (a slow path must not pile up probes).
    fn launch_probe(&mut self, index: usize) {
        let (src, dst) = self.monitored[index];
        if self.pending_probes.values().any(|&p| p == (src, dst)) {
            return;
        }
        let tcp = self.tcp_for(src, dst);
        let cap = tcp.steady_rate(self.sim.rtt(src, dst));
        let id = self.sim.start_flow(
            FlowSpec::new(src, dst, self.probe_bytes)
                .with_cap(cap)
                .with_tag(FlowTag::Probe),
        );
        self.pending_probes.insert(id, (src, dst));
        self.obs.metrics_mut().inc("nws.probes_started");
        if self.obs.is_enabled() {
            self.obs.emit(
                Event::new(self.sim.now(), "nws", "probe.start")
                    .with("src", src.index())
                    .with("dst", dst.index())
                    .with("bytes", self.probe_bytes),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagrid_simnet::topology::{Bandwidth, LinkSpec};

    const MB: u64 = 1 << 20;

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    /// client --1Gbps-- switch --{fast: 100Mbps | slow: 10Mbps}-- replicas
    pub(crate) fn small_grid(seed: u64) -> DataGrid {
        let mut b = GridBuilder::new(seed);
        let client = b.add_host(
            HostSpec::new("client").with_cpu(2, 2.0),
            LoadModel::Constant(0.1),
            LoadModel::Constant(0.1),
        );
        let fast = b.add_host(
            HostSpec::new("fast").with_cpu(1, 2.8),
            LoadModel::Constant(0.2),
            LoadModel::Constant(0.1),
        );
        let slow = b.add_host(
            HostSpec::new("slow").with_cpu(1, 0.9),
            LoadModel::Constant(0.4),
            LoadModel::Constant(0.3),
        );
        let sw = b.add_switch("switch");
        let t = b.topology_mut();
        t.add_duplex_link(client, sw, LinkSpec::new(Bandwidth::from_gbps(1.0), ms(1)));
        t.add_duplex_link(fast, sw, LinkSpec::new(mbps(100.0), ms(4)));
        // Loss makes a single stream Mathis-limited (~6.5 Mbps) below the
        // 10 Mbps link, so parallel streams have room to win.
        t.add_duplex_link(slow, sw, LinkSpec::new(mbps(10.0), ms(10)).with_loss(0.01));
        b.monitor_all_host_pairs();
        b.build()
    }

    pub(crate) fn with_file(mut grid: DataGrid) -> DataGrid {
        grid.catalog_mut()
            .register_logical("file-a".parse().unwrap(), 16 * MB)
            .unwrap();
        grid.place_replica("file-a", "fast").unwrap();
        grid.place_replica("file-a", "slow").unwrap();
        grid
    }

    #[test]
    fn builder_wires_hosts_and_sensors() {
        let grid = small_grid(1);
        assert_eq!(grid.host_ids().count(), 3);
        assert!(grid.host_id("fast").is_some());
        assert!(grid.host_id("nope").is_none());
        // 3 hosts -> 6 ordered pairs monitored.
        assert_eq!(grid.nws().len(), 6);
        assert_eq!(grid.mds().len(), 3);
    }

    #[test]
    fn warm_up_populates_sensors_and_mds() {
        let mut grid = small_grid(2);
        grid.warm_up(SimDuration::from_secs(120));
        assert_eq!(grid.now(), SimTime::from_secs_f64(120.0));
        let client = grid.host_id("client").unwrap();
        let fast = grid.host_id("fast").unwrap();
        // The fast path carries ~100 Mbps of the grid's 1 Gbps reference.
        let frac = grid.bandwidth_fraction(fast, client).expect("warm sensor");
        assert!(
            (0.05..0.2).contains(&frac),
            "BW_P ≈ 0.1 expected, got {frac}"
        );
        let slow = grid.host_id("slow").unwrap();
        let slow_frac = grid.bandwidth_fraction(slow, client).expect("warm sensor");
        assert!(slow_frac < frac, "slow path must score below fast");
        let rec = grid.mds().lookup("slow").unwrap();
        assert!((rec.cpu_idle - 0.6).abs() < 1e-9);
        assert!(rec.updated > SimTime::ZERO);
    }

    #[test]
    fn score_candidates_ranks_fast_first() {
        let mut grid = with_file(small_grid(3));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let scored = grid.score_candidates(client, "file-a").unwrap();
        assert_eq!(scored.len(), 2);
        assert_eq!(scored[0].host_name, "fast");
        assert!(scored[0].score > scored[1].score);
        // Slow path: 10/1000 of the client NIC... BW_P is relative to the
        // path's own bottleneck, so the difference comes from loss,
        // sharing and host state; both fractions are valid.
        for c in &scored {
            assert!((0.0..=1.0).contains(&c.factors.bandwidth_fraction));
            assert!((0.0..=1.0).contains(&c.score));
        }
    }

    #[test]
    fn fetch_selects_and_transfers_fast_replica() {
        let mut grid = with_file(small_grid(4));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let report = grid.fetch(client, "file-a").unwrap();
        assert_eq!(report.chosen_candidate().host_name, "fast");
        assert!(!report.local_hit);
        assert_eq!(report.transfer.payload_bytes, 16 * MB);
        assert!(report.decision_latency > SimDuration::ZERO);
        // 16 MiB at ~100 Mbps ≈ 1.3 s; allow for slow start + handshake.
        let secs = report.transfer.duration().as_secs_f64();
        assert!((1.0..6.0).contains(&secs), "duration {secs}");
    }

    #[test]
    fn fetch_prefers_local_replica() {
        let mut grid = with_file(small_grid(5));
        grid.place_replica("file-a", "client").unwrap();
        grid.warm_up(SimDuration::from_secs(60));
        let client = grid.host_id("client").unwrap();
        let report = grid.fetch(client, "file-a").unwrap();
        assert!(report.local_hit);
        assert_eq!(report.chosen_candidate().host_name, "client");
        // Local disk read ≈ 16 MiB at ~50 MB/s < 1 s.
        assert!(report.transfer.duration().as_secs_f64() < 1.0);
        assert_eq!(report.transfer.wire_bytes, 0);
    }

    #[test]
    fn fetch_from_forces_the_slow_candidate() {
        let mut grid = with_file(small_grid(6));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let forced = grid
            .fetch_from(client, "file-a", "slow", FetchOptions::default())
            .unwrap();
        assert_eq!(forced.chosen_candidate().host_name, "slow");
        let free = grid.fetch(client, "file-a").unwrap();
        assert!(
            forced.transfer.duration() > free.transfer.duration(),
            "slow {} should exceed fast {}",
            forced.transfer.duration(),
            free.transfer.duration()
        );
        let err = grid
            .fetch_from(client, "file-a", "mars", FetchOptions::default())
            .unwrap_err();
        assert!(matches!(err, GridError::UnknownHost { .. }));
    }

    #[test]
    fn score_order_predicts_transfer_order() {
        // The paper's Table 1 claim: higher score => faster transfer.
        let mut grid = with_file(small_grid(7));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let scored = grid.score_candidates(client, "file-a").unwrap();
        let mut durations = Vec::new();
        for c in &scored {
            let mut probe_grid = grid.clone();
            let report = probe_grid
                .fetch_from(client, "file-a", &c.host_name, FetchOptions::default())
                .unwrap();
            durations.push(report.transfer.duration());
        }
        assert!(
            durations.windows(2).all(|w| w[0] <= w[1]),
            "transfer times should be sorted like scores: {durations:?}"
        );
    }

    #[test]
    fn errors_for_missing_files_and_hosts() {
        let mut grid = small_grid(8);
        let client = grid.host_id("client").unwrap();
        assert!(matches!(
            grid.fetch(client, "ghost").unwrap_err(),
            GridError::Catalog(_)
        ));
        grid.catalog_mut()
            .register_logical("empty".parse().unwrap(), MB)
            .unwrap();
        assert!(matches!(
            grid.fetch(client, "empty").unwrap_err(),
            GridError::NoReplicas { .. }
        ));
        assert!(matches!(
            grid.place_replica("empty", "mars").unwrap_err(),
            GridError::UnknownHost { .. }
        ));
    }

    #[test]
    fn replica_off_grid_detected() {
        let mut grid = small_grid(9);
        grid.catalog_mut()
            .register_logical("file-x".parse().unwrap(), MB)
            .unwrap();
        grid.catalog_mut()
            .add_replica(
                &"file-x".parse().unwrap(),
                "gsiftp://elsewhere/d/f".parse().unwrap(),
            )
            .unwrap();
        let client = grid.host_id("client").unwrap();
        assert!(matches!(
            grid.score_candidates(client, "file-x").unwrap_err(),
            GridError::ReplicaOffGrid { .. }
        ));
    }

    #[test]
    fn replicate_moves_bytes_and_registers() {
        let mut grid = with_file(small_grid(10));
        grid.warm_up(SimDuration::from_secs(30));
        let outcome = grid.replicate("file-a", "client", 4).unwrap();
        assert_eq!(outcome.payload_bytes, 16 * MB);
        let replicas = grid.catalog().replicas(&"file-a".parse().unwrap()).unwrap();
        assert_eq!(replicas.len(), 3);
        assert!(replicas.iter().any(|p| p.host() == "client"));
    }

    #[test]
    fn transfer_between_respects_parallelism_options() {
        let mut grid = small_grid(11);
        grid.warm_up(SimDuration::from_secs(30));
        let slow = grid.host_id("slow").unwrap();
        let client = grid.host_id("client").unwrap();
        let single = grid
            .transfer_between(slow, client, TransferRequest::new(8 * MB))
            .unwrap();
        let parallel = grid
            .transfer_between(
                slow,
                client,
                TransferRequest::new(8 * MB).with_parallelism(8),
            )
            .unwrap();
        assert!(
            parallel.duration() < single.duration(),
            "parallel {} vs single {}",
            parallel.duration(),
            single.duration()
        );
    }

    #[test]
    fn clone_gives_independent_counterfactuals() {
        let mut grid = with_file(small_grid(12));
        grid.warm_up(SimDuration::from_secs(60));
        let client = grid.host_id("client").unwrap();
        let mut a = grid.clone();
        let mut b = grid.clone();
        let ra = a.fetch(client, "file-a").unwrap();
        let rb = b.fetch(client, "file-a").unwrap();
        // Identical clones evolve identically.
        assert_eq!(ra.transfer.duration(), rb.transfer.duration());
        // And the original is untouched.
        assert_eq!(grid.now(), SimTime::from_secs_f64(60.0));
    }

    #[test]
    fn monitoring_keeps_running_during_transfers() {
        let mut grid = with_file(small_grid(13));
        grid.warm_up(SimDuration::from_secs(30));
        let client = grid.host_id("client").unwrap();
        let fast = grid.host_id("fast").unwrap();
        let samples_before = grid
            .nws()
            .sensor(grid.node_of(fast), grid.node_of(client))
            .unwrap()
            .series()
            .len();
        // A long transfer over the slow path (~16 MiB at ≈10 Mbps ≈ 13 s,
        // spanning one or two 10 s monitor ticks).
        let _ = grid
            .fetch_from(client, "file-a", "slow", FetchOptions::default())
            .unwrap();
        let samples_after = grid
            .nws()
            .sensor(grid.node_of(fast), grid.node_of(client))
            .unwrap()
            .series()
            .len();
        assert!(
            samples_after > samples_before,
            "probes must fire during transfers: {samples_before} -> {samples_after}"
        );
    }

    #[test]
    fn policies_change_choices() {
        let mut grid = with_file(small_grid(14));
        grid.warm_up(SimDuration::from_secs(60));
        let client = grid.host_id("client").unwrap();
        grid.selector_mut().set_policy(SelectionPolicy::RoundRobin);
        let first = grid.fetch(client, "file-a").unwrap();
        let second = grid.fetch(client, "file-a").unwrap();
        assert_ne!(
            first.chosen_candidate().host_name,
            second.chosen_candidate().host_name,
            "round robin must rotate"
        );
    }

    #[test]
    fn debug_formatting_mentions_state() {
        let grid = small_grid(15);
        let s = format!("{grid:?}");
        assert!(s.contains("DataGrid"));
        assert!(s.contains("hosts"));
    }

    #[test]
    fn fetch_records_audit_metrics_and_span_events() {
        let mut grid = with_file(small_grid(16));
        grid.warm_up(SimDuration::from_secs(60));
        let client = grid.host_id("client").unwrap();
        let report = grid.fetch(client, "file-a").unwrap();

        let audit = grid.audit();
        assert_eq!(audit.len(), 1);
        let decision = audit.last().unwrap();
        assert_eq!(decision.lfn, "file-a");
        assert_eq!(decision.client, "client");
        assert_eq!(decision.winner, report.chosen_candidate().host_name);
        assert_eq!(decision.candidates.len(), 2);
        assert_eq!(decision.weights, (0.8, 0.1, 0.1));
        // Ranked best-first; the winner carries its measured time.
        assert_eq!(decision.hosts_by_rank()[0], decision.winner);
        let winner = decision.winner_audit().unwrap();
        assert!(winner.measured_secs.unwrap() > 0.0);
        assert!(winner.bw_p > 0.0 && winner.cpu_p > 0.0 && winner.io_p > 0.0);
        let recomputed = winner.weighted_bw + winner.weighted_cpu + winner.weighted_io;
        assert!((recomputed - winner.score).abs() < 1e-9);

        let metrics = grid.metrics_snapshot();
        assert_eq!(metrics.counter("selection.decisions"), 1);
        assert_eq!(metrics.counter("transfer.count"), 1);
        assert_eq!(metrics.counter("transfer.count.gridftp"), 1);
        assert_eq!(metrics.histogram("transfer.seconds").unwrap().count(), 1);
        assert!(metrics.counter("monitor.ticks") >= 6);
        assert!(metrics.counter("nws.probes_completed") > 0);
        assert!(metrics.counter("catalog.lookups") > 0);
        assert!(metrics.counter("simnet.flows_completed") > 0);
        assert!(metrics.gauge("host.client.cpu_idle").is_some());

        // The span closed with the served logical file attached.
        let jsonl = grid.recorder().events_jsonl();
        assert!(jsonl.contains("\"kind\":\"span.open\""));
        assert!(jsonl.contains("\"lfn\":\"file-a\""));
        assert!(jsonl.contains("\"kind\":\"span.close\""));
        assert!(jsonl.contains("\"kind\":\"selection.decision\""));
    }

    #[test]
    fn disabled_recording_keeps_metrics_but_no_events_or_audit() {
        let mut grid = {
            let mut b = GridBuilder::new(17);
            let client = b.add_host(
                HostSpec::new("client").with_cpu(2, 2.0),
                LoadModel::Constant(0.1),
                LoadModel::Constant(0.1),
            );
            let other = b.add_host(
                HostSpec::new("other"),
                LoadModel::Constant(0.1),
                LoadModel::Constant(0.1),
            );
            b.topology_mut()
                .add_duplex_link(client, other, LinkSpec::new(mbps(100.0), ms(1)));
            b.recording(false);
            b.build()
        };
        grid.catalog_mut()
            .register_logical("f".parse().unwrap(), MB)
            .unwrap();
        grid.place_replica("f", "client").unwrap();
        let client = grid.host_id("client").unwrap();
        grid.fetch(client, "f").unwrap();
        assert!(!grid.recorder().is_enabled());
        assert_eq!(grid.recorder().events().len(), 0);
        assert!(grid.audit().is_empty());
        // Metrics still accrue: they are cheap and always truthful.
        assert_eq!(grid.metrics_snapshot().counter("selection.decisions"), 1);
        assert_eq!(grid.metrics_snapshot().counter("transfer.count.local"), 1);
    }
}

#[cfg(test)]
mod recovery_grid_tests {
    use super::tests::{small_grid, with_file};
    use super::*;
    use crate::recovery::RecoveryOptions;
    use datagrid_gridftp::retry::RetryPolicy;

    const MB: u64 = 1 << 20;

    fn quick_recovery() -> RecoveryOptions {
        RecoveryOptions::default()
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(2)
                    .with_base_backoff(SimDuration::from_secs(1))
                    .with_jitter(0.0),
            )
            .with_stall_timeout(SimDuration::from_secs(1))
    }

    #[test]
    fn suspect_mark_demotes_candidate() {
        let mut grid = with_file(small_grid(21));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let healthy = grid.score_candidates(client, "file-a").unwrap();
        assert_eq!(healthy[0].host_name, "fast");
        let fast_loc = healthy[0].location.clone();
        grid.catalog_mut().mark_suspect(&fast_loc);
        let marked = grid.score_candidates(client, "file-a").unwrap();
        assert_eq!(
            marked[0].host_name, "slow",
            "suspect penalty must demote fast below slow"
        );
        grid.catalog_mut().clear_suspect(&fast_loc);
        let cleared = grid.score_candidates(client, "file-a").unwrap();
        assert_eq!(cleared[0].host_name, "fast");
        assert_eq!(cleared[0].score, healthy[0].score);
    }

    #[test]
    fn clean_fetch_needs_no_recovery() {
        let mut grid = with_file(small_grid(22));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let rec = grid
            .fetch_with_recovery(client, "file-a", FetchOptions::default(), &quick_recovery())
            .unwrap();
        assert!(rec.clean());
        assert_eq!(rec.report.chosen_candidate().host_name, "fast");
        assert_eq!(rec.payload_moved, 16 * MB);
        assert_eq!(rec.backoff_total, SimDuration::ZERO);
    }

    #[test]
    fn transient_outage_is_retried_on_the_same_replica() {
        let mut grid = with_file(small_grid(23));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let fast = grid.host_id("fast").unwrap();
        let fast_node = grid.node_of(fast);
        // Down for 2 s shortly after the transfer starts; one stall +
        // one resumed attempt fits inside the 2-attempt budget.
        grid.install_fault_plan(FaultPlan::new().host_blackout(
            SimTime::from_secs_f64(121.0),
            SimDuration::from_secs(2),
            fast_node,
        ));
        let rec = grid
            .fetch_with_recovery(
                client,
                "file-a",
                FetchOptions::default().with_parallelism(4),
                &quick_recovery(),
            )
            .unwrap();
        assert!(rec.attempts >= 2, "{rec:?}");
        assert!(rec.failed_over.is_empty(), "no failover needed");
        assert_eq!(rec.report.chosen_candidate().host_name, "fast");
        // MODE E markers: nothing is re-sent.
        assert_eq!(rec.payload_moved, 16 * MB);
        let m = grid.metrics_snapshot();
        assert!(m.counter("transfer.stalls") >= 1);
        assert!(m.counter("transfer.retries") >= 1);
        assert_eq!(m.counter("fault.host_blackout"), 1);
        let kinds: Vec<&str> = grid.recorder().events().map(|e| e.kind).collect();
        assert!(kinds.contains(&"fault.start"));
        assert!(kinds.contains(&"fault.end"));
        assert!(kinds.contains(&"transfer.stall"));
        assert!(kinds.contains(&"transfer.retry"));
    }

    #[test]
    fn dead_replica_fails_over_to_next_best() {
        let mut grid = with_file(small_grid(24));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let fast = grid.host_id("fast").unwrap();
        let fast_node = grid.node_of(fast);
        // Fast goes dark for a long time: retries exhaust, then the
        // fetch must complete from the slow replica.
        grid.install_fault_plan(FaultPlan::new().host_blackout(
            SimTime::from_secs_f64(121.0),
            SimDuration::from_secs(10_000),
            fast_node,
        ));
        let rec = grid
            .fetch_with_recovery(
                client,
                "file-a",
                FetchOptions::default().with_parallelism(4),
                &quick_recovery(),
            )
            .unwrap();
        assert_eq!(rec.failed_over, vec!["fast".to_string()]);
        assert_eq!(rec.report.chosen_candidate().host_name, "slow");
        assert_eq!(rec.report.transfer.payload_bytes, 16 * MB);
        assert!(rec.attempts >= 3, "2 on fast + at least 1 on slow");
        // The abandoned site is now suspect in the catalog.
        let fast_loc = rec
            .report
            .candidates
            .iter()
            .find(|c| c.host_name == "fast")
            .unwrap()
            .location
            .clone();
        assert!(grid.catalog().is_suspect(&fast_loc));
        let m = grid.metrics_snapshot();
        assert_eq!(m.counter("selection.failovers"), 1);
        assert!(m.counter("transfer.abandoned") >= 1);
        // The audit holds both the original decision and the failover
        // re-selection, with the failover policy labelled.
        let audit = grid.audit();
        assert!(audit.len() >= 2);
        let last = audit.last().unwrap();
        assert_eq!(last.policy, "failover");
        assert_eq!(last.winner, "slow");
        let kinds: Vec<&str> = grid.recorder().events().map(|e| e.kind).collect();
        assert!(kinds.contains(&"selection.failover"));
    }

    #[test]
    fn all_replicas_dead_is_reported() {
        let mut grid = with_file(small_grid(25));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let fast_node = grid.node_of(grid.host_id("fast").unwrap());
        let slow_node = grid.node_of(grid.host_id("slow").unwrap());
        grid.install_fault_plan(
            FaultPlan::new()
                .host_blackout(
                    SimTime::from_secs_f64(121.0),
                    SimDuration::from_secs(100_000),
                    fast_node,
                )
                .host_blackout(
                    SimTime::from_secs_f64(121.0),
                    SimDuration::from_secs(100_000),
                    slow_node,
                ),
        );
        let err = grid
            .fetch_with_recovery(
                client,
                "file-a",
                FetchOptions::default().with_parallelism(4),
                &quick_recovery(),
            )
            .unwrap_err();
        match err {
            GridError::AllReplicasFailed { lfn, failed } => {
                assert_eq!(lfn, "file-a");
                assert_eq!(failed.len(), 2);
            }
            other => panic!("unexpected error {other}"),
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use datagrid_simnet::topology::{Bandwidth, LinkSpec};

    #[test]
    fn watched_links_collect_samples_on_ticks() {
        let mut b = GridBuilder::new(42);
        let a = b.add_host(
            HostSpec::new("a"),
            LoadModel::Constant(0.1),
            LoadModel::Constant(0.1),
        );
        let c = b.add_host(
            HostSpec::new("c"),
            LoadModel::Constant(0.1),
            LoadModel::Constant(0.1),
        );
        let (fwd, _) = b.topology_mut().add_duplex_link(
            a,
            c,
            LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(2)),
        );
        b.watch_links([fwd]);
        b.monitor_path(a, c);
        let mut grid = b.build();
        grid.warm_up(SimDuration::from_secs(65));
        let trace = grid.network_trace().link(fwd).expect("watched");
        // Ticks at 1, 11, ..., 61 s -> 7 samples.
        assert!(
            trace.samples().len() >= 6,
            "samples {}",
            trace.samples().len()
        );
        // Probes occasionally light the link up.
        assert!(trace.peak().unwrap() >= 0.0);
    }
}

#[cfg(test)]
mod scratch_tests {
    use super::tests::{small_grid, with_file};
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn score_scratch_hit_returns_identical_ranking() {
        let mut grid = with_file(small_grid(11));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let fresh = grid.score_candidates(client, "file-a").unwrap();
        let (h0, m0) = grid.score_scratch_stats();
        let cached = grid.score_candidates(client, "file-a").unwrap();
        let (h1, m1) = grid.score_scratch_stats();
        assert_eq!(h1, h0 + 1, "second identical query must hit");
        assert_eq!(m1, m0, "second identical query must not recompute");
        assert_eq!(fresh, cached, "cache must reproduce the ranking exactly");
    }

    #[test]
    fn score_scratch_is_per_client_and_per_lfn() {
        let mut grid = with_file(small_grid(12));
        grid.catalog_mut()
            .register_logical("file-b".parse().unwrap(), MB)
            .unwrap();
        grid.place_replica("file-b", "fast").unwrap();
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let fast = grid.host_id("fast").unwrap();
        grid.score_candidates(client, "file-a").unwrap();
        let (_, m0) = grid.score_scratch_stats();
        // Different client: its slot is cold.
        grid.score_candidates(fast, "file-a").unwrap();
        // Different file on a warm client slot: entry answers for one lfn.
        grid.score_candidates(client, "file-b").unwrap();
        let (h1, m1) = grid.score_scratch_stats();
        assert_eq!(m1, m0 + 2, "new client and new lfn both recompute");
        assert_eq!(h1, 0);
    }

    #[test]
    fn monitor_tick_invalidates_scores() {
        let mut grid = with_file(small_grid(13));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        grid.score_candidates(client, "file-a").unwrap();
        let (_, m0) = grid.score_scratch_stats();
        // Crossing a monitor tick refreshes MDS readings: recompute.
        grid.warm_up(SimDuration::from_secs(15));
        grid.score_candidates(client, "file-a").unwrap();
        let (_, m1) = grid.score_scratch_stats();
        assert_eq!(m1, m0 + 1, "post-tick query must recompute");
    }

    #[test]
    fn catalog_and_suspect_mutations_invalidate_scores() {
        let mut grid = with_file(small_grid(14));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let before = grid.score_candidates(client, "file-a").unwrap();
        let fast_loc = before
            .iter()
            .find(|c| c.host_name == "fast")
            .unwrap()
            .location
            .clone();
        grid.catalog_mut().mark_suspect(&fast_loc);
        let (_, m0) = grid.score_scratch_stats();
        let after = grid.score_candidates(client, "file-a").unwrap();
        let (_, m1) = grid.score_scratch_stats();
        assert_eq!(m1, m0 + 1, "suspect mark must force a recompute");
        let fast_after = after.iter().find(|c| c.host_name == "fast").unwrap();
        let fast_before = before.iter().find(|c| c.host_name == "fast").unwrap();
        assert!(
            fast_after.score < fast_before.score,
            "suspect penalty must show up in the recomputed ranking"
        );
        // Placing a replica (catalog mutation) also invalidates.
        grid.catalog_mut()
            .register_logical("file-c".parse().unwrap(), MB)
            .unwrap();
        grid.place_replica("file-c", "slow").unwrap();
        grid.score_candidates(client, "file-a").unwrap();
        let (_, m2) = grid.score_scratch_stats();
        assert_eq!(m2, m1 + 1, "catalog growth must force a recompute");
    }

    #[test]
    fn contention_aware_scratch_keys_on_network_version() {
        let mut grid = with_file(small_grid(15));
        grid.set_selection_mode(SelectionMode::ContentionAware);
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        grid.score_candidates(client, "file-a").unwrap();
        let (h0, m0) = grid.score_scratch_stats();
        // No network change between queries: residual reads still hold.
        grid.score_candidates(client, "file-a").unwrap();
        let (h1, _) = grid.score_scratch_stats();
        assert_eq!(h1, h0 + 1);
        // A background flow changes residual bandwidth: entry goes stale
        // even though no epoch-advancing event fired.
        let fast_node = grid.node_of(grid.host_id("fast").unwrap());
        let client_node = grid.node_of(client);
        grid.sim
            .start_flow(FlowSpec::new(fast_node, client_node, 64 * MB));
        grid.score_candidates(client, "file-a").unwrap();
        let (_, m1) = grid.score_scratch_stats();
        assert_eq!(m1, m0 + 1, "residual entries must recompute on flow start");
    }

    /// Regression: a fault transition driven through the grid's event loop
    /// bumps the selection epoch, so a warm scratch entry must re-rank
    /// instead of serving the pre-fault ranking. Static mode isolates the
    /// epoch path — its entries never key on the network version, so only
    /// the `FaultChanged` invalidation can force the recompute.
    #[test]
    fn fault_transition_invalidates_scores() {
        use datagrid_simnet::fault::{FaultKind, ScheduledFault};

        let mut grid = with_file(small_grid(16));
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        grid.score_candidates(client, "file-a").unwrap();
        let (h0, _) = grid.score_scratch_stats();
        grid.score_candidates(client, "file-a").unwrap();
        let (h1, m0) = grid.score_scratch_stats();
        assert_eq!(h1, h0 + 1, "pre-fault repeat query must hit");
        // Black out the fast replica's host mid-run; advance only 2 s so
        // no monitor tick (10 s cadence) can mask the fault-epoch bump.
        let fast_node = grid.node_of(grid.host_id("fast").unwrap());
        let mut plan = FaultPlan::new();
        plan.push(ScheduledFault {
            at: grid.now() + SimDuration::from_secs(1),
            duration: SimDuration::from_secs(30),
            kind: FaultKind::HostBlackout { node: fast_node },
        });
        grid.install_fault_plan(plan);
        grid.warm_up(SimDuration::from_secs(2));
        grid.score_candidates(client, "file-a").unwrap();
        let (h2, m1) = grid.score_scratch_stats();
        assert_eq!(m1, m0 + 1, "post-blackout query must recompute");
        assert_eq!(h2, h1, "post-blackout query must not serve the stale entry");
    }

    /// The post-fault re-rank must be a *different* ranking where the
    /// fault is observable: with contention-aware scoring a blacked-out
    /// replica host's residual bandwidth collapses, so its recomputed
    /// score must drop below its pre-fault value.
    #[test]
    fn blackout_rerank_degrades_dead_replica() {
        use datagrid_simnet::fault::{FaultKind, ScheduledFault};

        let mut grid = with_file(small_grid(17));
        grid.set_selection_mode(SelectionMode::ContentionAware);
        grid.warm_up(SimDuration::from_secs(120));
        let client = grid.host_id("client").unwrap();
        let before = grid.score_candidates(client, "file-a").unwrap();
        let fast_before = before.iter().find(|c| c.host_name == "fast").unwrap();
        let fast_node = grid.node_of(grid.host_id("fast").unwrap());
        let mut plan = FaultPlan::new();
        plan.push(ScheduledFault {
            at: grid.now() + SimDuration::from_secs(1),
            duration: SimDuration::from_secs(30),
            kind: FaultKind::HostBlackout { node: fast_node },
        });
        grid.install_fault_plan(plan);
        grid.warm_up(SimDuration::from_secs(2));
        let after = grid.score_candidates(client, "file-a").unwrap();
        let fast_after = after.iter().find(|c| c.host_name == "fast").unwrap();
        assert!(
            fast_after.score < fast_before.score,
            "blacked-out replica must re-rank lower: {} -> {}",
            fast_before.score,
            fast_after.score
        );
    }
}
