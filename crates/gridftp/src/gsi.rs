//! Grid Security Infrastructure (GSI) authentication cost model.
//!
//! Every GridFTP control connection starts with GSI mutual authentication:
//! a TLS-style handshake (certificate exchange, several round trips) plus
//! public-key cryptography on both ends. This is the constant per-session
//! overhead that makes GridFTP slightly slower than plain FTP for small
//! files in the paper's Fig. 3 while being irrelevant for multi-gigabyte
//! transfers.

use datagrid_simnet::time::SimDuration;

/// Cost parameters of one GSI mutual authentication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsiConfig {
    /// Control-channel round trips consumed by the handshake
    /// (hello/certificate/verify/finished plus the gss token exchange).
    pub handshake_rtts: u32,
    /// CPU time for the public-key operations on a reference machine with
    /// [compute index](crate::executor::TransferEndpoint::compute_index)
    /// 1.0 (1 core × 1 GHz). Scales inversely with each endpoint's index.
    pub crypto_cpu_reference: SimDuration,
}

impl Default for GsiConfig {
    /// 2005-era defaults: 4 round trips, 250 ms of RSA work per side on a
    /// 1 GHz machine.
    fn default() -> Self {
        GsiConfig {
            handshake_rtts: 4,
            crypto_cpu_reference: SimDuration::from_millis(250),
        }
    }
}

impl GsiConfig {
    /// A configuration with no authentication cost (for calibration and
    /// what-if ablations).
    pub fn disabled() -> Self {
        GsiConfig {
            handshake_rtts: 0,
            crypto_cpu_reference: SimDuration::ZERO,
        }
    }

    /// Total handshake duration for one session over a path with the given
    /// `rtt`, between endpoints with the given compute indices.
    ///
    /// Crypto on the two ends does not overlap (each side verifies the
    /// other's certificate before replying), so the CPU terms add.
    ///
    /// # Panics
    ///
    /// Panics if either compute index is not strictly positive.
    pub fn handshake_time(
        &self,
        rtt: SimDuration,
        client_compute_index: f64,
        server_compute_index: f64,
    ) -> SimDuration {
        assert!(
            client_compute_index > 0.0 && server_compute_index > 0.0,
            "compute indices must be positive"
        );
        let net = rtt * u64::from(self.handshake_rtts);
        let crypto_secs = self.crypto_cpu_reference.as_secs_f64()
            * (1.0 / client_compute_index + 1.0 / server_compute_index);
        net + SimDuration::from_secs_f64(crypto_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    #[test]
    fn default_handshake_cost() {
        let gsi = GsiConfig::default();
        // 4 RTTs of 10 ms + 250 ms × (1/2 + 1/2) = 40 + 250 = 290 ms.
        let t = gsi.handshake_time(ms(10), 2.0, 2.0);
        assert!((t.as_millis_f64() - 290.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn faster_hosts_authenticate_faster() {
        let gsi = GsiConfig::default();
        let slow = gsi.handshake_time(ms(10), 0.9, 0.9);
        let fast = gsi.handshake_time(ms(10), 4.0, 4.0);
        assert!(slow > fast);
    }

    #[test]
    fn disabled_costs_nothing() {
        let gsi = GsiConfig::disabled();
        assert_eq!(gsi.handshake_time(ms(50), 1.0, 1.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "compute indices")]
    fn zero_index_rejected() {
        let _ = GsiConfig::default().handshake_time(ms(1), 0.0, 1.0);
    }
}
