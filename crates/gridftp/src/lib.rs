//! # datagrid-gridftp
//!
//! Protocol-level simulation of **FTP** and **GridFTP** data transfers,
//! faithful to the behaviours the paper measures:
//!
//! * control-channel command exchanges costed per round trip ([`session`]),
//! * GSI mutual authentication (round trips + crypto CPU time, [`gsi`]),
//! * stream mode vs. **extended block MODE E** with its 17-byte block
//!   headers and out-of-order delivery, which is what enables parallel TCP
//!   streams ([`mode`]),
//! * parallel, striped, partial and third-party transfers
//!   ([`transfer`], [`executor`]),
//! * endpoint rate limits from disk availability and CPU headroom
//!   ([`executor::TransferEndpoint`]).
//!
//! The executor is an event-driven state machine over a
//! [`NetSim`](datagrid_simnet::NetSim), so transfers coexist with
//! monitoring probes and other traffic; [`executor::run_transfer`] is the
//! convenience wrapper when a transfer is the only foreground activity.
//!
//! ## Example
//!
//! ```
//! use datagrid_gridftp::prelude::*;
//! use datagrid_simnet::prelude::*;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node("alpha01");
//! let b = topo.add_node("gridhit3");
//! topo.add_duplex_link(a, b, LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(5)));
//! let mut sim = NetSim::new(topo, 1);
//!
//! let req = TransferRequest::new(256 << 20)
//!     .with_protocol(Protocol::GridFtp)
//!     .with_parallelism(4);
//! let src = TransferEndpoint::unconstrained(a);
//! let dst = TransferEndpoint::unconstrained(b);
//! let outcome = run_transfer(&mut sim, &req, &src, &dst, &TcpParams::default()).unwrap();
//! assert!(outcome.duration().as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod executor;
pub mod gsi;
pub mod instrument;
pub mod mode;
pub mod retry;
pub mod session;
pub mod transfer;

pub use error::TransferError;
pub use executor::{
    run_transfer, run_transfer_with_recovery, RecoveredTransfer, TransferEndpoint, TransferFailure,
    TransferSession,
};
pub use mode::TransferMode;
pub use retry::RetryPolicy;
pub use transfer::{DataChannelProtection, Protocol, TransferOutcome, TransferRequest};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::error::TransferError;
    pub use crate::executor::{
        run_transfer, run_transfer_with_recovery, RecoveredTransfer, SessionStatus,
        TransferEndpoint, TransferFailure, TransferSession,
    };
    pub use crate::gsi::GsiConfig;
    pub use crate::instrument::{protocol_label, span_from_outcome};
    pub use crate::mode::TransferMode;
    pub use crate::retry::RetryPolicy;
    pub use crate::session::{ControlScript, ControlStep};
    pub use crate::transfer::{DataChannelProtection, Protocol, TransferOutcome, TransferRequest};
}
