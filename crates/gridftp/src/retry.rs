//! Retry policy: exponential backoff with seeded jitter and capped
//! attempts.
//!
//! Globus clients retry failed transfers with growing pauses so a flapping
//! link is not hammered while it recovers. [`RetryPolicy`] reproduces that
//! behaviour deterministically: the pause after retry *k* is
//! `base · multiplier^k`, clamped to `max_backoff`, then spread by a
//! symmetric jitter fraction drawn from a caller-supplied [`SimRng`] — same
//! seed, same pauses.
//!
//! ```
//! use datagrid_gridftp::retry::RetryPolicy;
//! use datagrid_simnet::prelude::*;
//!
//! let policy = RetryPolicy::default();
//! let mut rng = SimRng::seed_from_u64(7);
//! let first = policy.backoff(0, &mut rng);
//! assert!(first > SimDuration::ZERO);
//! ```

use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::SimDuration;

/// How (and how often) a stalled transfer is retried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total sessions allowed, including the first attempt. At least 1.
    pub max_attempts: u32,
    /// Pause before the first retry.
    pub base_backoff: SimDuration,
    /// Growth factor between consecutive retries.
    pub multiplier: f64,
    /// Upper bound on any single pause.
    pub max_backoff: SimDuration,
    /// Symmetric jitter fraction in `[0, 1)`: each pause is scaled by a
    /// factor uniform in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// Four attempts with 2 s → 4 s → 8 s pauses (±25 % jitter), capped at
    /// 30 s — the shape of the Globus retry defaults scaled to simulation.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_secs(2),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(30),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first stall is final.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sets the attempt cap (clamped to at least 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the pause before the first retry.
    pub fn with_base_backoff(mut self, base: SimDuration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Sets the per-pause upper bound.
    pub fn with_max_backoff(mut self, max: SimDuration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Sets the jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1)`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter),
            "jitter must be in [0, 1), got {jitter}"
        );
        self.jitter = jitter;
        self
    }

    /// The pause before retry number `retry` (0 = first retry). Draws the
    /// jitter factor from `rng`, so equal seeds give equal schedules.
    pub fn backoff(&self, retry: u32, rng: &mut SimRng) -> SimDuration {
        let exp = self
            .multiplier
            .powi(i32::try_from(retry).unwrap_or(i32::MAX));
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        let factor = if self.jitter > 0.0 {
            rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        } else {
            1.0
        };
        SimDuration::from_secs_f64((capped * factor).max(0.0))
    }

    /// `true` when `attempts` sessions have been used up.
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> RetryPolicy {
        RetryPolicy::default().with_jitter(0.0)
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let policy = no_jitter()
            .with_base_backoff(SimDuration::from_secs(1))
            .with_max_backoff(SimDuration::from_secs(10));
        let mut rng = SimRng::seed_from_u64(1);
        let secs: Vec<f64> = (0..6)
            .map(|k| policy.backoff(k, &mut rng).as_secs_f64())
            .collect();
        assert_eq!(secs, vec![1.0, 2.0, 4.0, 8.0, 10.0, 10.0]);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let policy = RetryPolicy::default().with_jitter(0.25);
        let draw = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..8)
                .map(|k| policy.backoff(k, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draw(42);
        assert_eq!(a, draw(42), "same seed, same schedule");
        assert_ne!(a, draw(43));
        let mut rng = SimRng::seed_from_u64(9);
        for k in 0..3 {
            let nominal = 2.0 * 2.0_f64.powi(k);
            let got = policy.backoff(k as u32, &mut rng).as_secs_f64();
            assert!(
                (nominal * 0.75..=nominal * 1.25).contains(&got),
                "retry {k}: {got} outside ±25% of {nominal}"
            );
        }
    }

    #[test]
    fn exhaustion_and_attempt_floor() {
        let policy = RetryPolicy::no_retries();
        assert!(!policy.exhausted(0));
        assert!(policy.exhausted(1));
        let zero = RetryPolicy::default().with_max_attempts(0);
        assert_eq!(zero.max_attempts, 1, "cap clamps to one attempt");
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn out_of_range_jitter_rejected() {
        let _ = RetryPolicy::default().with_jitter(1.0);
    }
}
