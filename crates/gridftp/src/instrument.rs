//! Bridging transfer outcomes into the observability layer.
//!
//! A completed [`TransferOutcome`](crate::transfer::TransferOutcome) carries
//! the session's phase records (control — authentication and handshake —,
//! ramp-up, data, completion/teardown). This module converts one into a
//! [`TransferSpan`] so the grid orchestrator can emit `span.*` events and
//! feed the per-phase histograms without re-deriving the timeline.

use datagrid_obs::span::{PhaseSpan, TransferSpan};

use crate::transfer::{Protocol, TransferOutcome};

/// Stable lowercase label for a protocol (used in events and metrics).
pub fn protocol_label(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Ftp => "ftp",
        Protocol::GridFtp => "gridftp",
    }
}

/// Convert a finished transfer into a span.
///
/// `id` is the caller's monotonic span id; `protocol` is a stable label
/// (use [`protocol_label`], or a custom tag like `"local"` for synthetic
/// outcomes); `lfn` names the logical file when the transfer served a
/// catalog fetch.
pub fn span_from_outcome(
    id: u64,
    src: &str,
    dst: &str,
    protocol: &str,
    lfn: Option<&str>,
    outcome: &TransferOutcome,
) -> TransferSpan {
    TransferSpan {
        id,
        src: src.to_string(),
        dst: dst.to_string(),
        protocol: protocol.to_string(),
        lfn: lfn.map(str::to_string),
        payload_bytes: outcome.payload_bytes,
        wire_bytes: outcome.wire_bytes,
        streams: outcome.streams,
        stripes: outcome.stripes,
        started: outcome.started,
        finished: outcome.finished,
        phases: outcome
            .phases
            .iter()
            .map(|p| PhaseSpan {
                name: p.name,
                start: p.start,
                end: p.end,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_transfer, TransferEndpoint};
    use crate::transfer::TransferRequest;
    use datagrid_simnet::prelude::*;

    fn sim() -> (NetSim, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node("src");
        let b = topo.add_node("dst");
        topo.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(5)),
        );
        (NetSim::new(topo, 7), a, b)
    }

    #[test]
    fn outcome_phases_survive_the_conversion() {
        let (mut sim, a, b) = sim();
        let req = TransferRequest::new(8 << 20).with_protocol(Protocol::GridFtp);
        let outcome = run_transfer(
            &mut sim,
            &req,
            &TransferEndpoint::unconstrained(a),
            &TransferEndpoint::unconstrained(b),
            &TcpParams::default(),
        )
        .expect("transfer succeeds");
        let span = span_from_outcome(
            3,
            "src",
            "dst",
            protocol_label(Protocol::GridFtp),
            Some("f"),
            &outcome,
        );
        assert_eq!(span.id, 3);
        assert_eq!(span.protocol, "gridftp");
        assert_eq!(span.phases.len(), outcome.phases.len());
        assert!(span.phase("data").is_some(), "phases: {:?}", span.phases);
        assert_eq!(span.payload_bytes, outcome.payload_bytes);
        assert!(span.duration().as_secs_f64() > 0.0);
        let events = span.to_events();
        assert_eq!(events.len(), span.phases.len() + 2);
    }
}
