//! Transfer requests and outcomes.

use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_simnet::topology::Bandwidth;

use crate::error::TransferError;
use crate::mode::TransferMode;

/// The transfer protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Plain FTP: password auth, stream mode only, single connection.
    Ftp,
    /// GridFTP: GSI auth, MODE E, parallelism, striping, partial and
    /// third-party transfer.
    GridFtp,
}

/// A byte range for partial file transfer (a GridFTP extension the paper
/// lists among the protocol's Data Grid features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First byte offset.
    pub offset: u64,
    /// Number of bytes.
    pub length: u64,
}

/// GridFTP data-channel protection level (the `PROT` command). GSI secures
/// the control channel always; the data channel defaults to clear for
/// speed, with optional integrity (MAC per block) or privacy (encryption),
/// each costing endpoint CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataChannelProtection {
    /// `PROT C` — clear data channel (the Globus default).
    #[default]
    Clear,
    /// `PROT S` — integrity protection (per-block MAC).
    Safe,
    /// `PROT P` — privacy (encryption + integrity).
    Private,
}

/// A transfer request, built fluently.
///
/// ```
/// use datagrid_gridftp::transfer::{Protocol, TransferRequest};
///
/// let req = TransferRequest::new(1 << 30)
///     .with_protocol(Protocol::GridFtp)
///     .with_parallelism(8);
/// assert_eq!(req.streams(), 8);
/// assert!(req.effective_mode().is_extended());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRequest {
    /// Size of the stored file in bytes.
    pub file_bytes: u64,
    /// Protocol family.
    pub protocol: Protocol,
    /// Requested parallel TCP streams; 0 means the parallelism option is
    /// not used at all (plain stream-mode transfer). Note that
    /// `parallelism = 1` still negotiates MODE E — the paper stresses this
    /// is *not* the same as no parallelism.
    pub parallelism: u32,
    /// Wire mode override; `None` selects stream mode, or MODE E whenever
    /// parallelism is requested (the `globus-url-copy` behaviour).
    pub mode: Option<TransferMode>,
    /// Partial transfer range.
    pub range: Option<ByteRange>,
    /// Data-channel protection level (GridFTP `PROT`).
    pub protection: DataChannelProtection,
}

impl TransferRequest {
    /// A whole-file GridFTP stream-mode request.
    pub fn new(file_bytes: u64) -> Self {
        TransferRequest {
            file_bytes,
            protocol: Protocol::GridFtp,
            parallelism: 0,
            mode: None,
            range: None,
            protection: DataChannelProtection::Clear,
        }
    }

    /// Sets the protocol family.
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Requests parallel data connections (`globus-url-copy -p n`).
    pub fn with_parallelism(mut self, parallelism: u32) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Forces a specific wire mode.
    pub fn with_mode(mut self, mode: TransferMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Requests a partial transfer.
    pub fn with_range(mut self, offset: u64, length: u64) -> Self {
        self.range = Some(ByteRange { offset, length });
        self
    }

    /// Sets the data-channel protection level (`PROT C`/`S`/`P`).
    pub fn with_protection(mut self, protection: DataChannelProtection) -> Self {
        self.protection = protection;
        self
    }

    /// The wire mode that will actually be used.
    pub fn effective_mode(&self) -> TransferMode {
        match self.mode {
            Some(m) => m,
            None if self.parallelism > 0 => TransferMode::extended_default(),
            None => TransferMode::Stream,
        }
    }

    /// Number of data connections that will be opened.
    pub fn streams(&self) -> u32 {
        self.parallelism.max(1)
    }

    /// The payload bytes actually moved (range length for partial
    /// transfers).
    pub fn payload_bytes(&self) -> u64 {
        match self.range {
            Some(r) => r.length,
            None => self.file_bytes,
        }
    }

    /// Checks the request for consistency.
    ///
    /// # Errors
    ///
    /// [`TransferError::InvalidRequest`] for zero-byte files, FTP with
    /// GridFTP-only features, zero-size MODE E blocks or absurd stream
    /// counts; [`TransferError::RangeOutOfBounds`] for a bad partial range.
    pub fn validate(&self) -> Result<(), TransferError> {
        if self.file_bytes == 0 {
            return Err(TransferError::InvalidRequest {
                reason: "zero-byte transfer has nothing to move".into(),
            });
        }
        if self.protocol == Protocol::Ftp {
            if self.parallelism > 0 {
                return Err(TransferError::InvalidRequest {
                    reason: "plain FTP cannot open parallel data connections".into(),
                });
            }
            if self.effective_mode().is_extended() {
                return Err(TransferError::InvalidRequest {
                    reason: "plain FTP only implements stream mode".into(),
                });
            }
            if self.range.is_some() {
                return Err(TransferError::InvalidRequest {
                    reason: "plain FTP cannot transfer partial files".into(),
                });
            }
            if self.protection != DataChannelProtection::Clear {
                return Err(TransferError::InvalidRequest {
                    reason: "plain FTP has no data-channel protection".into(),
                });
            }
        }
        if self.parallelism > 64 {
            return Err(TransferError::InvalidRequest {
                reason: format!("parallelism {} exceeds the supported 64", self.parallelism),
            });
        }
        self.effective_mode().validate()?;
        if let Some(r) = self.range {
            let in_bounds = r
                .offset
                .checked_add(r.length)
                .is_some_and(|end| end <= self.file_bytes);
            if r.length == 0 || !in_bounds {
                return Err(TransferError::RangeOutOfBounds {
                    offset: r.offset,
                    length: r.length,
                    file_size: self.file_bytes,
                });
            }
        }
        Ok(())
    }
}

/// One phase of a completed transfer (control, data, completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Phase name (`"control"`, `"data"`, `"completion"`).
    pub name: &'static str,
    /// Phase start.
    pub start: SimTime,
    /// Phase end.
    pub end: SimTime,
}

impl PhaseRecord {
    /// Phase duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// The result of a completed transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Total bytes on the wire including framing.
    pub wire_bytes: u64,
    /// Data connections used.
    pub streams: u32,
    /// Stripe servers used (1 for a plain transfer).
    pub stripes: u32,
    /// When the session began.
    pub started: SimTime,
    /// When the session fully completed (after the 226 reply).
    pub finished: SimTime,
    /// Phase timeline.
    pub phases: Vec<PhaseRecord>,
}

impl TransferOutcome {
    /// End-to-end duration including control overhead.
    pub fn duration(&self) -> SimDuration {
        self.finished - self.started
    }

    /// Payload throughput over the end-to-end duration (what a user of
    /// `globus-url-copy` experiences and what the paper's figures plot).
    pub fn avg_throughput(&self) -> Bandwidth {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            Bandwidth::ZERO
        } else {
            Bandwidth::from_bps(self.payload_bytes as f64 * 8.0 / secs)
        }
    }

    /// Payload throughput over the data phase only.
    pub fn data_throughput(&self) -> Bandwidth {
        match self.phase("data") {
            Some(p) if !p.duration().is_zero() => {
                Bandwidth::from_bps(self.payload_bytes as f64 * 8.0 / p.duration().as_secs_f64())
            }
            _ => Bandwidth::ZERO,
        }
    }

    /// Looks up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseRecord> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Time spent outside the data phase (protocol overhead).
    pub fn control_overhead(&self) -> SimDuration {
        match self.phase("data") {
            Some(p) => self.duration() - p.duration(),
            None => self.duration(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_defaults() {
        let req = TransferRequest::new(100);
        assert_eq!(req.protocol, Protocol::GridFtp);
        assert_eq!(req.streams(), 1);
        assert_eq!(req.effective_mode(), TransferMode::Stream);
        assert_eq!(req.payload_bytes(), 100);
        assert!(req.validate().is_ok());
    }

    #[test]
    fn parallelism_implies_mode_e() {
        let req = TransferRequest::new(100).with_parallelism(1);
        assert!(req.effective_mode().is_extended());
        assert_eq!(req.streams(), 1);
        let req = TransferRequest::new(100).with_parallelism(16);
        assert_eq!(req.streams(), 16);
    }

    #[test]
    fn explicit_mode_wins() {
        let req = TransferRequest::new(100)
            .with_parallelism(4)
            .with_mode(TransferMode::Extended { block_size: 1024 });
        assert_eq!(
            req.effective_mode(),
            TransferMode::Extended { block_size: 1024 }
        );
    }

    #[test]
    fn ftp_feature_restrictions() {
        assert!(TransferRequest::new(1)
            .with_protocol(Protocol::Ftp)
            .validate()
            .is_ok());
        assert!(TransferRequest::new(1)
            .with_protocol(Protocol::Ftp)
            .with_parallelism(2)
            .validate()
            .is_err());
        assert!(TransferRequest::new(1)
            .with_protocol(Protocol::Ftp)
            .with_mode(TransferMode::extended_default())
            .validate()
            .is_err());
        assert!(TransferRequest::new(10)
            .with_protocol(Protocol::Ftp)
            .with_range(0, 5)
            .validate()
            .is_err());
    }

    #[test]
    fn range_validation() {
        assert!(TransferRequest::new(100)
            .with_range(50, 50)
            .validate()
            .is_ok());
        assert!(TransferRequest::new(100)
            .with_range(60, 50)
            .validate()
            .is_err());
        assert!(TransferRequest::new(100)
            .with_range(0, 0)
            .validate()
            .is_err());
        assert_eq!(
            TransferRequest::new(100).with_range(50, 25).payload_bytes(),
            25
        );
    }

    #[test]
    fn zero_byte_transfer_rejected() {
        // Regression: a zero-byte request used to pass validation and then
        // walk the whole session state machine for nothing.
        let err = TransferRequest::new(0).validate().unwrap_err();
        assert!(matches!(err, TransferError::InvalidRequest { .. }));
        assert!(err.to_string().contains("zero-byte"));
        // A zero-length range was already rejected; make sure it stays so.
        assert!(TransferRequest::new(100)
            .with_range(10, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn absurd_parallelism_rejected() {
        assert!(TransferRequest::new(1)
            .with_parallelism(65)
            .validate()
            .is_err());
    }

    #[test]
    fn outcome_accessors() {
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs_f64(1.0);
        let t9 = SimTime::from_secs_f64(9.0);
        let t10 = SimTime::from_secs_f64(10.0);
        let outcome = TransferOutcome {
            payload_bytes: 10_000_000,
            wire_bytes: 10_001_000,
            streams: 4,
            stripes: 1,
            started: t0,
            finished: t10,
            phases: vec![
                PhaseRecord {
                    name: "control",
                    start: t0,
                    end: t1,
                },
                PhaseRecord {
                    name: "data",
                    start: t1,
                    end: t9,
                },
                PhaseRecord {
                    name: "completion",
                    start: t9,
                    end: t10,
                },
            ],
        };
        assert_eq!(outcome.duration(), SimDuration::from_secs(10));
        assert_eq!(outcome.avg_throughput().as_bps(), 8_000_000.0);
        assert_eq!(outcome.data_throughput().as_bps(), 10_000_000.0);
        assert_eq!(outcome.control_overhead(), SimDuration::from_secs(2));
        assert!(outcome.phase("data").is_some());
        assert!(outcome.phase("nope").is_none());
    }
}

#[cfg(test)]
mod protection_tests {
    use super::*;

    #[test]
    fn default_protection_is_clear() {
        let req = TransferRequest::new(1);
        assert_eq!(req.protection, DataChannelProtection::Clear);
        assert!(req.validate().is_ok());
    }

    #[test]
    fn protection_builder_and_validation() {
        let req = TransferRequest::new(1).with_protection(DataChannelProtection::Private);
        assert_eq!(req.protection, DataChannelProtection::Private);
        assert!(req.validate().is_ok());
        // Plain FTP has no PROT command.
        let req = TransferRequest::new(1)
            .with_protocol(Protocol::Ftp)
            .with_protection(DataChannelProtection::Safe);
        assert!(req.validate().is_err());
    }
}
