//! Control-channel session scripts.
//!
//! An FTP-family session is a sequence of command/response exchanges on
//! the control channel before (and after) the data flows. Each step costs
//! round trips plus server think time; GridFTP sessions additionally embed
//! the GSI handshake. Scripts are plain data so tests can assert protocol
//! structure and ablations can modify it.

use datagrid_simnet::time::SimDuration;

use crate::gsi::GsiConfig;
use crate::mode::TransferMode;
use crate::transfer::{DataChannelProtection, Protocol};

/// One control-channel exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlStep {
    /// Command mnemonic (for timelines and debugging).
    pub name: &'static str,
    /// Round trips consumed (TCP connect = 1.5, simple command = 1, ...).
    pub rtts: f64,
    /// Server-side processing time at compute index 1.0.
    pub think: SimDuration,
}

impl ControlStep {
    /// Creates a step costing whole round trips with default think time.
    pub fn new(name: &'static str, rtts: f64) -> Self {
        ControlStep {
            name,
            rtts,
            think: SimDuration::from_micros(200),
        }
    }

    /// Overrides the server think time.
    pub fn with_think(mut self, think: SimDuration) -> Self {
        self.think = think;
        self
    }
}

/// A full control-channel script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlScript {
    steps: Vec<ControlStep>,
}

impl ControlScript {
    /// The session script for retrieving a file under the given protocol.
    ///
    /// Plain FTP: TCP connect, banner, `USER`/`PASS`, `TYPE I`, `PASV`,
    /// `RETR`. GridFTP adds the GSI handshake (expressed as one aggregated
    /// step whose cost the executor computes from [`GsiConfig`]), the
    /// `MODE E` / `OPTS RETR Parallelism` negotiation when parallel streams
    /// are requested, and `PROT` when data-channel protection is on.
    pub fn retrieve(
        protocol: Protocol,
        mode: TransferMode,
        parallelism: u32,
        protection: DataChannelProtection,
    ) -> Self {
        let mut steps = vec![
            ControlStep::new("connect", 1.5),
            ControlStep::new("banner", 0.5),
        ];
        match protocol {
            Protocol::Ftp => {
                steps.push(ControlStep::new("USER/PASS", 2.0));
            }
            Protocol::GridFtp => {
                // GSI handshake RTTs/crypto are added by the executor; the
                // marker step carries zero cost of its own.
                steps.push(ControlStep::new("AUTH GSSAPI", 1.0));
                steps.push(ControlStep::new("gsi-handshake", 0.0));
                steps.push(ControlStep::new("USER :globus-mapping:", 1.0));
            }
        }
        steps.push(ControlStep::new("TYPE I", 1.0));
        if protection != DataChannelProtection::Clear {
            steps.push(ControlStep::new("PBSZ/PROT", 2.0));
        }
        if mode.is_extended() {
            steps.push(ControlStep::new("MODE E", 1.0));
        }
        if parallelism > 0 {
            steps.push(ControlStep::new("OPTS RETR Parallelism", 1.0));
        }
        steps.push(ControlStep::new("PASV", 1.0));
        // Data connection establishment for the first stream overlaps the
        // RETR round trip; additional streams connect concurrently.
        steps.push(ControlStep::new("RETR", 1.0).with_think(SimDuration::from_millis(1)));
        ControlScript { steps }
    }

    /// The session script when an authenticated control connection is
    /// being *reused* (GridFTP clients cache control channels): no TCP
    /// connect, no banner, no authentication — only per-transfer
    /// negotiation.
    pub fn retrieve_cached(
        mode: TransferMode,
        parallelism: u32,
        protection: DataChannelProtection,
    ) -> Self {
        let mut steps = vec![ControlStep::new("TYPE I", 1.0)];
        if protection != DataChannelProtection::Clear {
            steps.push(ControlStep::new("PBSZ/PROT", 2.0));
        }
        if mode.is_extended() {
            steps.push(ControlStep::new("MODE E", 1.0));
        }
        if parallelism > 0 {
            steps.push(ControlStep::new("OPTS RETR Parallelism", 1.0));
        }
        steps.push(ControlStep::new("PASV", 1.0));
        steps.push(ControlStep::new("RETR", 1.0).with_think(SimDuration::from_millis(1)));
        ControlScript { steps }
    }

    /// The trailing exchange after the data channel drains (`226 Transfer
    /// complete`).
    pub fn completion() -> Self {
        ControlScript {
            steps: vec![ControlStep::new("226-reply", 0.5)],
        }
    }

    /// The steps in order.
    pub fn steps(&self) -> &[ControlStep] {
        &self.steps
    }

    /// Total duration of the script over a path with the given `rtt`,
    /// scaling think time by the server's compute index, and substituting
    /// the GSI handshake cost for the marker step.
    ///
    /// # Panics
    ///
    /// Panics if `server_compute_index` is not strictly positive.
    pub fn duration(
        &self,
        rtt: SimDuration,
        gsi: &GsiConfig,
        client_compute_index: f64,
        server_compute_index: f64,
    ) -> SimDuration {
        assert!(server_compute_index > 0.0, "compute index must be positive");
        let mut total = SimDuration::ZERO;
        for step in &self.steps {
            if step.name == "gsi-handshake" {
                total += gsi.handshake_time(rtt, client_compute_index, server_compute_index);
            } else {
                total += SimDuration::from_secs_f64(rtt.as_secs_f64() * step.rtts)
                    + SimDuration::from_secs_f64(step.think.as_secs_f64() / server_compute_index);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    #[test]
    fn ftp_script_has_no_gsi() {
        let s = ControlScript::retrieve(
            Protocol::Ftp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        );
        assert!(s.steps().iter().all(|st| st.name != "gsi-handshake"));
        assert!(s.steps().iter().any(|st| st.name == "USER/PASS"));
        assert!(s.steps().iter().all(|st| st.name != "MODE E"));
    }

    #[test]
    fn gridftp_script_includes_gsi_and_mode() {
        let s = ControlScript::retrieve(
            Protocol::GridFtp,
            TransferMode::extended_default(),
            4,
            DataChannelProtection::Clear,
        );
        let names: Vec<&str> = s.steps().iter().map(|st| st.name).collect();
        assert!(names.contains(&"gsi-handshake"));
        assert!(names.contains(&"MODE E"));
        assert!(names.contains(&"OPTS RETR Parallelism"));
    }

    #[test]
    fn gridftp_stream_mode_skips_mode_e() {
        let s = ControlScript::retrieve(
            Protocol::GridFtp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        );
        assert!(s.steps().iter().all(|st| st.name != "MODE E"));
        assert!(s
            .steps()
            .iter()
            .all(|st| st.name != "OPTS RETR Parallelism"));
    }

    #[test]
    fn gridftp_costs_more_than_ftp() {
        let gsi = GsiConfig::default();
        let ftp = ControlScript::retrieve(
            Protocol::Ftp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        )
        .duration(ms(10), &gsi, 2.0, 2.0);
        let gftp = ControlScript::retrieve(
            Protocol::GridFtp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        )
        .duration(ms(10), &gsi, 2.0, 2.0);
        assert!(gftp > ftp, "GridFTP {gftp} must exceed FTP {ftp}");
        // The gap is dominated by the handshake.
        let gap = (gftp - ftp).as_millis_f64();
        assert!(gap > 250.0, "gap {gap} ms");
    }

    #[test]
    fn duration_scales_with_rtt() {
        let gsi = GsiConfig::disabled();
        let script = ControlScript::retrieve(
            Protocol::Ftp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        );
        let short = script.duration(ms(1), &gsi, 1.0, 1.0);
        let long = script.duration(ms(100), &gsi, 1.0, 1.0);
        assert!(long > short * 20);
    }

    #[test]
    fn slow_server_thinks_longer() {
        let gsi = GsiConfig::disabled();
        let script = ControlScript::retrieve(
            Protocol::Ftp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        );
        let fast = script.duration(ms(1), &gsi, 1.0, 8.0);
        let slow = script.duration(ms(1), &gsi, 1.0, 0.5);
        assert!(slow > fast);
    }

    #[test]
    fn completion_is_short() {
        let gsi = GsiConfig::disabled();
        let d = ControlScript::completion().duration(ms(10), &gsi, 1.0, 1.0);
        assert!(d < ms(10));
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;

    #[test]
    fn cached_script_skips_connection_and_auth() {
        let s = ControlScript::retrieve_cached(
            TransferMode::extended_default(),
            4,
            DataChannelProtection::Clear,
        );
        let names: Vec<&str> = s.steps().iter().map(|st| st.name).collect();
        assert!(!names.contains(&"connect"));
        assert!(!names.contains(&"banner"));
        assert!(!names.contains(&"gsi-handshake"));
        assert!(names.contains(&"MODE E"));
        assert!(names.contains(&"RETR"));
    }

    #[test]
    fn cached_script_is_much_cheaper() {
        let gsi = GsiConfig::default();
        let full = ControlScript::retrieve(
            Protocol::GridFtp,
            TransferMode::Stream,
            0,
            DataChannelProtection::Clear,
        )
        .duration(SimDuration::from_millis(10), &gsi, 2.0, 2.0);
        let cached =
            ControlScript::retrieve_cached(TransferMode::Stream, 0, DataChannelProtection::Clear)
                .duration(SimDuration::from_millis(10), &gsi, 2.0, 2.0);
        assert!(
            cached.as_secs_f64() < full.as_secs_f64() / 5.0,
            "cached {cached} vs full {full}"
        );
    }

    #[test]
    fn cached_script_still_negotiates_protection() {
        let s =
            ControlScript::retrieve_cached(TransferMode::Stream, 0, DataChannelProtection::Private);
        assert!(s.steps().iter().any(|st| st.name == "PBSZ/PROT"));
    }
}
