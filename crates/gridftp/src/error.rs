//! Transfer error types.

use std::error::Error;
use std::fmt;

/// Errors raised when planning or executing a transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransferError {
    /// The request parameters are inconsistent.
    InvalidRequest {
        /// What is wrong.
        reason: String,
    },
    /// Source and destination are not connected in the topology.
    Unroutable {
        /// Source node name or id rendering.
        src: String,
        /// Destination node name or id rendering.
        dst: String,
    },
    /// The requested byte range exceeds the file.
    RangeOutOfBounds {
        /// Requested start offset.
        offset: u64,
        /// Requested length.
        length: u64,
        /// Actual file size.
        file_size: u64,
    },
    /// Every permitted attempt stalled; the transfer was abandoned with
    /// only a prefix of the payload delivered.
    RetriesExhausted {
        /// Sessions attempted (including the first).
        attempts: u32,
        /// Payload bytes committed by restart markers across all attempts.
        delivered: u64,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::InvalidRequest { reason } => {
                write!(f, "invalid transfer request: {reason}")
            }
            TransferError::Unroutable { src, dst } => {
                write!(f, "no network route from {src} to {dst}")
            }
            TransferError::RangeOutOfBounds {
                offset,
                length,
                file_size,
            } => write!(
                f,
                "partial range {offset}+{length} exceeds file size {file_size}"
            ),
            TransferError::RetriesExhausted {
                attempts,
                delivered,
            } => write!(
                f,
                "transfer abandoned after {attempts} stalled attempts ({delivered} bytes delivered)"
            ),
        }
    }
}

impl Error for TransferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TransferError::Unroutable {
            src: "alpha1".into(),
            dst: "mars".into(),
        };
        assert_eq!(e.to_string(), "no network route from alpha1 to mars");
        let e = TransferError::RangeOutOfBounds {
            offset: 10,
            length: 20,
            file_size: 15,
        };
        assert!(e.to_string().contains("10+20"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<TransferError>();
    }
}
