//! Event-driven transfer execution.
//!
//! A [`TransferSession`] walks a transfer through its protocol phases on a
//! [`NetSim`]: the control-channel script (with GSI for GridFTP), the TCP
//! slow-start ramp, the data phase (one flow per stream, per stripe
//! server), and the trailing completion reply. Sessions are state machines
//! fed with simulation events, so many sessions — and unrelated activity
//! like monitoring probes — can share one simulator. Use
//! [`run_transfer`] / [`run_striped_transfer`] when the transfer is the
//! only foreground activity.

use std::collections::HashMap;

use datagrid_simnet::engine::{EventKind, FlowId, FlowSpec, NetSim, SimEvent};
use datagrid_simnet::rng::SimRng;
use datagrid_simnet::tcp::TcpParams;
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_simnet::topology::{Bandwidth, NodeId};

use crate::error::TransferError;
use crate::gsi::GsiConfig;
use crate::mode::TransferMode;
use crate::retry::RetryPolicy;
use crate::session::ControlScript;
use crate::transfer::{PhaseRecord, TransferOutcome, TransferRequest};

/// Endpoint resource limits for one side of a transfer.
///
/// The Data Grid layer derives these from the simulated host (disk
/// availability from the I/O load process, CPU headroom from the CPU load
/// process); tests and benches can use [`TransferEndpoint::unconstrained`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEndpoint {
    /// The topology node.
    pub node: NodeId,
    /// Read rate currently available from this endpoint's disk.
    pub disk_read: Bandwidth,
    /// Write rate currently available to this endpoint's disk.
    pub disk_write: Bandwidth,
    /// Fraction of one core free for protocol processing, in `(0, 1]`.
    pub cpu_headroom: f64,
    /// Relative compute power (cores × GHz).
    pub compute_index: f64,
}

impl TransferEndpoint {
    /// Creates an endpoint with explicit limits.
    ///
    /// # Panics
    ///
    /// Panics if `compute_index` is not strictly positive.
    pub fn new(
        node: NodeId,
        disk_read: Bandwidth,
        disk_write: Bandwidth,
        cpu_headroom: f64,
        compute_index: f64,
    ) -> Self {
        assert!(compute_index > 0.0, "compute index must be positive");
        TransferEndpoint {
            node,
            disk_read,
            disk_write,
            // A fully loaded host still trickles; clamp away from zero so
            // transfers always terminate.
            cpu_headroom: cpu_headroom.clamp(0.02, 1.0),
            compute_index,
        }
    }

    /// An endpoint whose disks and CPU never constrain the network.
    pub fn unconstrained(node: NodeId) -> Self {
        TransferEndpoint::new(
            node,
            Bandwidth::from_gbps(100.0),
            Bandwidth::from_gbps(100.0),
            1.0,
            16.0,
        )
    }

    /// The protocol-processing rate this endpoint can sustain.
    fn cpu_rate(&self, costs: &ProtocolCosts) -> Bandwidth {
        Bandwidth::from_bps(
            costs.proc_rate_per_index.as_bps() * self.compute_index * self.cpu_headroom,
        )
    }
}

/// Protocol CPU cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolCosts {
    /// GSI handshake parameters.
    pub gsi: GsiConfig,
    /// Protocol processing throughput per compute-index unit at full
    /// headroom (copy + checksum + syscalls). A 2 GHz single core moves
    /// roughly 150 MB/s through a 2005 GridFTP server.
    pub proc_rate_per_index: Bandwidth,
    /// Extra relative CPU cost of MODE E block handling.
    pub mode_e_cpu_penalty: f64,
    /// Extra relative CPU cost of `PROT S` (per-block MAC; SHA-1 class
    /// hashing is cheap next to the copy path).
    pub integrity_cpu_penalty: f64,
    /// Extra relative CPU cost of `PROT P` (encryption + MAC). 2005-era
    /// GSI privacy means software 3DES at roughly 8 MB/s per GHz — an
    /// order of magnitude below the plain copy path.
    pub privacy_cpu_penalty: f64,
}

impl Default for ProtocolCosts {
    fn default() -> Self {
        ProtocolCosts {
            gsi: GsiConfig::default(),
            proc_rate_per_index: Bandwidth::from_bps(75.0 * 8e6), // 75 MB/s per index
            mode_e_cpu_penalty: 0.05,
            integrity_cpu_penalty: 1.0,
            privacy_cpu_penalty: 9.0,
        }
    }
}

/// Progress of a [`TransferSession`].
#[derive(Debug, Clone, PartialEq)]
pub enum SessionStatus {
    /// More events are needed.
    InProgress,
    /// The transfer finished; here is the outcome.
    Complete(TransferOutcome),
    /// The transfer stalled past its stall timeout (see
    /// [`TransferSession::with_stall_timeout`]) and tore itself down.
    Failed(TransferFailure),
}

/// Why and where a session gave up (see [`SessionStatus::Failed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferFailure {
    /// Payload bytes of this attempt already committed by restart markers
    /// when the session was torn down.
    pub delivered_payload: u64,
    /// `true` when the transfer ran in MODE E, whose per-block restart
    /// markers let a new session resume from `delivered_payload`. Stream
    /// mode has no markers: a retry restarts from byte zero.
    pub resumable: bool,
    /// When the stall was declared.
    pub at: SimTime,
}

impl TransferFailure {
    /// The byte offset a retry should resume from: the committed payload
    /// for a MODE E transfer, zero for stream mode.
    pub fn restart_offset(&self) -> u64 {
        if self.resumable {
            self.delivered_payload
        } else {
            0
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Control,
    RampUp,
    Data,
    Completion,
    Done,
}

/// An in-flight transfer: an event-driven state machine over a [`NetSim`].
///
/// Drive it by calling [`TransferSession::start`] once and then feeding it
/// every simulation event it [owns](TransferSession::owns) until it reports
/// [`SessionStatus::Complete`].
#[derive(Debug, Clone)]
pub struct TransferSession {
    req: TransferRequest,
    sources: Vec<TransferEndpoint>,
    dst: TransferEndpoint,
    tcp: TcpParams,
    costs: ProtocolCosts,
    control_node: NodeId,
    cached_control: bool,
    token_base: u64,
    /// When set, a watchdog timer fires every interval during the data
    /// phase; if every data flow has stalled (zero rate) the session fails.
    stall_timeout: Option<SimDuration>,
    state: State,
    started: SimTime,
    phases: Vec<PhaseRecord>,
    /// Active data flows and what each is carrying.
    active_flows: HashMap<FlowId, StreamFlow>,
    /// Payload bytes fully delivered by already-completed streams.
    completed_payload: u64,
    wire_bytes: u64,
}

/// Bookkeeping for one in-flight data stream.
#[derive(Debug, Clone, Copy)]
struct StreamFlow {
    /// Index of the stripe source feeding this stream.
    source: usize,
    /// Payload bytes assigned to this stream.
    payload: u64,
    /// Wire bytes (payload + framing) assigned to this stream.
    wire: u64,
}

impl TransferSession {
    const TOK_CONTROL: u64 = 0;
    const TOK_RAMP: u64 = 1;
    const TOK_COMPLETION: u64 = 2;
    const TOK_WATCHDOG: u64 = 3;
    /// Tokens consumed per session; callers allocating token ranges for
    /// several sessions should space bases at least this far apart.
    pub const TOKENS_PER_SESSION: u64 = 4;

    /// Plans a client-initiated retrieval from `src` to `dst` (the client
    /// runs on the destination, as in `globus-url-copy` pulling a file).
    ///
    /// `token_base` is the first of [`Self::TOKENS_PER_SESSION`] timer
    /// tokens the session may use on the simulator.
    ///
    /// # Errors
    ///
    /// Any [`TransferError`] from [`TransferRequest::validate`].
    pub fn new(
        req: TransferRequest,
        src: TransferEndpoint,
        dst: TransferEndpoint,
        tcp: TcpParams,
        token_base: u64,
    ) -> Result<Self, TransferError> {
        Self::striped(req, vec![src], dst, tcp, token_base)
    }

    /// Plans a striped retrieval from several stripe servers, each opening
    /// the request's stream count (the GridFTP striped-transfer extension
    /// the paper names as future work).
    ///
    /// # Errors
    ///
    /// [`TransferError::InvalidRequest`] when `sources` is empty or plain
    /// FTP is asked to stripe, plus anything from
    /// [`TransferRequest::validate`].
    pub fn striped(
        req: TransferRequest,
        sources: Vec<TransferEndpoint>,
        dst: TransferEndpoint,
        tcp: TcpParams,
        token_base: u64,
    ) -> Result<Self, TransferError> {
        req.validate()?;
        if sources.is_empty() {
            return Err(TransferError::InvalidRequest {
                reason: "a transfer needs at least one source".into(),
            });
        }
        if sources.len() > 1 && req.protocol == crate::transfer::Protocol::Ftp {
            return Err(TransferError::InvalidRequest {
                reason: "plain FTP cannot use striped servers".into(),
            });
        }
        let control_node = dst.node;
        Ok(TransferSession {
            req,
            sources,
            dst,
            tcp,
            costs: ProtocolCosts::default(),
            control_node,
            cached_control: false,
            token_base,
            stall_timeout: None,
            state: State::Idle,
            started: SimTime::ZERO,
            phases: Vec::new(),
            active_flows: HashMap::new(),
            completed_payload: 0,
            wire_bytes: 0,
        })
    }

    /// Makes this a third-party transfer orchestrated from `client`: the
    /// control channels run from `client` to both endpoints while the data
    /// flows directly source → destination (a GridFTP feature the paper
    /// lists; the client only pays control latency).
    pub fn with_control_from(mut self, client: NodeId) -> Self {
        self.control_node = client;
        self
    }

    /// Marks the control connection as already open and authenticated
    /// (GridFTP clients cache control channels between transfers to the
    /// same server): the session skips TCP connect, banner and the GSI
    /// handshake, paying only per-transfer negotiation.
    pub fn with_cached_control(mut self, cached: bool) -> Self {
        self.cached_control = cached;
        self
    }

    /// Overrides the protocol cost constants.
    pub fn with_costs(mut self, costs: ProtocolCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Arms a stall watchdog: during the data phase a timer fires every
    /// `timeout`; if at that instant *every* data flow is rate-zero (link
    /// down, host blacked out, connection reset) the session aborts its
    /// flows and reports [`SessionStatus::Failed`] carrying the restart
    /// marker. Detection latency is therefore at most one `timeout`.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn with_stall_timeout(mut self, timeout: SimDuration) -> Self {
        assert!(!timeout.is_zero(), "stall timeout must be positive");
        self.stall_timeout = Some(timeout);
        self
    }

    /// The request being executed.
    pub fn request(&self) -> &TransferRequest {
        &self.req
    }

    /// Begins the session: schedules the control-phase timer.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if any endpoint pair is unroutable.
    pub fn start(&mut self, sim: &mut NetSim) {
        assert_eq!(self.state, State::Idle, "session already started");
        self.started = sim.now();
        // Control channel runs to the farthest stripe server.
        let control_rtt = self
            .sources
            .iter()
            .map(|s| sim.rtt(self.control_node, s.node))
            .max()
            .expect("at least one source");
        let script = if self.cached_control {
            ControlScript::retrieve_cached(
                self.req.effective_mode(),
                self.req.parallelism,
                self.req.protection,
            )
        } else {
            ControlScript::retrieve(
                self.req.protocol,
                self.req.effective_mode(),
                self.req.parallelism,
                self.req.protection,
            )
        };
        let server_index = self
            .sources
            .iter()
            .map(|s| s.compute_index)
            .fold(f64::INFINITY, f64::min);
        let control = script.duration(
            control_rtt,
            &self.costs.gsi,
            self.dst.compute_index,
            server_index,
        );
        self.state = State::Control;
        sim.schedule_timer_after(control, self.token_base + Self::TOK_CONTROL);
    }

    /// Ids of the data flows currently in flight, in unspecified order
    /// (drivers that index them must not let the order become observable).
    pub fn active_flow_ids(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.active_flows.keys().copied()
    }

    /// `true` if this event belongs to this session.
    pub fn owns(&self, event: &SimEvent) -> bool {
        match &event.kind {
            EventKind::TimerFired(token) => {
                (self.token_base..self.token_base + Self::TOKENS_PER_SESSION).contains(token)
            }
            EventKind::FlowCompleted(done) => self.active_flows.contains_key(&done.id),
            // Fault transitions are broadcast; the driver reacts, not the
            // session (its watchdog notices the consequences).
            EventKind::FaultChanged(_) => false,
        }
    }

    /// Feeds one owned event; returns the session status.
    ///
    /// # Panics
    ///
    /// Panics when fed an event the session does not own (use
    /// [`TransferSession::owns`] to route events) or when called before
    /// [`TransferSession::start`].
    pub fn handle(&mut self, sim: &mut NetSim, event: &SimEvent) -> SessionStatus {
        assert!(self.owns(event), "event does not belong to this session");
        // The watchdog token is handled out of band: it may legitimately
        // fire in any state (it re-arms during data and goes stale after).
        if event.kind == EventKind::TimerFired(self.token_base + Self::TOK_WATCHDOG) {
            return self.handle_watchdog(sim, event.time);
        }
        match (&self.state, &event.kind) {
            (State::Control, EventKind::TimerFired(_)) => {
                self.phases.push(PhaseRecord {
                    name: "control",
                    start: self.started,
                    end: event.time,
                });
                // TCP slow start: all streams ramp concurrently, so the
                // transfer pays one penalty on the slowest (max-RTT) path.
                let ramp = self
                    .sources
                    .iter()
                    .map(|s| {
                        let rtt = sim.rtt(s.node, self.dst.node);
                        self.tcp.startup_penalty_on(rtt)
                    })
                    .max()
                    .expect("at least one source");
                self.state = State::RampUp;
                sim.schedule_timer_after(ramp, self.token_base + Self::TOK_RAMP);
                SessionStatus::InProgress
            }
            (State::RampUp, EventKind::TimerFired(_)) => {
                self.start_data_flows(sim);
                self.state = State::Data;
                if let Some(timeout) = self.stall_timeout {
                    sim.schedule_timer_after(timeout, self.token_base + Self::TOK_WATCHDOG);
                }
                // Mark the data phase as starting at control end (the ramp
                // is part of moving data).
                let data_start = self.phases.last().expect("control recorded").end;
                self.phases.push(PhaseRecord {
                    name: "data",
                    start: data_start,
                    end: data_start, // patched on completion
                });
                // Zero-byte payloads may have produced flows that complete
                // instantly; if nothing is active the data phase is done.
                if self.active_flows.is_empty() {
                    self.finish_data(sim, event.time);
                }
                SessionStatus::InProgress
            }
            (State::Data, EventKind::FlowCompleted(done)) => {
                if let Some(stream) = self.active_flows.remove(&done.id) {
                    self.completed_payload += stream.payload;
                }
                if self.active_flows.is_empty() {
                    self.finish_data(sim, event.time);
                }
                SessionStatus::InProgress
            }
            (State::Completion, EventKind::TimerFired(_)) => {
                let data_end = self.phases.last().expect("data recorded").end;
                self.phases.push(PhaseRecord {
                    name: "completion",
                    start: data_end,
                    end: event.time,
                });
                self.state = State::Done;
                SessionStatus::Complete(TransferOutcome {
                    payload_bytes: self.req.payload_bytes(),
                    wire_bytes: self.wire_bytes,
                    streams: self.req.streams(),
                    stripes: u32::try_from(self.sources.len()).expect("few stripes"),
                    started: self.started,
                    finished: event.time,
                    phases: self.phases.clone(),
                })
            }
            (state, kind) => panic!("unexpected event {kind:?} in state {state:?}"),
        }
    }

    /// One watchdog tick. In the data phase: declare failure if every flow
    /// has stalled, otherwise re-arm. In any other state the tick is stale
    /// (the phase it guarded already ended) and is ignored.
    fn handle_watchdog(&mut self, sim: &mut NetSim, now: SimTime) -> SessionStatus {
        if self.state != State::Data {
            return SessionStatus::InProgress;
        }
        let stalled = !self.active_flows.is_empty()
            && self
                .active_flows
                .keys()
                .all(|&id| sim.flow_rate(id).is_none_or(|r| r.as_bps() <= 1e-6));
        if stalled {
            let resumable = self.req.effective_mode().is_extended();
            let delivered_payload = self.abort(sim);
            return SessionStatus::Failed(TransferFailure {
                delivered_payload,
                resumable,
                at: now,
            });
        }
        if let Some(timeout) = self.stall_timeout {
            sim.schedule_timer_after(timeout, self.token_base + Self::TOK_WATCHDOG);
        }
        SessionStatus::InProgress
    }

    fn finish_data(&mut self, sim: &mut NetSim, now: SimTime) {
        let data = self.phases.last_mut().expect("data phase recorded");
        debug_assert_eq!(data.name, "data");
        data.end = now;
        self.state = State::Completion;
        let rtt = sim.rtt(self.control_node, self.sources[0].node);
        let reply = ControlScript::completion().duration(
            rtt,
            &self.costs.gsi,
            self.dst.compute_index,
            self.sources[0].compute_index,
        );
        sim.schedule_timer_after(reply, self.token_base + Self::TOK_COMPLETION);
    }

    /// The per-stream rate ceiling for each stripe source under current
    /// endpoint conditions: the TCP window/loss bound and the fair shares
    /// of the source disk/CPU and destination disk/CPU.
    fn per_source_stream_caps(&self, sim: &NetSim) -> Vec<Bandwidth> {
        let mode = self.req.effective_mode();
        let streams = self.req.streams();
        let stripes = self.sources.len() as u32;
        let total_streams = u64::from(streams) * u64::from(stripes);
        let mut cpu_penalty = if mode.is_extended() {
            self.costs.mode_e_cpu_penalty
        } else {
            0.0
        };
        cpu_penalty += match self.req.protection {
            crate::transfer::DataChannelProtection::Clear => 0.0,
            crate::transfer::DataChannelProtection::Safe => self.costs.integrity_cpu_penalty,
            crate::transfer::DataChannelProtection::Private => self.costs.privacy_cpu_penalty,
        };
        let mode_cpu_scale = 1.0 / (1.0 + cpu_penalty);
        let dst_aggregate = self
            .dst
            .disk_write
            .as_bps()
            .min(self.dst.cpu_rate(&self.costs).as_bps() * mode_cpu_scale);
        let dst_share = dst_aggregate / total_streams as f64;
        self.sources
            .iter()
            .map(|source| {
                let rtt = sim.rtt(source.node, self.dst.node);
                let tcp_cap = self.tcp.steady_rate(rtt).as_bps();
                let src_aggregate = source
                    .disk_read
                    .as_bps()
                    .min(source.cpu_rate(&self.costs).as_bps() * mode_cpu_scale);
                let src_share = src_aggregate / f64::from(streams);
                Bandwidth::from_bps(tcp_cap.min(src_share).min(dst_share))
            })
            .collect()
    }

    /// Updates the session's view of endpoint resources (disk availability,
    /// CPU headroom) and re-caps active data flows accordingly. Drivers
    /// call this when monitoring observes that host load changed, so long
    /// transfers genuinely track the dynamic environment.
    ///
    /// # Panics
    ///
    /// Panics if `sources` does not match the session's stripe count.
    pub fn refresh_endpoints(
        &mut self,
        sim: &mut NetSim,
        sources: &[TransferEndpoint],
        dst: TransferEndpoint,
    ) {
        assert_eq!(
            sources.len(),
            self.sources.len(),
            "stripe count cannot change mid-transfer"
        );
        self.sources = sources.to_vec();
        self.dst = dst;
        if self.state != State::Data || self.active_flows.is_empty() {
            return;
        }
        let caps = self.per_source_stream_caps(sim);
        for (&flow, stream) in &self.active_flows {
            sim.set_flow_cap(flow, caps[stream.source]);
        }
    }

    /// Aborts the session (client failure, operator cancel), tearing down
    /// its data flows. Returns the payload bytes already safely delivered
    /// — the offset a GridFTP *restart marker* would report, from which a
    /// new partial-transfer request can resume
    /// (see [`TransferRequest::with_range`]).
    ///
    /// Fully delivered streams count entirely; interrupted streams count
    /// their delivered fraction rounded down (conservative, as restart
    /// markers only cover acknowledged blocks).
    pub fn abort(&mut self, sim: &mut NetSim) -> u64 {
        let mut delivered = self.completed_payload;
        for (flow, stream) in self.active_flows.drain() {
            if let Some(progress) = sim.abort_flow(flow) {
                if stream.wire > 0 {
                    let fraction = (progress.bytes_done / stream.wire as f64).clamp(0.0, 1.0);
                    delivered += (stream.payload as f64 * fraction).floor() as u64;
                }
            }
        }
        self.state = State::Done;
        delivered.min(self.req.payload_bytes())
    }

    fn start_data_flows(&mut self, sim: &mut NetSim) {
        let mode = self.req.effective_mode();
        let streams = self.req.streams();
        let total_payload = self.req.payload_bytes();
        let stripes = self.sources.len() as u32;
        let stripe_payloads = TransferMode::split_across_streams(total_payload, stripes);
        let caps = self.per_source_stream_caps(sim);
        let sources = self.sources.clone();

        for (src_idx, ((source, stripe_payload), cap)) in
            sources.iter().zip(stripe_payloads).zip(caps).enumerate()
        {
            for stream_payload in TransferMode::split_across_streams(stripe_payload, streams) {
                let wire = mode.wire_bytes(stream_payload);
                self.wire_bytes += wire;
                let id =
                    sim.start_flow(FlowSpec::new(source.node, self.dst.node, wire).with_cap(cap));
                self.active_flows.insert(
                    id,
                    StreamFlow {
                        source: src_idx,
                        payload: stream_payload,
                        wire,
                    },
                );
            }
        }
    }
}

/// Runs a transfer to completion on a simulator with no other foreground
/// activity, returning the outcome.
///
/// # Errors
///
/// Any [`TransferError`] from request validation.
///
/// # Panics
///
/// Panics if the endpoints are unroutable or the simulator delivers events
/// the session does not own (other foreground activity).
pub fn run_transfer(
    sim: &mut NetSim,
    req: &TransferRequest,
    src: &TransferEndpoint,
    dst: &TransferEndpoint,
    tcp: &TcpParams,
) -> Result<TransferOutcome, TransferError> {
    run_striped_transfer(sim, req, std::slice::from_ref(src), dst, tcp)
}

/// Runs a striped transfer to completion (see [`run_transfer`]).
///
/// # Errors
///
/// Any [`TransferError`] from request or stripe validation.
///
/// # Panics
///
/// Panics if the endpoints are unroutable or the simulator delivers events
/// the session does not own (other foreground activity).
pub fn run_striped_transfer(
    sim: &mut NetSim,
    req: &TransferRequest,
    sources: &[TransferEndpoint],
    dst: &TransferEndpoint,
    tcp: &TcpParams,
) -> Result<TransferOutcome, TransferError> {
    // A token base far above anything the Data Grid layer allocates.
    const LONE_SESSION_TOKENS: u64 = 1 << 40;
    let mut session =
        TransferSession::striped(*req, sources.to_vec(), *dst, *tcp, LONE_SESSION_TOKENS)?;
    session.start(sim);
    loop {
        let event = sim
            .next_event()
            .expect("transfer session always has pending work");
        if let SessionStatus::Complete(outcome) = session.handle(sim, &event) {
            return Ok(outcome);
        }
    }
}

/// The result of a transfer that may have needed retries (see
/// [`run_transfer_with_recovery`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredTransfer {
    /// Outcome of the final, successful attempt.
    pub outcome: TransferOutcome,
    /// Sessions started, including the first.
    pub attempts: u32,
    /// The restart offset each retry resumed from (empty when the first
    /// attempt succeeded; zeros when stream mode forced full restarts).
    pub resumed_from: Vec<u64>,
    /// Payload bytes delivered across every attempt, counting bytes a
    /// stream-mode restart later threw away — equals the request payload
    /// exactly when MODE E restart markers avoided all re-transmission.
    pub payload_moved: u64,
    /// Total time spent waiting in backoff pauses.
    pub backoff_total: SimDuration,
}

/// Runs a transfer with stall detection and seeded exponential-backoff
/// retries on a simulator with no other foreground activity. Each retry of
/// a MODE E transfer resumes from the last restart marker; stream-mode
/// retries restart from byte zero.
///
/// # Errors
///
/// Any [`TransferError`] from request validation, or
/// [`TransferError::RetriesExhausted`] when every permitted attempt
/// stalled.
///
/// # Panics
///
/// Panics if the endpoints are unroutable.
#[allow(clippy::too_many_arguments)] // mirrors run_transfer plus the recovery knobs
pub fn run_transfer_with_recovery(
    sim: &mut NetSim,
    req: &TransferRequest,
    src: &TransferEndpoint,
    dst: &TransferEndpoint,
    tcp: &TcpParams,
    policy: &RetryPolicy,
    stall_timeout: SimDuration,
    rng: &mut SimRng,
) -> Result<RecoveredTransfer, TransferError> {
    // Token bases disjoint from both run_transfer and the Data Grid layer;
    // each attempt gets its own range so stale watchdogs never collide.
    const RECOVERY_SESSION_TOKENS: u64 = 1 << 41;
    const RECOVERY_WAIT_TOKENS: u64 = 1 << 42;
    req.validate()?;
    let base_offset = req.range.map_or(0, |r| r.offset);
    let total = req.payload_bytes();
    let mut committed = 0u64;
    let mut attempts = 0u32;
    let mut resumed_from = Vec::new();
    let mut payload_moved = 0u64;
    let mut backoff_total = SimDuration::ZERO;
    loop {
        let attempt_req = if committed == 0 {
            *req
        } else {
            req.with_range(base_offset + committed, total - committed)
        };
        let token_base =
            RECOVERY_SESSION_TOKENS + u64::from(attempts) * TransferSession::TOKENS_PER_SESSION;
        let mut session = TransferSession::new(attempt_req, *src, *dst, *tcp, token_base)?
            .with_stall_timeout(stall_timeout);
        attempts += 1;
        session.start(sim);
        let failure = loop {
            let event = sim
                .next_event()
                .expect("recovery session always has pending work");
            if !session.owns(&event) {
                continue; // stale watchdogs of earlier attempts, fault notices
            }
            match session.handle(sim, &event) {
                SessionStatus::Complete(outcome) => {
                    payload_moved += outcome.payload_bytes;
                    return Ok(RecoveredTransfer {
                        outcome,
                        attempts,
                        resumed_from,
                        payload_moved,
                        backoff_total,
                    });
                }
                SessionStatus::Failed(failure) => break failure,
                SessionStatus::InProgress => {}
            }
        };
        committed += failure.restart_offset();
        payload_moved += failure.delivered_payload;
        if policy.exhausted(attempts) {
            return Err(TransferError::RetriesExhausted {
                attempts,
                delivered: committed,
            });
        }
        let pause = policy.backoff(attempts - 1, rng);
        backoff_total += pause;
        let wait_token = RECOVERY_WAIT_TOKENS + u64::from(attempts);
        sim.schedule_timer_after(pause, wait_token);
        loop {
            let event = sim.next_event().expect("backoff timer is pending");
            if event.kind == EventKind::TimerFired(wait_token) {
                break;
            }
        }
        resumed_from.push(committed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::Protocol;
    use datagrid_simnet::time::SimDuration;
    use datagrid_simnet::topology::{LinkSpec, Topology};

    const MB: u64 = 1 << 20;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    fn ms(m: u64) -> SimDuration {
        SimDuration::from_millis(m)
    }

    /// src --1Gbps LAN-- router --bottleneck WAN-- dst
    fn wan(bottleneck_mbps: f64, wan_ms: u64) -> (NetSim, NodeId, NodeId) {
        let mut t = Topology::new();
        let src = t.add_node("src");
        let router = t.add_node("router");
        let dst = t.add_node("dst");
        t.add_duplex_link(src, router, LinkSpec::new(Bandwidth::from_gbps(1.0), ms(1)));
        t.add_duplex_link(
            router,
            dst,
            LinkSpec::new(mbps(bottleneck_mbps), ms(wan_ms)),
        );
        let sim = NetSim::new(t, 5);
        (sim, src, dst)
    }

    fn lossy_tcp() -> TcpParams {
        TcpParams::new(256 * 1024, 0.003)
    }

    #[test]
    fn gridftp_transfer_completes_with_phases() {
        let (mut sim, src, dst) = wan(100.0, 5);
        let req = TransferRequest::new(64 * MB);
        let outcome = run_transfer(
            &mut sim,
            &req,
            &TransferEndpoint::unconstrained(src),
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap();
        assert_eq!(outcome.payload_bytes, 64 * MB);
        assert_eq!(outcome.wire_bytes, 64 * MB); // stream mode
        assert_eq!(outcome.streams, 1);
        assert!(outcome.phase("control").is_some());
        assert!(outcome.phase("data").is_some());
        assert!(outcome.phase("completion").is_some());
        // Data phase dominated by 64 MiB at 100 Mbps ≈ 5.37 s.
        let data = outcome.phase("data").unwrap().duration().as_secs_f64();
        assert!((data - 5.37).abs() < 0.5, "data phase {data}");
    }

    #[test]
    fn ftp_beats_gridftp_by_the_handshake_only() {
        let size = 256 * MB;
        let run = |protocol| {
            let (mut sim, src, dst) = wan(100.0, 5);
            let req = TransferRequest::new(size).with_protocol(protocol);
            run_transfer(
                &mut sim,
                &req,
                &TransferEndpoint::unconstrained(src),
                &TransferEndpoint::unconstrained(dst),
                &TcpParams::default(),
            )
            .unwrap()
        };
        let ftp = run(Protocol::Ftp);
        let gftp = run(Protocol::GridFtp);
        let gap = gftp.duration().as_secs_f64() - ftp.duration().as_secs_f64();
        assert!(gap > 0.0, "GridFTP pays authentication");
        assert!(gap < 1.0, "but only a constant: gap {gap}");
        // Same steady data rate.
        let r_ftp = ftp.data_throughput().as_mbps();
        let r_gftp = gftp.data_throughput().as_mbps();
        assert!((r_ftp - r_gftp).abs() / r_ftp < 0.02);
    }

    #[test]
    fn parallel_streams_beat_single_on_lossy_wan() {
        // The paper's Fig. 4 mechanism: on a lossy 30 Mbps WAN path a
        // single stream is Mathis-limited; parallel streams aggregate.
        let size = 256 * MB;
        let run = |parallelism| {
            let (mut sim, src, dst) = wan(30.0, 8);
            let req = TransferRequest::new(size).with_parallelism(parallelism);
            run_transfer(
                &mut sim,
                &req,
                &TransferEndpoint::unconstrained(src),
                &TransferEndpoint::unconstrained(dst),
                &lossy_tcp(),
            )
            .unwrap()
        };
        let t1 = run(1).duration().as_secs_f64();
        let t4 = run(4).duration().as_secs_f64();
        let t16 = run(16).duration().as_secs_f64();
        assert!(t4 < t1 * 0.55, "4 streams {t4} vs 1 stream {t1}");
        // Diminishing returns: once the link saturates, 16 streams are no
        // better than 4 (and pay marginally more framing).
        assert!(t16 <= t4 * 1.01, "16 streams {t16} vs 4 {t4}");
        assert!(t16 > t4 * 0.5, "saturation: {t16} vs {t4}");
    }

    #[test]
    fn mode_e_single_stream_differs_from_stream_mode() {
        let size = 64 * MB;
        let run = |req: TransferRequest| {
            let (mut sim, src, dst) = wan(100.0, 5);
            run_transfer(
                &mut sim,
                &req,
                &TransferEndpoint::unconstrained(src),
                &TransferEndpoint::unconstrained(dst),
                &TcpParams::default(),
            )
            .unwrap()
        };
        let stream = run(TransferRequest::new(size));
        let mode_e = run(TransferRequest::new(size).with_parallelism(1));
        // MODE E with one stream still frames blocks: more wire bytes and
        // an extra negotiation round trip.
        assert!(mode_e.wire_bytes > stream.wire_bytes);
        assert!(mode_e.duration() > stream.duration());
    }

    #[test]
    fn busy_source_disk_limits_throughput() {
        let (mut sim, src, dst) = wan(1000.0, 1);
        let req = TransferRequest::new(64 * MB);
        let slow_disk = TransferEndpoint::new(
            src,
            mbps(80.0), // disk can only read 10 MB/s
            mbps(80.0),
            1.0,
            4.0,
        );
        let outcome = run_transfer(
            &mut sim,
            &req,
            &slow_disk,
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap();
        let rate = outcome.data_throughput().as_mbps();
        assert!(rate < 81.0, "disk-limited rate {rate}");
        assert!(rate > 60.0, "rate {rate} unexpectedly slow");
    }

    #[test]
    fn busy_cpu_limits_throughput() {
        let (mut sim, src, dst) = wan(1000.0, 1);
        let req = TransferRequest::new(64 * MB);
        // compute index 1, headroom 0.1 -> 75 MB/s * 0.1 = 7.5 MB/s = 60 Mbps.
        let busy = TransferEndpoint::new(src, mbps(8000.0), mbps(8000.0), 0.1, 1.0);
        let outcome = run_transfer(
            &mut sim,
            &req,
            &busy,
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap();
        let rate = outcome.data_throughput().as_mbps();
        assert!((rate - 60.0).abs() < 12.0, "cpu-limited rate {rate}");
    }

    #[test]
    fn partial_transfer_moves_only_the_range() {
        let (mut sim, src, dst) = wan(100.0, 5);
        let req = TransferRequest::new(64 * MB).with_range(MB, 4 * MB);
        let outcome = run_transfer(
            &mut sim,
            &req,
            &TransferEndpoint::unconstrained(src),
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap();
        assert_eq!(outcome.payload_bytes, 4 * MB);
        assert!(outcome.duration().as_secs_f64() < 2.0);
    }

    #[test]
    fn striped_transfer_uses_all_sources() {
        // Two stripe servers behind separate 50 Mbps uplinks into a fast
        // WAN: striping doubles aggregate bandwidth.
        let mut t = Topology::new();
        let s1 = t.add_node("stripe1");
        let s2 = t.add_node("stripe2");
        let router = t.add_node("router");
        let dst = t.add_node("dst");
        t.add_duplex_link(s1, router, LinkSpec::new(mbps(50.0), ms(1)));
        t.add_duplex_link(s2, router, LinkSpec::new(mbps(50.0), ms(1)));
        t.add_duplex_link(router, dst, LinkSpec::new(Bandwidth::from_gbps(1.0), ms(4)));
        let mut sim = NetSim::new(t, 9);
        let req = TransferRequest::new(128 * MB).with_parallelism(2);
        let outcome = run_striped_transfer(
            &mut sim,
            &req,
            &[
                TransferEndpoint::unconstrained(s1),
                TransferEndpoint::unconstrained(s2),
            ],
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap();
        assert_eq!(outcome.stripes, 2);
        let rate = outcome.data_throughput().as_mbps();
        assert!(rate > 70.0, "striped rate {rate} should approach 100 Mbps");

        // Single-source baseline from s1 only.
        let mut t = Topology::new();
        let s1 = t.add_node("stripe1");
        let router = t.add_node("router");
        let dst = t.add_node("dst");
        t.add_duplex_link(s1, router, LinkSpec::new(mbps(50.0), ms(1)));
        t.add_duplex_link(router, dst, LinkSpec::new(Bandwidth::from_gbps(1.0), ms(4)));
        let mut sim = NetSim::new(t, 9);
        let single = run_transfer(
            &mut sim,
            &req,
            &TransferEndpoint::unconstrained(s1),
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap();
        assert!(
            outcome.duration() < single.duration(),
            "striping should beat one stripe: {} vs {}",
            outcome.duration(),
            single.duration()
        );
    }

    #[test]
    fn third_party_control_pays_client_latency() {
        // Client far from both endpoints; data path is fast and short.
        let mut t = Topology::new();
        let client = t.add_node("client");
        let src = t.add_node("src");
        let dst = t.add_node("dst");
        t.add_duplex_link(src, dst, LinkSpec::new(Bandwidth::from_gbps(1.0), ms(1)));
        t.add_duplex_link(client, src, LinkSpec::new(mbps(10.0), ms(50)));
        let mut sim = NetSim::new(t, 2);
        let req = TransferRequest::new(MB);
        let mut session = TransferSession::new(
            req,
            TransferEndpoint::unconstrained(src),
            TransferEndpoint::unconstrained(dst),
            TcpParams::default(),
            1 << 30,
        )
        .unwrap()
        .with_control_from(client);
        session.start(&mut sim);
        let outcome = loop {
            let ev = sim.next_event().unwrap();
            if let SessionStatus::Complete(o) = session.handle(&mut sim, &ev) {
                break o;
            }
        };
        // Control over the 100 ms RTT path dominates the tiny data move.
        assert!(outcome.control_overhead() > SimDuration::from_millis(500));
        assert!(outcome.phase("data").unwrap().duration() < SimDuration::from_millis(200));
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let (mut sim, src, dst) = wan(100.0, 5);
        let req = TransferRequest::new(MB)
            .with_protocol(Protocol::Ftp)
            .with_parallelism(4);
        let err = run_transfer(
            &mut sim,
            &req,
            &TransferEndpoint::unconstrained(src),
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransferError::InvalidRequest { .. }));
        let err = TransferSession::striped(
            TransferRequest::new(MB),
            Vec::new(),
            TransferEndpoint::unconstrained(dst),
            TcpParams::default(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, TransferError::InvalidRequest { .. }));
    }

    #[test]
    fn bigger_files_take_proportionally_longer() {
        let run = |mbytes: u64| {
            let (mut sim, src, dst) = wan(100.0, 5);
            let req = TransferRequest::new(mbytes * MB);
            run_transfer(
                &mut sim,
                &req,
                &TransferEndpoint::unconstrained(src),
                &TransferEndpoint::unconstrained(dst),
                &TcpParams::default(),
            )
            .unwrap()
            .duration()
            .as_secs_f64()
        };
        let t256 = run(256);
        let t512 = run(512);
        let t1024 = run(1024);
        assert!(
            (t512 / t256 - 2.0).abs() < 0.2,
            "512/256 ratio {}",
            t512 / t256
        );
        assert!(
            (t1024 / t512 - 2.0).abs() < 0.1,
            "1024/512 ratio {}",
            t1024 / t512
        );
    }

    #[test]
    fn sessions_share_a_simulator() {
        // Two concurrent transfers over the same bottleneck, driven by an
        // event router: both complete, later than either would alone.
        let (mut sim, src, dst) = wan(100.0, 5);
        let tcp = TcpParams::default();
        let mk = |base: u64| {
            TransferSession::new(
                TransferRequest::new(32 * MB),
                TransferEndpoint::unconstrained(src),
                TransferEndpoint::unconstrained(dst),
                tcp,
                base,
            )
            .unwrap()
        };
        let mut a = mk(1000);
        let mut b = mk(2000);
        a.start(&mut sim);
        b.start(&mut sim);
        let mut done = Vec::new();
        while done.len() < 2 {
            let ev = sim.next_event().expect("work pending");
            if a.owns(&ev) {
                if let SessionStatus::Complete(o) = a.handle(&mut sim, &ev) {
                    done.push(o);
                }
            } else if b.owns(&ev) {
                if let SessionStatus::Complete(o) = b.handle(&mut sim, &ev) {
                    done.push(o);
                }
            } else {
                panic!("orphan event {ev:?}");
            }
        }
        // Sharing 100 Mbps: each ~32MiB at ~50 Mbps ≈ 5.4 s (plus overheads)
        for o in &done {
            let secs = o.duration().as_secs_f64();
            assert!(secs > 4.0, "transfers contended: {secs}");
        }
    }
}

#[cfg(test)]
mod restart_tests {
    use super::*;
    use datagrid_simnet::time::SimDuration;
    use datagrid_simnet::topology::{LinkSpec, Topology};

    const MB: u64 = 1 << 20;

    fn net() -> (NetSim, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_mbps(80.0), SimDuration::from_millis(5)),
        );
        (NetSim::new(t, 1), a, b)
    }

    /// Drives a session until `cutoff`, then aborts; returns the restart
    /// offset.
    fn run_until_and_abort(cutoff: SimTime, parallelism: u32) -> (u64, u64) {
        let (mut sim, a, b) = net();
        let total = 64 * MB;
        let mut req = TransferRequest::new(total);
        if parallelism > 0 {
            req = req.with_parallelism(parallelism);
        }
        let mut session = TransferSession::new(
            req,
            TransferEndpoint::unconstrained(a),
            TransferEndpoint::unconstrained(b),
            TcpParams::default(),
            1 << 32,
        )
        .unwrap();
        session.start(&mut sim);
        sim.schedule_timer(cutoff, 9999);
        loop {
            let ev = sim.next_event().expect("work pending");
            if matches!(ev.kind, EventKind::TimerFired(9999)) {
                return (session.abort(&mut sim), total);
            }
            if session.owns(&ev) {
                if let SessionStatus::Complete(_) = session.handle(&mut sim, &ev) {
                    panic!("transfer completed before the cutoff");
                }
            }
        }
    }

    #[test]
    fn abort_mid_data_reports_partial_progress() {
        // 64 MiB at 80 Mbps takes ~6.7 s of data time; cut at 3 s.
        let (delivered, total) = run_until_and_abort(SimTime::from_secs_f64(3.0), 4);
        assert!(delivered > 0, "some bytes should be delivered by 3 s");
        assert!(delivered < total, "transfer must not have finished");
        // Roughly proportional to time: between 20% and 60%.
        let fraction = delivered as f64 / total as f64;
        assert!((0.2..0.6).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn abort_during_control_reports_zero() {
        let (delivered, _) = run_until_and_abort(SimTime::from_nanos(1), 1);
        assert_eq!(delivered, 0, "no data flows yet");
    }

    #[test]
    fn resume_transfers_only_the_tail() {
        let (delivered, total) = run_until_and_abort(SimTime::from_secs_f64(3.0), 4);
        // Resume with a partial request from the restart offset.
        let (mut sim, a, b) = net();
        let resume = TransferRequest::new(total)
            .with_range(delivered, total - delivered)
            .with_parallelism(4);
        let outcome = run_transfer(
            &mut sim,
            &resume,
            &TransferEndpoint::unconstrained(a),
            &TransferEndpoint::unconstrained(b),
            &TcpParams::default(),
        )
        .unwrap();
        assert_eq!(outcome.payload_bytes, total - delivered);
        // The tail is cheaper than a full re-transfer.
        let full = run_transfer(
            &mut sim,
            &TransferRequest::new(total).with_parallelism(4),
            &TransferEndpoint::unconstrained(a),
            &TransferEndpoint::unconstrained(b),
            &TcpParams::default(),
        )
        .unwrap();
        assert!(outcome.duration() < full.duration());
    }

    #[test]
    fn abort_after_completion_is_empty() {
        let (mut sim, a, b) = net();
        let mut session = TransferSession::new(
            TransferRequest::new(MB),
            TransferEndpoint::unconstrained(a),
            TransferEndpoint::unconstrained(b),
            TcpParams::default(),
            1 << 32,
        )
        .unwrap();
        session.start(&mut sim);
        loop {
            let ev = sim.next_event().unwrap();
            if let SessionStatus::Complete(outcome) = session.handle(&mut sim, &ev) {
                assert_eq!(outcome.payload_bytes, MB);
                break;
            }
        }
        // All payload was delivered, nothing active remains.
        assert_eq!(session.abort(&mut sim), MB);
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;
    use datagrid_simnet::fault::FaultPlan;
    use datagrid_simnet::topology::{LinkId, LinkSpec, Topology};

    const MB: u64 = 1 << 20;

    /// a --80Mbps-- b, plus the a->b directed link id.
    fn net() -> (NetSim, NodeId, NodeId, LinkId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (fwd, _) = t.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_mbps(80.0), SimDuration::from_millis(5)),
        );
        (NetSim::new(t, 1), a, b, fwd)
    }

    fn policy() -> RetryPolicy {
        RetryPolicy::default()
            .with_base_backoff(SimDuration::from_secs(2))
            .with_jitter(0.0)
    }

    fn recover(
        sim: &mut NetSim,
        req: &TransferRequest,
        a: NodeId,
        b: NodeId,
        policy: &RetryPolicy,
        seed: u64,
    ) -> Result<RecoveredTransfer, TransferError> {
        let mut rng = SimRng::seed_from_u64(seed);
        run_transfer_with_recovery(
            sim,
            req,
            &TransferEndpoint::unconstrained(a),
            &TransferEndpoint::unconstrained(b),
            &TcpParams::default(),
            policy,
            SimDuration::from_secs(1),
            &mut rng,
        )
    }

    #[test]
    fn outage_is_survived_by_resuming_from_restart_marker() {
        let (mut sim, a, b, fwd) = net();
        // 64 MiB at 80 Mbps needs ~6.7 s of data time; a 3 s outage at 2 s
        // forces one stall + one resumed attempt.
        sim.install_fault_plan(FaultPlan::new().link_down(
            SimTime::from_secs_f64(2.0),
            SimDuration::from_secs(3),
            fwd,
        ));
        let req = TransferRequest::new(64 * MB).with_parallelism(4);
        let rec = recover(&mut sim, &req, a, b, &policy(), 7).expect("recovers");
        assert!(rec.attempts >= 2, "must have retried: {rec:?}");
        assert_eq!(rec.payload_moved, 64 * MB, "markers avoid re-sending");
        assert!(!rec.resumed_from.is_empty());
        assert!(
            rec.resumed_from.iter().all(|&o| o > 0),
            "MODE E resumes mid-file: {:?}",
            rec.resumed_from
        );
        assert!(rec.backoff_total > SimDuration::ZERO);
        // The final attempt only moved the tail.
        assert!(rec.outcome.payload_bytes < 64 * MB);
    }

    #[test]
    fn stream_mode_restarts_from_zero_and_moves_more_bytes() {
        let outage = |req: TransferRequest| {
            let (mut sim, a, b, fwd) = net();
            sim.install_fault_plan(FaultPlan::new().link_down(
                SimTime::from_secs_f64(2.0),
                SimDuration::from_secs(3),
                fwd,
            ));
            recover(&mut sim, &req, a, b, &policy(), 7).expect("recovers")
        };
        let mode_e = outage(TransferRequest::new(64 * MB).with_parallelism(4));
        let stream = outage(TransferRequest::new(64 * MB));
        assert!(stream.attempts >= 2);
        assert!(
            stream.resumed_from.iter().all(|&o| o == 0),
            "stream mode has no restart markers: {:?}",
            stream.resumed_from
        );
        // The acceptance property: a resumed MODE E episode moves strictly
        // fewer total bytes than restart-from-zero.
        assert!(
            mode_e.payload_moved < stream.payload_moved,
            "resume {} vs restart {}",
            mode_e.payload_moved,
            stream.payload_moved
        );
        assert_eq!(stream.outcome.payload_bytes, 64 * MB, "full re-transfer");
    }

    #[test]
    fn permanent_outage_exhausts_retries() {
        let (mut sim, a, b, fwd) = net();
        sim.install_fault_plan(FaultPlan::new().link_down(
            SimTime::from_secs_f64(2.0),
            SimDuration::from_secs(100_000),
            fwd,
        ));
        let req = TransferRequest::new(64 * MB).with_parallelism(4);
        let err = recover(&mut sim, &req, a, b, &policy().with_max_attempts(2), 7).unwrap_err();
        match err {
            TransferError::RetriesExhausted {
                attempts,
                delivered,
            } => {
                assert_eq!(attempts, 2);
                assert!(delivered > 0, "first attempt committed a prefix");
                assert!(delivered < 64 * MB);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn connection_drop_is_detected_and_retried() {
        let (mut sim, a, b, _) = net();
        sim.install_fault_plan(FaultPlan::new().connection_drop(SimTime::from_secs_f64(2.0), b));
        // 64 MiB at 80 Mbps takes ~6.7 s, so the drop at 2 s lands mid-data.
        let req = TransferRequest::new(64 * MB).with_parallelism(2);
        let rec = recover(&mut sim, &req, a, b, &policy(), 3).expect("recovers");
        assert!(rec.attempts >= 2, "drop must force a retry");
        assert!(rec.payload_moved >= 64 * MB);
    }

    #[test]
    fn recovery_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (mut sim, a, b, fwd) = net();
            sim.install_fault_plan(FaultPlan::new().link_down(
                SimTime::from_secs_f64(2.0),
                SimDuration::from_secs(3),
                fwd,
            ));
            let req = TransferRequest::new(64 * MB).with_parallelism(4);
            recover(&mut sim, &req, a, b, &RetryPolicy::default(), seed).expect("recovers")
        };
        assert_eq!(run(11), run(11));
        let a = run(11);
        let b = run(12);
        // Different jitter draws shift the retry instant.
        assert!(a == b || a.backoff_total != b.backoff_total || a.outcome != b.outcome);
    }

    #[test]
    fn clean_path_needs_no_retries() {
        let (mut sim, a, b, _) = net();
        let req = TransferRequest::new(16 * MB).with_parallelism(2);
        let rec = recover(&mut sim, &req, a, b, &policy(), 1).expect("clean run");
        assert_eq!(rec.attempts, 1);
        assert!(rec.resumed_from.is_empty());
        assert_eq!(rec.backoff_total, SimDuration::ZERO);
        assert_eq!(rec.payload_moved, 16 * MB);
    }
}

#[cfg(test)]
mod protection_exec_tests {
    use super::*;
    use crate::transfer::DataChannelProtection;
    use datagrid_simnet::time::SimDuration;
    use datagrid_simnet::topology::{LinkSpec, Topology};

    const MB: u64 = 1 << 20;

    fn fast_net() -> (NetSim, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_millis(1)),
        );
        (NetSim::new(t, 1), a, b)
    }

    fn run(protection: DataChannelProtection, index: f64) -> f64 {
        let (mut sim, a, b) = fast_net();
        let endpoint = |node| {
            TransferEndpoint::new(
                node,
                Bandwidth::from_gbps(10.0),
                Bandwidth::from_gbps(10.0),
                1.0,
                index,
            )
        };
        let outcome = run_transfer(
            &mut sim,
            &TransferRequest::new(64 * MB).with_protection(protection),
            &endpoint(a),
            &endpoint(b),
            &TcpParams::default(),
        )
        .unwrap();
        outcome.data_throughput().as_mbps()
    }

    #[test]
    fn privacy_slows_cpu_bound_transfers() {
        // Compute index 1: clear rate is CPU-bound at 600 Mbps; integrity
        // halves it; privacy (10x work, software 3DES) drops it to
        // ~60 Mbps.
        let clear = run(DataChannelProtection::Clear, 1.0);
        let safe = run(DataChannelProtection::Safe, 1.0);
        let private = run(DataChannelProtection::Private, 1.0);
        assert!(
            clear > safe && safe > private,
            "{clear} > {safe} > {private}"
        );
        assert!(
            (clear / safe - 2.0).abs() < 0.3,
            "safe ratio {}",
            clear / safe
        );
        assert!(
            (clear / private - 10.0).abs() < 1.5,
            "ratio {}",
            clear / private
        );
    }

    #[test]
    fn protection_is_free_when_network_bound() {
        // Very fast hosts are network-bound at 1 Gbps either way
        // (index 64: even 3DES runs at 4.8 Gbps).
        let clear = run(DataChannelProtection::Clear, 64.0);
        let private = run(DataChannelProtection::Private, 64.0);
        assert!(
            (clear - private).abs() / clear < 0.02,
            "{clear} vs {private}"
        );
    }

    #[test]
    fn prot_negotiation_adds_control_round_trips() {
        let (mut sim, a, b) = fast_net();
        let clear = run_transfer(
            &mut sim,
            &TransferRequest::new(MB),
            &TransferEndpoint::unconstrained(a),
            &TransferEndpoint::unconstrained(b),
            &TcpParams::default(),
        )
        .unwrap();
        let private = run_transfer(
            &mut sim,
            &TransferRequest::new(MB).with_protection(DataChannelProtection::Private),
            &TransferEndpoint::unconstrained(a),
            &TransferEndpoint::unconstrained(b),
            &TcpParams::default(),
        )
        .unwrap();
        assert!(private.control_overhead() > clear.control_overhead());
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use datagrid_simnet::time::SimDuration;
    use datagrid_simnet::topology::{LinkSpec, Topology};

    const MB: u64 = 1 << 20;

    fn endpoint(node: NodeId, disk_mbps: f64) -> TransferEndpoint {
        TransferEndpoint::new(
            node,
            Bandwidth::from_mbps(disk_mbps),
            Bandwidth::from_mbps(disk_mbps),
            1.0,
            16.0,
        )
    }

    /// Runs a 64 MiB transfer; at 2 s the source disk availability is
    /// refreshed to `mid_disk_mbps`. Returns total duration in seconds.
    fn run_with_midway_refresh(mid_disk_mbps: Option<f64>) -> f64 {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_millis(2)),
        );
        let mut sim = NetSim::new(topo, 1);
        let mut session = TransferSession::new(
            TransferRequest::new(64 * MB),
            endpoint(a, 100.0),
            endpoint(b, 10_000.0),
            TcpParams::default(),
            1 << 33,
        )
        .unwrap();
        session.start(&mut sim);
        sim.schedule_timer(SimTime::from_secs_f64(2.0), 777);
        loop {
            let ev = sim.next_event().expect("work pending");
            if matches!(ev.kind, EventKind::TimerFired(777)) {
                if let Some(disk) = mid_disk_mbps {
                    session.refresh_endpoints(
                        &mut sim,
                        &[endpoint(a, disk)],
                        endpoint(b, 10_000.0),
                    );
                }
                continue;
            }
            if let SessionStatus::Complete(outcome) = session.handle(&mut sim, &ev) {
                return outcome.duration().as_secs_f64();
            }
        }
    }

    #[test]
    fn refresh_slows_the_transfer_when_the_disk_gets_busy() {
        let steady = run_with_midway_refresh(None);
        let degraded = run_with_midway_refresh(Some(10.0));
        // 64 MiB at 100 Mbps ≈ 5.4 s steady. Dropping the disk to 10 Mbps
        // after 2 s leaves ~39 MiB to move at 10 Mbps ≈ 33 s more.
        assert!(
            degraded > steady * 3.0,
            "steady {steady} vs degraded {degraded}"
        );
    }

    #[test]
    fn refresh_speeds_the_transfer_when_load_subsides() {
        let throttled = {
            // Start with a slow disk and never refresh.
            let mut topo = Topology::new();
            let a = topo.add_node("a");
            let b = topo.add_node("b");
            topo.add_duplex_link(
                a,
                b,
                LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_millis(2)),
            );
            let mut sim = NetSim::new(topo, 1);
            let mut session = TransferSession::new(
                TransferRequest::new(64 * MB),
                endpoint(a, 10.0),
                endpoint(b, 10_000.0),
                TcpParams::default(),
                1 << 33,
            )
            .unwrap();
            session.start(&mut sim);
            sim.schedule_timer(SimTime::from_secs_f64(2.0), 777);
            let mut refreshed = false;
            loop {
                let ev = sim.next_event().expect("work pending");
                if matches!(ev.kind, EventKind::TimerFired(777)) {
                    session.refresh_endpoints(
                        &mut sim,
                        &[endpoint(a, 800.0)],
                        endpoint(b, 10_000.0),
                    );
                    refreshed = true;
                    continue;
                }
                if let SessionStatus::Complete(outcome) = session.handle(&mut sim, &ev) {
                    assert!(refreshed);
                    break outcome.duration().as_secs_f64();
                }
            }
        };
        // Without the refresh, 64 MiB at 10 Mbps takes ~54 s; with the disk
        // freeing up at 2 s the tail moves at 800 Mbps.
        assert!(throttled < 10.0, "recovered transfer took {throttled}");
    }
}
