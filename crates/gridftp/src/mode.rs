//! Data-channel wire modes.
//!
//! GridFTP (and FTP) define multiple wire protocols for the data channel.
//! **Stream mode** sends raw bytes in order over a single TCP connection —
//! the only mode plain FTP servers implement. **Extended block mode
//! (MODE E)** frames the data into blocks, each carrying an 8-bit flag
//! byte, a 64-bit offset and a 64-bit length (17 bytes of header), so
//! blocks may arrive out of order — which is what permits multiple parallel
//! TCP streams. `globus-url-copy` switches to MODE E automatically whenever
//! the parallelism option is used, so *parallel transfer with one stream is
//! not the same as no parallel transfer at all* (the paper makes exactly
//! this point): one MODE E stream still pays the block framing.

use crate::error::TransferError;

/// MODE E per-block header: 8 flag bits + 64-bit offset + 64-bit length.
pub const MODE_E_HEADER_BYTES: u64 = 17;

/// A data-channel wire mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// In-order bytes on one TCP connection (FTP-compatible default).
    #[default]
    Stream,
    /// Extended block mode: framed blocks, out-of-order arrival, parallel
    /// streams.
    Extended {
        /// Payload bytes per block (Globus default 64 KiB).
        block_size: u32,
    },
}

impl TransferMode {
    /// MODE E with the Globus default 64 KiB block size.
    pub fn extended_default() -> Self {
        TransferMode::Extended {
            block_size: 64 * 1024,
        }
    }

    /// `true` for MODE E.
    pub fn is_extended(&self) -> bool {
        matches!(self, TransferMode::Extended { .. })
    }

    /// Validates the mode parameters.
    ///
    /// # Errors
    ///
    /// [`TransferError::InvalidRequest`] for a zero block size.
    pub fn validate(&self) -> Result<(), TransferError> {
        match self {
            TransferMode::Stream => Ok(()),
            TransferMode::Extended { block_size } => {
                if *block_size == 0 {
                    Err(TransferError::InvalidRequest {
                        reason: "MODE E block size must be positive".into(),
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Bytes actually sent on the wire for `payload` bytes of file data on
    /// **one stream**, including framing.
    ///
    /// MODE E adds a 17-byte header per (possibly final short) block plus
    /// one EOD (end-of-data) marker block per stream.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        match self {
            TransferMode::Stream => payload,
            TransferMode::Extended { block_size } => {
                let bs = u64::from(*block_size);
                let blocks = payload.div_ceil(bs);
                // data blocks + headers + one EOD marker block (header only)
                payload + blocks * MODE_E_HEADER_BYTES + MODE_E_HEADER_BYTES
            }
        }
    }

    /// Relative framing overhead (`wire/payload - 1`); 0 for stream mode.
    pub fn overhead_fraction(&self, payload: u64) -> f64 {
        if payload == 0 {
            return 0.0;
        }
        self.wire_bytes(payload) as f64 / payload as f64 - 1.0
    }

    /// Splits `payload` bytes across `streams` streams as evenly as
    /// possible (MODE E block granularity is abstracted to bytes; the
    /// remainder goes to the first streams).
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn split_across_streams(payload: u64, streams: u32) -> Vec<u64> {
        assert!(streams > 0, "need at least one stream");
        let n = u64::from(streams);
        let base = payload / n;
        let extra = payload % n;
        (0..n).map(|i| base + u64::from(i < extra)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_mode_has_no_overhead() {
        let m = TransferMode::Stream;
        assert_eq!(m.wire_bytes(1_000_000), 1_000_000);
        assert_eq!(m.overhead_fraction(1_000_000), 0.0);
        assert!(!m.is_extended());
    }

    #[test]
    fn mode_e_adds_header_per_block() {
        let m = TransferMode::Extended { block_size: 100 };
        // 250 bytes -> 3 blocks -> 3 headers + 1 EOD header.
        assert_eq!(m.wire_bytes(250), 250 + 3 * 17 + 17);
        assert!(m.is_extended());
    }

    #[test]
    fn mode_e_default_overhead_is_small() {
        let m = TransferMode::extended_default();
        let f = m.overhead_fraction(1 << 30);
        // 17 / 65536 ≈ 0.026 %.
        assert!(f > 0.0 && f < 0.0005, "overhead {f}");
    }

    #[test]
    fn zero_payload_still_sends_eod() {
        let m = TransferMode::extended_default();
        assert_eq!(m.wire_bytes(0), 17);
        assert_eq!(m.overhead_fraction(0), 0.0);
    }

    #[test]
    fn split_is_even_and_complete() {
        let parts = TransferMode::split_across_streams(10, 4);
        assert_eq!(parts, vec![3, 3, 2, 2]);
        assert_eq!(parts.iter().sum::<u64>(), 10);
        let parts = TransferMode::split_across_streams(1 << 30, 16);
        assert_eq!(parts.iter().sum::<u64>(), 1 << 30);
        assert!(parts.iter().all(|&p| p == parts[0]));
    }

    #[test]
    fn validate_rejects_zero_block() {
        assert!(TransferMode::Extended { block_size: 0 }.validate().is_err());
        assert!(TransferMode::Stream.validate().is_ok());
        assert!(TransferMode::extended_default().validate().is_ok());
    }
}
