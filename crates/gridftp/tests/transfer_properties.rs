//! Property-based tests of transfer execution invariants.

use datagrid_gridftp::prelude::*;
use datagrid_simnet::prelude::*;
use proptest::prelude::*;

fn wan(bottleneck_mbps: f64, loss: f64) -> (NetSim, NodeId, NodeId) {
    let mut t = Topology::new();
    let src = t.add_node("src");
    let mid = t.add_node("mid");
    let dst = t.add_node("dst");
    t.add_duplex_link(
        src,
        mid,
        LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_millis(1)),
    );
    t.add_duplex_link(
        mid,
        dst,
        LinkSpec::new(
            Bandwidth::from_mbps(bottleneck_mbps),
            SimDuration::from_millis(8),
        )
        .with_loss(loss),
    );
    (NetSim::new(t, 3), src, dst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transfer duration is bounded below by physics: payload over the
    /// bottleneck capacity, plus it always exceeds the pure control time.
    #[test]
    fn duration_respects_physics(
        mbytes in 1u64..64,
        streams in 0u32..16,
        bottleneck in 10.0f64..500.0,
    ) {
        let (mut sim, src, dst) = wan(bottleneck, 0.002);
        let mut req = TransferRequest::new(mbytes << 20);
        if streams > 0 {
            req = req.with_parallelism(streams);
        }
        let outcome = run_transfer(
            &mut sim,
            &req,
            &TransferEndpoint::unconstrained(src),
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        ).unwrap();
        let min_secs = (mbytes << 20) as f64 * 8.0 / (bottleneck * 1e6);
        prop_assert!(
            outcome.duration().as_secs_f64() >= min_secs * 0.999,
            "{} s under physical floor {} s",
            outcome.duration().as_secs_f64(),
            min_secs
        );
        prop_assert!(outcome.control_overhead() > SimDuration::ZERO);
        prop_assert_eq!(outcome.payload_bytes, mbytes << 20);
        prop_assert!(outcome.wire_bytes >= outcome.payload_bytes);
        // Phases tile the outcome: control, data, completion.
        let phases = &outcome.phases;
        prop_assert_eq!(phases.len(), 3);
        prop_assert_eq!(phases[0].start, outcome.started);
        for w in phases.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        prop_assert_eq!(phases[2].end, outcome.finished);
    }

    /// More parallel streams never make a lossy-WAN transfer slower by
    /// more than the framing/negotiation epsilon.
    #[test]
    fn parallelism_is_monotone_enough(mbytes in 8u64..64) {
        let times: Vec<f64> = [1u32, 2, 4, 8]
            .iter()
            .map(|&p| {
                let (mut sim, src, dst) = wan(30.0, 0.01);
                run_transfer(
                    &mut sim,
                    &TransferRequest::new(mbytes << 20).with_parallelism(p),
                    &TransferEndpoint::unconstrained(src),
                    &TransferEndpoint::unconstrained(dst),
                    &TcpParams::default(),
                )
                .unwrap()
                .duration()
                .as_secs_f64()
            })
            .collect();
        for w in times.windows(2) {
            prop_assert!(w[1] <= w[0] * 1.02, "{:?} not monotone", times);
        }
    }

    /// Endpoint caps bound the data-phase rate.
    #[test]
    fn endpoint_disk_caps_bind(disk_mbps in 8.0f64..80.0) {
        let (mut sim, src, dst) = wan(1000.0, 0.0);
        let outcome = run_transfer(
            &mut sim,
            &TransferRequest::new(32 << 20),
            &TransferEndpoint::new(
                src,
                Bandwidth::from_mbps(disk_mbps),
                Bandwidth::from_mbps(disk_mbps),
                1.0,
                16.0,
            ),
            &TransferEndpoint::unconstrained(dst),
            &TcpParams::default(),
        ).unwrap();
        let rate = outcome.data_throughput().as_mbps();
        prop_assert!(rate <= disk_mbps * 1.001, "rate {rate} exceeds disk {disk_mbps}");
    }
}
