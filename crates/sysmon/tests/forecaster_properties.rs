//! Property-based tests of the NWS forecaster battery.

use datagrid_simnet::rng::SimRng;
use datagrid_sysmon::nws::forecast::{
    Ar1Forecaster, ExpSmoothing, Forecaster, LastValue, MetaForecaster, RunningMean, SlidingMean,
    SlidingMedian, TrimmedMean,
};
use proptest::prelude::*;

fn battery_members() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(RunningMean::new()),
        Box::new(SlidingMean::new(7)),
        Box::new(SlidingMedian::new(7)),
        Box::new(TrimmedMean::new(9, 0.2)),
        Box::new(ExpSmoothing::new(0.3)),
        Box::new(Ar1Forecaster::new(12)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Window-bounded forecasters always forecast within the range of the
    /// values they have seen (no extrapolation blow-ups), except AR(1)
    /// which may extrapolate but must stay finite.
    #[test]
    fn forecasts_stay_finite_and_mostly_bounded(
        values in proptest::collection::vec(0.0f64..1e9, 1..200),
    ) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for mut member in battery_members() {
            for &v in &values {
                member.update(v);
            }
            let f = member.forecast().expect("warmed up");
            prop_assert!(f.is_finite(), "{} produced {f}", member.name());
            if member.name() != "ar1" {
                prop_assert!(
                    f >= lo - 1e-6 && f <= hi + 1e-6,
                    "{} forecast {f} outside [{lo}, {hi}]",
                    member.name()
                );
            }
        }
    }

    /// On a constant series every forecaster converges to the constant.
    #[test]
    fn constant_series_is_learned(value in 0.0f64..1e9, n in 15usize..100) {
        for mut member in battery_members() {
            for _ in 0..n {
                member.update(value);
            }
            let f = member.forecast().unwrap();
            prop_assert!(
                (f - value).abs() <= 1e-9 * value.max(1.0),
                "{}: {f} != {value}",
                member.name()
            );
        }
    }

    /// The meta-forecaster's selected member never has a worse cumulative
    /// MAE than any other member that has produced the same number of
    /// predictions.
    #[test]
    fn meta_selects_a_minimal_mae_member(
        seed in 0u64..1000,
        n in 30usize..200,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut meta = MetaForecaster::nws_battery();
        for _ in 0..n {
            meta.update(rng.normal(100.0, 20.0));
        }
        let selected = meta.selected().expect("warmed up");
        let scores = meta.scores();
        let sel_mae = scores
            .iter()
            .find(|s| s.name == selected)
            .map(|s| s.mae());
        // At least one member carries the minimal MAE, and the selected
        // one matches it (modulo members that share a name, where the
        // battery may select either instance).
        let min_mae = scores
            .iter()
            .map(|s| s.mae())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(sel_mae.is_some());
        let sel_named_min = scores
            .iter()
            .filter(|s| s.name == selected)
            .map(|s| s.mae())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            sel_named_min <= min_mae + 1e-12,
            "selected {selected} (MAE {sel_named_min}) vs best {min_mae}"
        );
    }

    /// Battery updates are order-stable: cloning mid-stream and continuing
    /// identically produces identical state.
    #[test]
    fn battery_clone_is_transparent(
        prefix in proptest::collection::vec(0.0f64..1e6, 1..50),
        suffix in proptest::collection::vec(0.0f64..1e6, 1..50),
    ) {
        let mut a = MetaForecaster::nws_battery();
        for &v in &prefix {
            a.update(v);
        }
        let mut b = a.clone();
        for &v in &suffix {
            a.update(v);
            b.update(v);
        }
        prop_assert_eq!(a.forecast(), b.forecast());
        prop_assert_eq!(a.selected(), b.selected());
    }
}
