//! Network Weather Service (NWS) reimplementation.
//!
//! The paper measures and predicts end-to-end bandwidth with NWS (Wolski et
//! al.), which runs a battery of simple forecasters over each measurement
//! series and dynamically selects whichever has been most accurate so far.
//! This module reimplements that design:
//!
//! * [`series`] — bounded measurement time series,
//! * [`forecast`] — the forecaster battery ([`forecast::MetaForecaster`]
//!   with dynamic predictor selection, plus every individual method),
//! * [`sensor`] — per-path bandwidth sensors combining measurement noise,
//!   history and forecasting,
//! * [`NwsRegistry`] — the nameserver/memory analogue: a directory of
//!   sensors keyed by network path.

pub mod forecast;
pub mod sensor;
pub mod series;

use std::collections::HashMap;

use datagrid_simnet::topology::NodeId;

use self::sensor::BandwidthSensor;

/// A directory of bandwidth sensors keyed by `(source, destination)` —
/// the analogue of an `nws_nameserver` plus `nws_memory` deployment.
///
/// ```
/// use datagrid_simnet::topology::{Bandwidth, Topology};
/// use datagrid_simnet::rng::SimRng;
/// use datagrid_sysmon::nws::NwsRegistry;
/// use datagrid_sysmon::nws::sensor::BandwidthSensor;
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("a");
/// let b = topo.add_node("b");
/// let mut reg = NwsRegistry::new();
/// reg.install(BandwidthSensor::new(a, b, Bandwidth::from_mbps(100.0), 0.02, SimRng::seed_from_u64(1)));
/// assert!(reg.sensor(a, b).is_some());
/// assert!(reg.sensor(b, a).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NwsRegistry {
    sensors: Vec<BandwidthSensor>,
    index: HashMap<(NodeId, NodeId), usize>,
}

impl NwsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NwsRegistry::default()
    }

    /// Installs a sensor, replacing any existing sensor for the same path.
    pub fn install(&mut self, sensor: BandwidthSensor) {
        let key = (sensor.src(), sensor.dst());
        match self.index.get(&key) {
            Some(&i) => self.sensors[i] = sensor,
            None => {
                self.index.insert(key, self.sensors.len());
                self.sensors.push(sensor);
            }
        }
    }

    /// The sensor monitoring `src -> dst`, if installed.
    pub fn sensor(&self, src: NodeId, dst: NodeId) -> Option<&BandwidthSensor> {
        self.index.get(&(src, dst)).map(|&i| &self.sensors[i])
    }

    /// Mutable access to the sensor monitoring `src -> dst`.
    pub fn sensor_mut(&mut self, src: NodeId, dst: NodeId) -> Option<&mut BandwidthSensor> {
        self.index.get(&(src, dst)).map(|&i| &mut self.sensors[i])
    }

    /// Iterates over all installed sensors.
    pub fn iter(&self) -> impl Iterator<Item = &BandwidthSensor> {
        self.sensors.iter()
    }

    /// Iterates mutably over all installed sensors.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut BandwidthSensor> {
        self.sensors.iter_mut()
    }

    /// Number of installed sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// `true` when no sensors are installed.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagrid_simnet::rng::SimRng;
    use datagrid_simnet::topology::{Bandwidth, Topology};

    fn nodes() -> (NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        (t.add_node("a"), t.add_node("b"), t.add_node("c"))
    }

    fn sensor(src: NodeId, dst: NodeId) -> BandwidthSensor {
        BandwidthSensor::new(
            src,
            dst,
            Bandwidth::from_mbps(100.0),
            0.0,
            SimRng::seed_from_u64(1),
        )
    }

    #[test]
    fn install_and_lookup_directional() {
        let (a, b, c) = nodes();
        let mut reg = NwsRegistry::new();
        reg.install(sensor(a, b));
        reg.install(sensor(b, c));
        assert_eq!(reg.len(), 2);
        assert!(reg.sensor(a, b).is_some());
        assert!(reg.sensor(b, a).is_none());
        assert!(reg.sensor(a, c).is_none());
    }

    #[test]
    fn reinstall_replaces() {
        let (a, b, _) = nodes();
        let mut reg = NwsRegistry::new();
        reg.install(sensor(a, b));
        reg.install(sensor(a, b));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn iter_visits_all() {
        let (a, b, c) = nodes();
        let mut reg = NwsRegistry::new();
        reg.install(sensor(a, b));
        reg.install(sensor(a, c));
        assert_eq!(reg.iter().count(), 2);
        assert!(!reg.is_empty());
    }
}
