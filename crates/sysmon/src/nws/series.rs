//! Bounded measurement time series (the `nws_memory` analogue).

use datagrid_simnet::time::{SimDuration, SimTime};

/// One timestamped measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// When the measurement was taken.
    pub time: SimTime,
    /// The measured value (bandwidth sensors store bits per second).
    pub value: f64,
}

/// A bounded, append-only time series of measurements.
///
/// ```
/// use datagrid_simnet::time::SimTime;
/// use datagrid_sysmon::nws::series::TimeSeries;
///
/// let mut s = TimeSeries::with_capacity(100);
/// s.push(SimTime::from_secs_f64(1.0), 10.0);
/// s.push(SimTime::from_secs_f64(2.0), 20.0);
/// assert_eq!(s.latest().unwrap().value, 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    samples: Vec<Sample>,
    cap: usize,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new()
    }
}

impl TimeSeries {
    /// Default retention bound.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a series with the default retention bound.
    pub fn new() -> Self {
        TimeSeries::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a series retaining at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "series capacity must be positive");
        TimeSeries {
            samples: Vec::new(),
            cap,
        }
    }

    /// Appends a measurement. Time must be nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the latest sample or `value` is not
    /// finite.
    pub fn push(&mut self, time: SimTime, value: f64) {
        assert!(value.is_finite(), "measurement must be finite, got {value}");
        if let Some(last) = self.samples.last() {
            assert!(time >= last.time, "measurements must be time ordered");
        }
        if self.samples.len() == self.cap {
            self.samples.remove(0);
        }
        self.samples.push(Sample { time, value });
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples within the window `[now - window, now]`.
    pub fn window(&self, now: SimTime, window: SimDuration) -> &[Sample] {
        let cutoff = if window.as_nanos() >= now.as_nanos() {
            SimTime::ZERO
        } else {
            now - window
        };
        let start = self.samples.partition_point(|s| s.time < cutoff);
        &self.samples[start..]
    }

    /// Arithmetic mean of the values in `[now - window, now]`, or `None` if
    /// the window is empty. This is the "time scale" averaging shown in the
    /// paper's Fig. 5 GUI.
    pub fn mean_over(&self, now: SimTime, window: SimDuration) -> Option<f64> {
        let w = self.window(now, window);
        if w.is_empty() {
            None
        } else {
            Some(w.iter().map(|s| s.value).sum::<f64>() / w.len() as f64)
        }
    }
}

impl Extend<Sample> for TimeSeries {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.time, s.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn push_and_latest() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.latest(), None);
        s.push(t(1.0), 5.0);
        s.push(t(2.0), 7.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest().unwrap().value, 7.0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut s = TimeSeries::with_capacity(3);
        for i in 0..5 {
            s.push(t(i as f64), i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples()[0].value, 2.0);
    }

    #[test]
    fn window_selects_recent() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i as f64 * 10.0), i as f64);
        }
        // now = 90, window 25 s -> samples at 70, 80, 90.
        let w = s.window(t(90.0), SimDuration::from_secs(25));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].value, 7.0);
    }

    #[test]
    fn window_larger_than_history() {
        let mut s = TimeSeries::new();
        s.push(t(5.0), 1.0);
        let w = s.window(t(10.0), SimDuration::from_secs(100));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn mean_over_matches_manual() {
        let mut s = TimeSeries::new();
        for i in 1..=4 {
            s.push(t(i as f64), i as f64);
        }
        // window covering samples 3 and 4.
        let m = s.mean_over(t(4.0), SimDuration::from_secs(1)).unwrap();
        assert!((m - 3.5).abs() < 1e-12);
        assert_eq!(
            TimeSeries::new().mean_over(t(1.0), SimDuration::from_secs(1)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "time ordered")]
    fn out_of_order_rejected() {
        let mut s = TimeSeries::new();
        s.push(t(2.0), 1.0);
        s.push(t(1.0), 1.0);
    }
}
