//! Last-value and exponential-smoothing forecasters.

use super::Forecaster;

/// Predicts that the next measurement equals the latest one.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates an empty last-value forecaster.
    pub fn new() -> Self {
        LastValue::default()
    }
}

impl Forecaster for LastValue {
    fn name(&self) -> &'static str {
        "last_value"
    }

    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }

    fn forecast(&self) -> Option<f64> {
        self.last
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Exponentially weighted moving average:
/// `s' = alpha · value + (1 - alpha) · s`.
///
/// NWS runs several gains in parallel; small `alpha` smooths hard, large
/// `alpha` tracks fast.
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    /// Creates a smoother with gain `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        ExpSmoothing { alpha, state: None }
    }

    /// The configured gain.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> &'static str {
        "exp_smoothing"
    }

    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }

    fn forecast(&self) -> Option<f64> {
        self.state
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_echoes() {
        let mut f = LastValue::new();
        assert_eq!(f.forecast(), None);
        f.update(3.0);
        assert_eq!(f.forecast(), Some(3.0));
        f.update(-1.5);
        assert_eq!(f.forecast(), Some(-1.5));
    }

    #[test]
    fn smoothing_first_sample_initialises() {
        let mut f = ExpSmoothing::new(0.3);
        f.update(10.0);
        assert_eq!(f.forecast(), Some(10.0));
    }

    #[test]
    fn smoothing_blends() {
        let mut f = ExpSmoothing::new(0.5);
        f.update(0.0);
        f.update(10.0);
        assert_eq!(f.forecast(), Some(5.0));
        f.update(10.0);
        assert_eq!(f.forecast(), Some(7.5));
    }

    #[test]
    fn alpha_one_is_last_value() {
        let mut f = ExpSmoothing::new(1.0);
        f.update(4.0);
        f.update(9.0);
        assert_eq!(f.forecast(), Some(9.0));
    }

    #[test]
    fn small_alpha_smooths_harder_than_large() {
        let mut slow = ExpSmoothing::new(0.1);
        let mut fast = ExpSmoothing::new(0.9);
        for f in [&mut slow, &mut fast] {
            f.update(0.0);
            f.update(100.0);
        }
        assert!(slow.forecast().unwrap() < fast.forecast().unwrap());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_rejected() {
        let _ = ExpSmoothing::new(0.0);
    }
}
