//! First-order autoregressive forecaster.

use std::collections::VecDeque;

use super::Forecaster;

/// AR(1) forecaster: fits `x[t+1] = a + b·x[t]` by least squares over a
/// sliding window and extrapolates one step from the latest value.
///
/// Captures mean-reverting or trending bandwidth series better than plain
/// means when consecutive measurements are correlated.
#[derive(Debug, Clone)]
pub struct Ar1Forecaster {
    window: usize,
    buf: VecDeque<f64>,
}

impl Ar1Forecaster {
    /// Creates an AR(1) forecaster fitting over `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window < 3` (a regression needs at least three points to
    /// be meaningful).
    pub fn new(window: usize) -> Self {
        assert!(window >= 3, "AR(1) window must be at least 3, got {window}");
        Ar1Forecaster {
            window,
            buf: VecDeque::with_capacity(window),
        }
    }

    /// Fits `(a, b)` over the current buffer, or `None` with fewer than
    /// three samples or a degenerate (constant) regressor.
    fn fit(&self) -> Option<(f64, f64)> {
        let n = self.buf.len();
        if n < 3 {
            return None;
        }
        // Pairs (x[i], x[i+1]) for i in 0..n-1.
        let m = (n - 1) as f64;
        let xs = self.buf.iter().take(n - 1);
        let ys = self.buf.iter().skip(1);
        let sum_x: f64 = xs.clone().sum();
        let sum_y: f64 = ys.clone().sum();
        let mean_x = sum_x / m;
        let mean_y = sum_y / m;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.zip(ys) {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
        }
        if sxx <= f64::EPSILON * m {
            return None; // constant series: slope undefined
        }
        let b = sxy / sxx;
        let a = mean_y - b * mean_x;
        Some((a, b))
    }
}

impl Forecaster for Ar1Forecaster {
    fn name(&self) -> &'static str {
        "ar1"
    }

    fn update(&mut self, value: f64) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    fn forecast(&self) -> Option<f64> {
        let last = *self.buf.back()?;
        match self.fit() {
            Some((a, b)) => Some(a + b * last),
            // Degenerate/short series: fall back to the last value.
            None => Some(last),
        }
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_falls_back_to_last_value() {
        let mut f = Ar1Forecaster::new(10);
        assert_eq!(f.forecast(), None);
        f.update(5.0);
        assert_eq!(f.forecast(), Some(5.0));
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let mut f = Ar1Forecaster::new(10);
        for _ in 0..10 {
            f.update(7.0);
        }
        assert_eq!(f.forecast(), Some(7.0));
    }

    #[test]
    fn linear_ramp_extrapolates() {
        let mut f = Ar1Forecaster::new(20);
        for i in 0..20 {
            f.update(i as f64);
        }
        // Perfect ramp: x[t+1] = 1 + x[t]; forecast from 19 is 20.
        let fc = f.forecast().unwrap();
        assert!((fc - 20.0).abs() < 1e-9, "forecast {fc}");
    }

    #[test]
    fn mean_reverting_series_pulls_toward_mean() {
        // x alternates 9, 11 around mean 10: AR(1) fit has negative slope,
        // so from 11 it forecasts below 11.
        let mut f = Ar1Forecaster::new(16);
        for i in 0..16 {
            f.update(if i % 2 == 0 { 9.0 } else { 11.0 });
        }
        let fc = f.forecast().unwrap();
        assert!(fc < 11.0, "forecast {fc}");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_window_rejected() {
        let _ = Ar1Forecaster::new(2);
    }
}
