//! Mean-based forecasters.

use std::collections::VecDeque;

use super::Forecaster;

/// Running mean of the entire history.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// Creates an empty running mean.
    pub fn new() -> Self {
        RunningMean::default()
    }
}

impl Forecaster for RunningMean {
    fn name(&self) -> &'static str {
        "running_mean"
    }

    fn update(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
    }

    fn forecast(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Mean of the most recent `window` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMean {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    /// Creates a sliding mean over the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        SlidingMean {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &'static str {
        "sliding_mean"
    }

    fn update(&mut self, value: f64) {
        if self.buf.len() == self.window {
            self.sum -= self.buf.pop_front().expect("window non-empty");
        }
        self.buf.push_back(value);
        self.sum += value;
    }

    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Sliding mean whose window length adapts to recent prediction error: each
/// step it compares its own window against a half-length window and drifts
/// toward whichever predicted the newest value better (the NWS "adaptive
/// window" idea).
#[derive(Debug, Clone)]
pub struct AdaptiveMean {
    min_window: usize,
    max_window: usize,
    window: usize,
    buf: VecDeque<f64>,
}

impl AdaptiveMean {
    /// Creates an adaptive mean with window bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_window <= max_window`.
    pub fn new(min_window: usize, max_window: usize) -> Self {
        assert!(
            min_window > 0 && min_window <= max_window,
            "need 0 < min ({min_window}) <= max ({max_window})"
        );
        AdaptiveMean {
            min_window,
            max_window,
            window: min_window,
            buf: VecDeque::with_capacity(max_window),
        }
    }

    /// The current adapted window length.
    pub fn current_window(&self) -> usize {
        self.window
    }

    fn mean_of_last(&self, n: usize) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let n = n.min(self.buf.len());
        let sum: f64 = self.buf.iter().rev().take(n).sum();
        Some(sum / n as f64)
    }
}

impl Forecaster for AdaptiveMean {
    fn name(&self) -> &'static str {
        "adaptive_mean"
    }

    fn update(&mut self, value: f64) {
        // Compare the full-window and half-window predictions of `value`
        // made from the *previous* buffer state, then adapt.
        if self.buf.len() >= self.min_window {
            let full = self.mean_of_last(self.window).expect("non-empty");
            let half = self
                .mean_of_last((self.window / 2).max(self.min_window))
                .expect("non-empty");
            if (half - value).abs() < (full - value).abs() {
                self.window = (self.window - 1).max(self.min_window);
            } else {
                self.window = (self.window + 1).min(self.max_window);
            }
        }
        if self.buf.len() == self.max_window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    fn forecast(&self) -> Option<f64> {
        self.mean_of_last(self.window)
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Mean of a sliding window after discarding the highest and lowest
/// `trim_fraction` of values (robust to measurement spikes).
#[derive(Debug, Clone)]
pub struct TrimmedMean {
    window: usize,
    trim_fraction: f64,
    buf: VecDeque<f64>,
}

impl TrimmedMean {
    /// Creates a trimmed mean over `window` samples, trimming
    /// `trim_fraction` (of the *total*, split between both tails).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `trim_fraction` is outside `[0, 0.9]`.
    pub fn new(window: usize, trim_fraction: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            (0.0..=0.9).contains(&trim_fraction),
            "trim fraction must be in [0, 0.9], got {trim_fraction}"
        );
        TrimmedMean {
            window,
            trim_fraction,
            buf: VecDeque::with_capacity(window),
        }
    }
}

impl Forecaster for TrimmedMean {
    fn name(&self) -> &'static str {
        "trimmed_mean"
    }

    fn update(&mut self, value: f64) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.buf.iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
        let cut = ((v.len() as f64 * self.trim_fraction) / 2.0).floor() as usize;
        let kept = &v[cut..v.len() - cut];
        debug_assert!(!kept.is_empty());
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_converges() {
        let mut f = RunningMean::new();
        assert_eq!(f.forecast(), None);
        for x in [2.0, 4.0, 6.0] {
            f.update(x);
        }
        assert_eq!(f.forecast(), Some(4.0));
    }

    #[test]
    fn sliding_mean_forgets_old_values() {
        let mut f = SlidingMean::new(2);
        f.update(100.0);
        f.update(1.0);
        f.update(3.0);
        assert_eq!(f.forecast(), Some(2.0));
        assert_eq!(f.window(), 2);
    }

    #[test]
    fn sliding_mean_partial_window() {
        let mut f = SlidingMean::new(10);
        f.update(4.0);
        assert_eq!(f.forecast(), Some(4.0));
    }

    #[test]
    fn adaptive_mean_shrinks_on_level_shift() {
        let mut f = AdaptiveMean::new(2, 32);
        for _ in 0..32 {
            f.update(10.0);
        }
        let before = f.current_window();
        for _ in 0..20 {
            f.update(50.0); // abrupt level shift: short windows win
        }
        assert!(f.current_window() < before.max(3) + 20);
        let fc = f.forecast().unwrap();
        assert!(fc > 30.0, "adaptive mean should track the shift, got {fc}");
    }

    #[test]
    fn adaptive_mean_bounds_respected() {
        let mut f = AdaptiveMean::new(3, 6);
        for i in 0..100 {
            f.update((i % 7) as f64);
            let w = f.current_window();
            assert!((3..=6).contains(&w));
        }
    }

    #[test]
    fn trimmed_mean_ignores_spikes() {
        let mut f = TrimmedMean::new(10, 0.4);
        for _ in 0..8 {
            f.update(10.0);
        }
        f.update(1000.0);
        f.update(-1000.0);
        let fc = f.forecast().unwrap();
        assert!((fc - 10.0).abs() < 1e-9, "trimmed mean {fc}");
    }

    #[test]
    fn trimmed_mean_no_trim_is_plain_mean() {
        let mut f = TrimmedMean::new(4, 0.0);
        for x in [1.0, 2.0, 3.0, 4.0] {
            f.update(x);
        }
        assert_eq!(f.forecast(), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = SlidingMean::new(0);
    }
}
