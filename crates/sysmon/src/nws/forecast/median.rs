//! Median-based forecasters (robust to outliers, which matter for
//! bandwidth probes sharing links with bursty cross traffic).

use std::collections::VecDeque;

use super::Forecaster;

fn median_of(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite measurements"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    })
}

/// Median of the most recent `window` measurements.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    window: usize,
    buf: VecDeque<f64>,
}

impl SlidingMedian {
    /// Creates a sliding median over the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        SlidingMedian {
            window,
            buf: VecDeque::with_capacity(window),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &'static str {
        "sliding_median"
    }

    fn update(&mut self, value: f64) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    fn forecast(&self) -> Option<f64> {
        median_of(self.buf.iter().copied())
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

/// Sliding median with an adaptive window, analogous to
/// [`AdaptiveMean`](super::mean::AdaptiveMean): the window drifts shorter
/// when a half-length median would have predicted the newest value better,
/// longer otherwise.
#[derive(Debug, Clone)]
pub struct AdaptiveMedian {
    min_window: usize,
    max_window: usize,
    window: usize,
    buf: VecDeque<f64>,
}

impl AdaptiveMedian {
    /// Creates an adaptive median with window bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_window <= max_window`.
    pub fn new(min_window: usize, max_window: usize) -> Self {
        assert!(
            min_window > 0 && min_window <= max_window,
            "need 0 < min ({min_window}) <= max ({max_window})"
        );
        AdaptiveMedian {
            min_window,
            max_window,
            window: min_window,
            buf: VecDeque::with_capacity(max_window),
        }
    }

    /// The current adapted window length.
    pub fn current_window(&self) -> usize {
        self.window
    }

    fn median_of_last(&self, n: usize) -> Option<f64> {
        let n = n.min(self.buf.len());
        median_of(self.buf.iter().rev().take(n).copied())
    }
}

impl Forecaster for AdaptiveMedian {
    fn name(&self) -> &'static str {
        "adaptive_median"
    }

    fn update(&mut self, value: f64) {
        if self.buf.len() >= self.min_window {
            let full = self.median_of_last(self.window).expect("non-empty");
            let half = self
                .median_of_last((self.window / 2).max(self.min_window))
                .expect("non-empty");
            if (half - value).abs() < (full - value).abs() {
                self.window = (self.window - 1).max(self.min_window);
            } else {
                self.window = (self.window + 1).min(self.max_window);
            }
        }
        if self.buf.len() == self.max_window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
    }

    fn forecast(&self) -> Option<f64> {
        self.median_of_last(self.window)
    }

    fn clone_box(&self) -> Box<dyn Forecaster> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_median_basic() {
        let mut f = SlidingMedian::new(3);
        assert_eq!(f.forecast(), None);
        f.update(1.0);
        f.update(100.0);
        f.update(2.0);
        assert_eq!(f.forecast(), Some(2.0));
    }

    #[test]
    fn sliding_median_even_window() {
        let mut f = SlidingMedian::new(4);
        for x in [1.0, 2.0, 3.0, 10.0] {
            f.update(x);
        }
        assert_eq!(f.forecast(), Some(2.5));
    }

    #[test]
    fn sliding_median_evicts() {
        let mut f = SlidingMedian::new(2);
        f.update(1000.0);
        f.update(5.0);
        f.update(7.0);
        assert_eq!(f.forecast(), Some(6.0));
    }

    #[test]
    fn median_robust_to_single_outlier() {
        let mut f = SlidingMedian::new(5);
        for x in [10.0, 10.0, 10.0, 10.0, 500.0] {
            f.update(x);
        }
        assert_eq!(f.forecast(), Some(10.0));
    }

    #[test]
    fn adaptive_median_tracks_shift() {
        let mut f = AdaptiveMedian::new(2, 32);
        for _ in 0..32 {
            f.update(10.0);
        }
        for _ in 0..24 {
            f.update(80.0);
        }
        let fc = f.forecast().unwrap();
        assert!(
            fc > 50.0,
            "adaptive median should track the shift, got {fc}"
        );
    }

    #[test]
    fn adaptive_median_bounds_respected() {
        let mut f = AdaptiveMedian::new(3, 8);
        for i in 0..200 {
            f.update(((i * 13) % 11) as f64);
            assert!((3..=8).contains(&f.current_window()));
        }
    }
}
