//! The NWS forecaster battery.
//!
//! NWS's key insight is that no single cheap predictor wins everywhere, so
//! it runs them all and *dynamically selects* the one with the lowest
//! cumulative error so far. [`MetaForecaster`] implements that strategy
//! over the full battery:
//!
//! | forecaster | module |
//! |---|---|
//! | last value | [`smoothing::LastValue`] |
//! | running mean | [`mean::RunningMean`] |
//! | sliding window mean | [`mean::SlidingMean`] |
//! | adaptive window mean | [`mean::AdaptiveMean`] |
//! | trimmed sliding mean | [`mean::TrimmedMean`] |
//! | sliding window median | [`median::SlidingMedian`] |
//! | adaptive window median | [`median::AdaptiveMedian`] |
//! | exponential smoothing (two gains) | [`smoothing::ExpSmoothing`] |
//! | AR(1) regression | [`ar::Ar1Forecaster`] |

pub mod ar;
pub mod mean;
pub mod median;
pub mod smoothing;

pub use ar::Ar1Forecaster;
pub use mean::{AdaptiveMean, RunningMean, SlidingMean, TrimmedMean};
pub use median::{AdaptiveMedian, SlidingMedian};
pub use smoothing::{ExpSmoothing, LastValue};

/// A one-step-ahead forecaster over a scalar measurement stream.
///
/// Implementations are updated with each new measurement and asked for a
/// prediction of the *next* one. They must be cheap: NWS runs the whole
/// battery on every sample.
pub trait Forecaster: std::fmt::Debug + Send {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Feeds one new measurement.
    fn update(&mut self, value: f64);

    /// Predicts the next measurement; `None` until enough data has arrived.
    fn forecast(&self) -> Option<f64>;

    /// Clones into a boxed trait object (forecasters live in heterogeneous
    /// batteries that must themselves be cloneable).
    fn clone_box(&self) -> Box<dyn Forecaster>;
}

impl Clone for Box<dyn Forecaster> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Which cumulative error metric drives dynamic predictor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMetric {
    /// Mean absolute error (NWS's primary choice).
    #[default]
    MeanAbsoluteError,
    /// Mean squared error.
    MeanSquaredError,
}

/// Accuracy bookkeeping for one forecaster inside a battery.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecasterScore {
    /// Forecaster name.
    pub name: &'static str,
    /// Number of scored predictions.
    pub predictions: u64,
    /// Cumulative absolute error.
    pub abs_error: f64,
    /// Cumulative squared error.
    pub sq_error: f64,
}

impl ForecasterScore {
    /// Mean absolute error so far (infinite before any prediction, so an
    /// unproven forecaster is never selected over a proven one).
    pub fn mae(&self) -> f64 {
        if self.predictions == 0 {
            f64::INFINITY
        } else {
            self.abs_error / self.predictions as f64
        }
    }

    /// Mean squared error so far (infinite before any prediction).
    pub fn mse(&self) -> f64 {
        if self.predictions == 0 {
            f64::INFINITY
        } else {
            self.sq_error / self.predictions as f64
        }
    }
}

/// The NWS dynamic-selection meta-forecaster: runs a battery, tracks each
/// member's cumulative error, and forwards the current best member's
/// prediction.
///
/// ```
/// use datagrid_sysmon::nws::forecast::MetaForecaster;
///
/// let mut meta = MetaForecaster::nws_battery();
/// for i in 0..50 {
///     meta.update(10.0 + (i % 3) as f64);
/// }
/// let f = meta.forecast().expect("warmed up");
/// assert!((9.0..13.0).contains(&f));
/// ```
#[derive(Debug, Clone)]
pub struct MetaForecaster {
    members: Vec<Box<dyn Forecaster>>,
    scores: Vec<ForecasterScore>,
    last_forecasts: Vec<Option<f64>>,
    metric: SelectionMetric,
}

impl MetaForecaster {
    /// Builds a battery from explicit members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Forecaster>>, metric: SelectionMetric) -> Self {
        assert!(!members.is_empty(), "a battery needs at least one member");
        let scores = members
            .iter()
            .map(|m| ForecasterScore {
                name: m.name(),
                predictions: 0,
                abs_error: 0.0,
                sq_error: 0.0,
            })
            .collect();
        let last_forecasts = vec![None; members.len()];
        MetaForecaster {
            members,
            scores,
            last_forecasts,
            metric,
        }
    }

    /// The standard NWS battery (all implemented methods, MAE selection).
    pub fn nws_battery() -> Self {
        MetaForecaster::new(
            vec![
                Box::new(LastValue::new()),
                Box::new(RunningMean::new()),
                Box::new(SlidingMean::new(10)),
                Box::new(SlidingMean::new(30)),
                Box::new(AdaptiveMean::new(5, 64)),
                Box::new(TrimmedMean::new(20, 0.2)),
                Box::new(SlidingMedian::new(10)),
                Box::new(SlidingMedian::new(30)),
                Box::new(AdaptiveMedian::new(5, 64)),
                Box::new(ExpSmoothing::new(0.1)),
                Box::new(ExpSmoothing::new(0.5)),
                Box::new(Ar1Forecaster::new(30)),
            ],
            SelectionMetric::MeanAbsoluteError,
        )
    }

    /// Feeds one measurement: scores every member's previous prediction
    /// against it, then updates every member.
    pub fn update(&mut self, value: f64) {
        for ((member, score), last) in self
            .members
            .iter_mut()
            .zip(&mut self.scores)
            .zip(&mut self.last_forecasts)
        {
            if let Some(prev) = *last {
                let err = prev - value;
                score.predictions += 1;
                score.abs_error += err.abs();
                score.sq_error += err * err;
            }
            member.update(value);
            *last = member.forecast();
        }
    }

    /// The prediction of the currently best-scoring member.
    pub fn forecast(&self) -> Option<f64> {
        let best = self.best_member_index()?;
        self.last_forecasts[best]
    }

    /// Name of the currently selected member, if any has produced a
    /// forecast.
    pub fn selected(&self) -> Option<&'static str> {
        self.best_member_index().map(|i| self.scores[i].name)
    }

    /// Per-member accuracy bookkeeping.
    pub fn scores(&self) -> &[ForecasterScore] {
        &self.scores
    }

    fn best_member_index(&self) -> Option<usize> {
        let key = |s: &ForecasterScore| match self.metric {
            SelectionMetric::MeanAbsoluteError => s.mae(),
            SelectionMetric::MeanSquaredError => s.mse(),
        };
        // Members without any scored prediction have infinite error; fall
        // back to any member that at least has a forecast.
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.scores.iter().enumerate() {
            if self.last_forecasts[i].is_none() {
                continue;
            }
            let k = key(s);
            if best.is_none_or(|(_, bk)| k < bk) {
                best = Some((i, k));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_battery_rejected() {
        let r = std::panic::catch_unwind(|| {
            MetaForecaster::new(Vec::new(), SelectionMetric::MeanAbsoluteError)
        });
        assert!(r.is_err());
    }

    #[test]
    fn meta_warms_up_then_forecasts() {
        let mut meta = MetaForecaster::nws_battery();
        assert_eq!(meta.forecast(), None);
        meta.update(5.0);
        // After one sample, LastValue and friends can already forecast.
        assert!(meta.forecast().is_some());
    }

    #[test]
    fn meta_tracks_constant_signal_exactly() {
        let mut meta = MetaForecaster::nws_battery();
        for _ in 0..20 {
            meta.update(42.0);
        }
        assert_eq!(meta.forecast(), Some(42.0));
        let scores = meta.scores();
        assert!(scores.iter().any(|s| s.predictions > 0 && s.mae() == 0.0));
    }

    #[test]
    fn meta_prefers_mean_on_noisy_stationary_signal() {
        // Independent noise around 10: LastValue's MAE is ~2x the noise
        // scale while averaging forecasters approach it, so the meta must
        // not pick last value and its forecast must sit near the mean.
        use datagrid_simnet::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(123);
        let mut meta = MetaForecaster::nws_battery();
        for _ in 0..400 {
            meta.update(rng.normal(10.0, 1.0));
        }
        let sel = meta.selected().unwrap();
        assert_ne!(sel, "last_value", "meta should learn averaging is better");
        let f = meta.forecast().unwrap();
        assert!((f - 10.0).abs() < 1.0, "forecast {f}");
    }

    #[test]
    fn meta_prefers_tracking_on_trending_signal() {
        // A steady ramp: last value / AR track it far better than the
        // running mean.
        let mut meta = MetaForecaster::nws_battery();
        for i in 0..300 {
            meta.update(i as f64);
        }
        let sel = meta.selected().unwrap();
        assert_ne!(sel, "running_mean");
        let f = meta.forecast().unwrap();
        assert!(f > 290.0, "forecast {f} should be near the ramp head");
    }

    #[test]
    fn mse_metric_also_selects() {
        let mut meta = MetaForecaster::new(
            vec![Box::new(LastValue::new()), Box::new(RunningMean::new())],
            SelectionMetric::MeanSquaredError,
        );
        for i in 0..50 {
            meta.update((i % 5) as f64);
        }
        assert!(meta.forecast().is_some());
        assert!(meta.selected().is_some());
    }

    #[test]
    fn clone_preserves_state() {
        let mut meta = MetaForecaster::nws_battery();
        for i in 0..25 {
            meta.update(i as f64);
        }
        let cloned = meta.clone();
        assert_eq!(meta.forecast(), cloned.forecast());
        assert_eq!(meta.selected(), cloned.selected());
    }

    #[test]
    fn score_errors_accumulate() {
        let mut meta = MetaForecaster::new(
            vec![Box::new(LastValue::new())],
            SelectionMetric::MeanAbsoluteError,
        );
        meta.update(10.0); // no previous forecast to score
        meta.update(14.0); // scored against forecast 10 -> abs err 4
        let s = &meta.scores()[0];
        assert_eq!(s.predictions, 1);
        assert_eq!(s.abs_error, 4.0);
        assert_eq!(s.sq_error, 16.0);
        assert_eq!(s.mae(), 4.0);
        assert_eq!(s.mse(), 16.0);
    }
}
