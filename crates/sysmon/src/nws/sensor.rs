//! Per-path bandwidth sensors (the `nws_sensor` analogue).
//!
//! A [`BandwidthSensor`] watches one directed network path. The Data Grid
//! monitor feeds it throughput measurements (obtained from real probe
//! transfers inside the simulation); the sensor perturbs them with
//! multiplicative measurement noise, stores the series and keeps the NWS
//! forecaster battery up to date.

use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::SimTime;
use datagrid_simnet::topology::{Bandwidth, NodeId};

use super::forecast::MetaForecaster;
use super::series::TimeSeries;

/// A bandwidth sensor for one directed path.
///
/// ```
/// use datagrid_simnet::rng::SimRng;
/// use datagrid_simnet::time::SimTime;
/// use datagrid_simnet::topology::{Bandwidth, Topology};
/// use datagrid_sysmon::nws::sensor::BandwidthSensor;
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("a");
/// let b = topo.add_node("b");
/// let mut s = BandwidthSensor::new(a, b, Bandwidth::from_mbps(100.0), 0.0, SimRng::seed_from_u64(1));
/// s.record(SimTime::from_secs_f64(1.0), Bandwidth::from_mbps(60.0));
/// assert!((s.forecast().unwrap().as_mbps() - 60.0).abs() < 1e-9);
/// assert!((s.bandwidth_fraction().unwrap() - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthSensor {
    src: NodeId,
    dst: NodeId,
    theoretical: Bandwidth,
    noise_sigma: f64,
    rng: SimRng,
    series: TimeSeries,
    battery: MetaForecaster,
}

impl BandwidthSensor {
    /// Creates a sensor for `src -> dst`.
    ///
    /// `theoretical` is the highest theoretical bandwidth of the path (the
    /// denominator of the paper's `BW_P` factor). `noise_sigma` is the
    /// relative standard deviation of measurement noise (0 = noiseless).
    ///
    /// # Panics
    ///
    /// Panics if `theoretical` is zero or `noise_sigma` is negative.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        theoretical: Bandwidth,
        noise_sigma: f64,
        rng: SimRng,
    ) -> Self {
        assert!(
            theoretical.as_bps() > 0.0,
            "theoretical bandwidth must be positive"
        );
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        BandwidthSensor {
            src,
            dst,
            theoretical,
            noise_sigma,
            rng,
            series: TimeSeries::new(),
            battery: MetaForecaster::nws_battery(),
        }
    }

    /// Path source.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Path destination.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The path's highest theoretical bandwidth.
    pub fn theoretical(&self) -> Bandwidth {
        self.theoretical
    }

    /// Records a throughput measurement, applying measurement noise.
    /// Returns the (noisy) value actually stored.
    pub fn record(&mut self, time: SimTime, measured: Bandwidth) -> Bandwidth {
        let noisy = if self.noise_sigma > 0.0 {
            let factor = (1.0 + self.noise_sigma * self.rng.standard_normal()).max(0.0);
            Bandwidth::from_bps(measured.as_bps() * factor)
        } else {
            measured
        };
        self.series.push(time, noisy.as_bps());
        self.battery.update(noisy.as_bps());
        noisy
    }

    /// The current NWS forecast of path bandwidth, if warmed up.
    pub fn forecast(&self) -> Option<Bandwidth> {
        self.battery
            .forecast()
            .map(|bps| Bandwidth::from_bps(bps.max(0.0)))
    }

    /// The latest raw measurement.
    pub fn latest(&self) -> Option<Bandwidth> {
        self.series.latest().map(|s| Bandwidth::from_bps(s.value))
    }

    /// The paper's `BW_P` factor: forecast bandwidth divided by the highest
    /// theoretical bandwidth, clamped to `[0, 1]`.
    pub fn bandwidth_fraction(&self) -> Option<f64> {
        self.forecast()
            .map(|f| (f.as_bps() / self.theoretical.as_bps()).clamp(0.0, 1.0))
    }

    /// The stored measurement series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The forecaster battery (for accuracy reports).
    pub fn battery(&self) -> &MetaForecaster {
        &self.battery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagrid_simnet::topology::Topology;

    fn nodes() -> (NodeId, NodeId) {
        let mut t = Topology::new();
        (t.add_node("a"), t.add_node("b"))
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn noiseless_sensor_stores_exact_values() {
        let (a, b) = nodes();
        let mut s = BandwidthSensor::new(
            a,
            b,
            Bandwidth::from_mbps(100.0),
            0.0,
            SimRng::seed_from_u64(1),
        );
        let stored = s.record(t(1.0), Bandwidth::from_mbps(40.0));
        assert_eq!(stored.as_mbps(), 40.0);
        assert_eq!(s.latest().unwrap().as_mbps(), 40.0);
        assert_eq!(s.series().len(), 1);
    }

    #[test]
    fn noisy_sensor_perturbs_but_stays_nonnegative() {
        let (a, b) = nodes();
        let mut s = BandwidthSensor::new(
            a,
            b,
            Bandwidth::from_mbps(100.0),
            0.10,
            SimRng::seed_from_u64(7),
        );
        let mut any_different = false;
        for i in 0..100 {
            let stored = s.record(t(i as f64), Bandwidth::from_mbps(50.0));
            assert!(stored.as_bps() >= 0.0);
            if (stored.as_mbps() - 50.0).abs() > 1e-9 {
                any_different = true;
            }
        }
        assert!(any_different, "noise should perturb measurements");
        // Forecast should still hover near the true 50 Mbps.
        let f = s.forecast().unwrap().as_mbps();
        assert!((f - 50.0).abs() < 5.0, "forecast {f}");
    }

    #[test]
    fn fraction_clamps_to_unit_interval() {
        let (a, b) = nodes();
        let mut s = BandwidthSensor::new(
            a,
            b,
            Bandwidth::from_mbps(100.0),
            0.0,
            SimRng::seed_from_u64(1),
        );
        assert_eq!(s.bandwidth_fraction(), None);
        s.record(t(1.0), Bandwidth::from_mbps(150.0)); // over-measurement
        assert_eq!(s.bandwidth_fraction(), Some(1.0));
    }

    #[test]
    fn forecast_tracks_changing_conditions() {
        let (a, b) = nodes();
        let mut s = BandwidthSensor::new(
            a,
            b,
            Bandwidth::from_mbps(100.0),
            0.0,
            SimRng::seed_from_u64(1),
        );
        for i in 0..30 {
            s.record(t(i as f64), Bandwidth::from_mbps(80.0));
        }
        for i in 30..60 {
            s.record(t(i as f64), Bandwidth::from_mbps(20.0));
        }
        let f = s.forecast().unwrap().as_mbps();
        assert!(f < 40.0, "forecast {f} should have adapted downwards");
    }
}
