//! Simulated hosts.
//!
//! A [`SimHost`] pairs a hardware description ([`HostSpec`]) with two
//! running utilisation processes (CPU and disk I/O) and a bounded history
//! of samples. The Data Grid orchestrator advances every host on a fixed
//! monitoring interval and reads `cpu_idle` / `io_idle` — the same two
//! numbers the paper obtains from MDS and sysstat — plus the endpoint rate
//! limits a transfer experiences.

use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_simnet::topology::Bandwidth;

use crate::disk::DiskSpec;
use crate::load::{LoadModel, LoadProcess};

/// Identifier of a host within a grid. Assigned by the owning registry
/// (one per topology node that runs services).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl HostId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Static hardware description of a host.
///
/// ```
/// use datagrid_sysmon::host::HostSpec;
///
/// let spec = HostSpec::new("alpha1").with_cpu(2, 2.0).with_memory_mb(1024);
/// assert_eq!(spec.cores, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Host name (matches the topology node name).
    pub name: String,
    /// Number of CPU cores.
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Main memory in MiB.
    pub memory_mb: u64,
    /// Attached storage.
    pub disk: DiskSpec,
}

impl HostSpec {
    /// Creates a spec with commodity 2005 defaults (1 core @ 2 GHz, 512 MiB,
    /// 60 GB IDE disk).
    pub fn new(name: impl Into<String>) -> Self {
        HostSpec {
            name: name.into(),
            cores: 1,
            clock_ghz: 2.0,
            memory_mb: 512,
            disk: DiskSpec::ide_2005(60),
        }
    }

    /// Sets core count and clock.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the clock is not positive.
    pub fn with_cpu(mut self, cores: u32, clock_ghz: f64) -> Self {
        assert!(cores > 0, "a host needs at least one core");
        assert!(clock_ghz > 0.0, "clock must be positive");
        self.cores = cores;
        self.clock_ghz = clock_ghz;
        self
    }

    /// Sets memory size.
    pub fn with_memory_mb(mut self, memory_mb: u64) -> Self {
        self.memory_mb = memory_mb;
        self
    }

    /// Sets the disk.
    pub fn with_disk(mut self, disk: DiskSpec) -> Self {
        self.disk = disk;
        self
    }

    /// A crude relative compute-power index (cores × clock), used to scale
    /// per-byte protocol CPU costs between the testbed's heterogeneous
    /// machines.
    pub fn compute_index(&self) -> f64 {
        f64::from(self.cores) * self.clock_ghz
    }
}

/// One monitoring sample of a host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSample {
    /// When the sample was taken.
    pub time: SimTime,
    /// CPU utilisation in `[0, 1]`.
    pub cpu_util: f64,
    /// Disk busy fraction in `[0, 1]`.
    pub io_util: f64,
}

/// A host whose CPU and disk load evolve over simulated time.
///
/// ```
/// use datagrid_simnet::rng::SimRng;
/// use datagrid_simnet::time::{SimDuration, SimTime};
/// use datagrid_sysmon::host::{HostSpec, SimHost};
/// use datagrid_sysmon::load::LoadModel;
///
/// let mut host = SimHost::new(
///     HostSpec::new("alpha1"),
///     LoadModel::Constant(0.2),
///     LoadModel::Constant(0.1),
///     SimDuration::from_secs(10),
///     SimRng::seed_from_u64(1),
/// );
/// host.advance_to(SimTime::from_secs_f64(30.0));
/// assert_eq!(host.cpu_idle(), 0.8);
/// assert_eq!(host.io_idle(), 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct SimHost {
    spec: HostSpec,
    cpu: LoadProcess,
    io: LoadProcess,
    last_advanced: SimTime,
    history: Vec<HostSample>,
    history_cap: usize,
}

impl SimHost {
    /// Default bound on retained samples.
    pub const DEFAULT_HISTORY: usize = 4096;

    /// Creates a host with the given load dynamics; both processes share
    /// the monitoring `interval` and derive independent streams from `rng`.
    pub fn new(
        spec: HostSpec,
        cpu_model: LoadModel,
        io_model: LoadModel,
        interval: SimDuration,
        rng: SimRng,
    ) -> Self {
        let cpu = LoadProcess::new(cpu_model, interval, rng.fork("cpu"));
        let io = LoadProcess::new(io_model, interval, rng.fork("io"));
        SimHost {
            spec,
            cpu,
            io,
            last_advanced: SimTime::ZERO,
            history: Vec::new(),
            history_cap: Self::DEFAULT_HISTORY,
        }
    }

    /// The hardware description.
    pub fn spec(&self) -> &HostSpec {
        &self.spec
    }

    /// Host name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Current CPU idle fraction (what MDS reports).
    pub fn cpu_idle(&self) -> f64 {
        self.cpu.idle()
    }

    /// Current disk idle fraction (what `iostat` reports).
    pub fn io_idle(&self) -> f64 {
        self.io.idle()
    }

    /// Current CPU utilisation.
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu.utilization()
    }

    /// Current disk busy fraction.
    pub fn io_utilization(&self) -> f64 {
        self.io.utilization()
    }

    /// The monitoring interval of the load processes.
    pub fn interval(&self) -> SimDuration {
        self.cpu.interval()
    }

    /// Read rate a transfer can pull off this host's disk right now.
    pub fn available_disk_read(&self) -> Bandwidth {
        self.spec.disk.available_read(self.io.utilization())
    }

    /// Write rate a transfer can push onto this host's disk right now.
    pub fn available_disk_write(&self) -> Bandwidth {
        self.spec.disk.available_write(self.io.utilization())
    }

    /// Fraction of one core currently free for protocol processing,
    /// accounting for multi-core headroom: with `c` cores at utilisation
    /// `u`, free capacity is `c (1 - u)` cores, saturating at one full core
    /// (a single GridFTP session is single-threaded).
    pub fn cpu_headroom(&self) -> f64 {
        (f64::from(self.spec.cores) * self.cpu.idle()).min(1.0)
    }

    /// Advances the load processes to `now` (stepping once per interval)
    /// and records samples. Idempotent when called twice with the same
    /// time.
    pub fn advance_to(&mut self, now: SimTime) {
        while self.last_advanced + self.interval() <= now {
            self.last_advanced += self.interval();
            self.cpu.advance();
            self.io.advance();
            if self.history.len() == self.history_cap {
                self.history.remove(0);
            }
            self.history.push(HostSample {
                time: self.last_advanced,
                cpu_util: self.cpu.utilization(),
                io_util: self.io.utilization(),
            });
        }
    }

    /// The recorded monitoring history (oldest first, bounded).
    pub fn history(&self) -> &[HostSample] {
        &self.history
    }

    /// Restricts the number of retained samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_history_cap(&mut self, cap: usize) {
        assert!(cap > 0, "history capacity must be positive");
        self.history_cap = cap;
        if self.history.len() > cap {
            let excess = self.history.len() - cap;
            self.history.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(cpu: LoadModel, io: LoadModel) -> SimHost {
        SimHost::new(
            HostSpec::new("test").with_cpu(2, 2.0),
            cpu,
            io,
            SimDuration::from_secs(10),
            SimRng::seed_from_u64(3),
        )
    }

    #[test]
    fn advance_steps_once_per_interval() {
        let mut h = host(LoadModel::Constant(0.5), LoadModel::Constant(0.25));
        h.advance_to(SimTime::from_secs_f64(35.0));
        assert_eq!(h.history().len(), 3);
        assert_eq!(h.history()[0].time, SimTime::from_secs_f64(10.0));
        assert_eq!(h.history()[2].time, SimTime::from_secs_f64(30.0));
        // Idempotent.
        h.advance_to(SimTime::from_secs_f64(35.0));
        assert_eq!(h.history().len(), 3);
    }

    #[test]
    fn idle_fractions_complement_utilisation() {
        let mut h = host(LoadModel::Constant(0.3), LoadModel::Constant(0.6));
        h.advance_to(SimTime::from_secs_f64(10.0));
        assert!((h.cpu_idle() - 0.7).abs() < 1e-12);
        assert!((h.io_idle() - 0.4).abs() < 1e-12);
        assert!((h.cpu_utilization() - 0.3).abs() < 1e-12);
        assert!((h.io_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn disk_rates_track_io_load() {
        let mut h = host(LoadModel::Constant(0.0), LoadModel::Constant(0.5));
        h.advance_to(SimTime::from_secs_f64(10.0));
        let expected = h.spec().disk.read_bandwidth.as_bps() * 0.5;
        assert!((h.available_disk_read().as_bps() - expected).abs() < 1e-6);
    }

    #[test]
    fn cpu_headroom_saturates_at_one_core() {
        let mut h = host(LoadModel::Constant(0.2), LoadModel::Constant(0.0));
        h.advance_to(SimTime::from_secs_f64(10.0));
        // 2 cores, 80% idle -> 1.6 cores free, clamped to 1.
        assert_eq!(h.cpu_headroom(), 1.0);
        let mut busy = host(LoadModel::Constant(0.8), LoadModel::Constant(0.0));
        busy.advance_to(SimTime::from_secs_f64(10.0));
        assert!((busy.cpu_headroom() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn history_is_bounded() {
        let mut h = host(LoadModel::Constant(0.1), LoadModel::Constant(0.1));
        h.set_history_cap(5);
        h.advance_to(SimTime::from_secs_f64(200.0));
        assert_eq!(h.history().len(), 5);
        assert_eq!(h.history()[4].time, SimTime::from_secs_f64(200.0));
    }

    #[test]
    fn compute_index_reflects_hardware() {
        let fast = HostSpec::new("hit0").with_cpu(1, 2.8);
        let dual = HostSpec::new("alpha1").with_cpu(2, 2.0);
        let slow = HostSpec::new("lz01").with_cpu(1, 0.9);
        assert!(dual.compute_index() > fast.compute_index());
        assert!(fast.compute_index() > slow.compute_index());
    }
}
