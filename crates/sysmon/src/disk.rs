//! Storage device model.
//!
//! The paper's third system factor is the **I/O state** of the replica
//! host: a busy disk directly reduces the rate at which GridFTP can read a
//! replica. A [`DiskSpec`] describes the device; the busy fraction itself
//! evolves as a [`LoadProcess`](crate::load::LoadProcess) owned by the
//! host, and [`DiskSpec::available_read`] converts an idle fraction into an
//! achievable read rate.

use datagrid_simnet::topology::Bandwidth;

/// Static description of a host's storage device.
///
/// ```
/// use datagrid_simnet::topology::Bandwidth;
/// use datagrid_sysmon::disk::DiskSpec;
///
/// let disk = DiskSpec::ide_2005(60);
/// assert!(disk.read_bandwidth > Bandwidth::from_mbps(100.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Device capacity in gigabytes (catalogue bookkeeping only).
    pub capacity_gb: u64,
    /// Peak sequential read bandwidth.
    pub read_bandwidth: Bandwidth,
    /// Peak sequential write bandwidth.
    pub write_bandwidth: Bandwidth,
}

impl DiskSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is zero.
    pub fn new(capacity_gb: u64, read_bandwidth: Bandwidth, write_bandwidth: Bandwidth) -> Self {
        assert!(
            read_bandwidth.as_bps() > 0.0 && write_bandwidth.as_bps() > 0.0,
            "disk bandwidth must be positive"
        );
        DiskSpec {
            capacity_gb,
            read_bandwidth,
            write_bandwidth,
        }
    }

    /// A 2005-era IDE/ATA disk (~55 MB/s sequential read, ~45 MB/s write),
    /// as in the paper's PC cluster nodes.
    pub fn ide_2005(capacity_gb: u64) -> Self {
        DiskSpec::new(
            capacity_gb,
            Bandwidth::from_bps(55.0 * 8e6),
            Bandwidth::from_bps(45.0 * 8e6),
        )
    }

    /// The fraction of peak rate a *new* sequential stream gets at the
    /// given busy level. The OS scheduler is fair: even on a saturated
    /// device a new reader receives a small share rather than zero, so
    /// transfers always make progress.
    pub const MIN_SHARE: f64 = 0.05;

    /// The read rate available to a new sequential reader when the device
    /// is `busy` busy (0 = idle, 1 = saturated; a saturated disk still
    /// yields [`DiskSpec::MIN_SHARE`] of peak).
    ///
    /// # Panics
    ///
    /// Panics if `busy` is outside `[0, 1]`.
    pub fn available_read(&self, busy: f64) -> Bandwidth {
        assert!((0.0..=1.0).contains(&busy), "busy fraction {busy}");
        Bandwidth::from_bps(self.read_bandwidth.as_bps() * (1.0 - busy).max(Self::MIN_SHARE))
    }

    /// The write rate available when the device is `busy` busy (floored
    /// like [`DiskSpec::available_read`]).
    ///
    /// # Panics
    ///
    /// Panics if `busy` is outside `[0, 1]`.
    pub fn available_write(&self, busy: f64) -> Bandwidth {
        assert!((0.0..=1.0).contains(&busy), "busy fraction {busy}");
        Bandwidth::from_bps(self.write_bandwidth.as_bps() * (1.0 - busy).max(Self::MIN_SHARE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_scales_with_idleness() {
        let d = DiskSpec::ide_2005(60);
        assert_eq!(d.available_read(0.0), d.read_bandwidth);
        let half = d.available_read(0.5);
        assert!((half.as_bps() - d.read_bandwidth.as_bps() * 0.5).abs() < 1e-6);
    }

    #[test]
    fn saturated_disk_still_serves_a_fair_share() {
        let d = DiskSpec::ide_2005(60);
        let floor = d.available_read(1.0).as_bps();
        assert!(floor > 0.0, "a new reader never starves completely");
        assert!((floor - d.read_bandwidth.as_bps() * DiskSpec::MIN_SHARE).abs() < 1e-6);
        assert_eq!(
            d.available_write(1.0).as_bps(),
            d.write_bandwidth.as_bps() * DiskSpec::MIN_SHARE
        );
    }

    #[test]
    fn write_side_too() {
        let d = DiskSpec::ide_2005(80);
        assert_eq!(d.available_write(0.0), d.write_bandwidth);
        assert!(d.available_write(0.9).as_bps() < d.write_bandwidth.as_bps() * 0.2);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn busy_out_of_range_rejected() {
        let _ = DiskSpec::ide_2005(60).available_read(1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DiskSpec::new(10, Bandwidth::ZERO, Bandwidth::from_mbps(1.0));
    }
}
