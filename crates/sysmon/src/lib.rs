//! # datagrid-sysmon
//!
//! Host resource simulation and monitoring services for the Data Grid
//! reproduction:
//!
//! * [`host`] — hardware specifications ([`host::HostSpec`]) and simulated
//!   hosts ([`host::SimHost`]) whose CPU and disk utilisation evolve as
//!   stochastic processes ([`load`], [`disk`]),
//! * [`sysstat`] — `sar`/`iostat`-style samplers over host histories (the
//!   paper measures I/O state with the sysstat utilities),
//! * [`nws`] — a reimplementation of the Network Weather Service
//!   forecaster battery with dynamic predictor selection (the paper uses
//!   NWS for bandwidth measurement and prediction),
//! * [`mds`] — a Globus MDS-style information directory (the paper reads
//!   CPU state through MDS).
//!
//! Everything is deterministic given seeds, like the rest of the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disk;
pub mod host;
pub mod load;
pub mod mds;
pub mod nws;
pub mod sysstat;

pub use host::{HostId, HostSpec, SimHost};
pub use load::{LoadModel, LoadProcess};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::disk::DiskSpec;
    pub use crate::host::{HostId, HostSample, HostSpec, SimHost};
    pub use crate::load::{LoadModel, LoadProcess};
    pub use crate::mds::MdsDirectory;
    pub use crate::nws::forecast::{Forecaster, MetaForecaster};
    pub use crate::nws::sensor::BandwidthSensor;
    pub use crate::nws::NwsRegistry;
}
