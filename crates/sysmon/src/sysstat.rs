//! sysstat-style samplers and report rendering.
//!
//! The paper reads I/O state with the Linux **sysstat** utilities (`sar`,
//! `iostat`). This module renders the simulated host histories in the same
//! shape, both as structured records and as the familiar text tables, so
//! the monitoring programs built on top (the paper's Fig. 5 GUI, our `fig5`
//! binary) have the same inputs a real deployment would.

use std::fmt::Write as _;

use datagrid_simnet::topology::Bandwidth;
use datagrid_simnet::trace::LinkTrace;

use crate::host::{HostSample, SimHost};

/// A `sar -u`-style CPU breakdown derived from total utilisation.
///
/// The simulation tracks one utilisation number; the split into
/// user/system/iowait follows fixed typical proportions for an I/O-serving
/// host (65 % user, 25 % system, 10 % iowait of the busy share).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBreakdown {
    /// %user
    pub user: f64,
    /// %system
    pub system: f64,
    /// %iowait
    pub iowait: f64,
    /// %idle
    pub idle: f64,
}

impl CpuBreakdown {
    /// Splits a total utilisation into the conventional categories.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn from_utilization(utilization: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilisation must be in [0, 1], got {utilization}"
        );
        CpuBreakdown {
            user: utilization * 0.65,
            system: utilization * 0.25,
            iowait: utilization * 0.10,
            idle: 1.0 - utilization,
        }
    }

    /// The categories sum back to 1 (within rounding).
    pub fn total(&self) -> f64 {
        self.user + self.system + self.iowait + self.idle
    }
}

/// One `iostat`-style device line derived from a host sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IostatLine {
    /// Device utilisation percentage (`%util`).
    pub util_pct: f64,
    /// Transfers per second (synthesised from utilisation and device
    /// characteristics: a saturated 2005 IDE disk does ~150 tps).
    pub tps: f64,
    /// Megabytes read per second.
    pub read_mb_s: f64,
}

impl IostatLine {
    /// Derives an iostat line from an I/O busy fraction and the disk's peak
    /// read rate in MB/s.
    pub fn from_sample(io_util: f64, peak_read_mb_s: f64) -> Self {
        IostatLine {
            util_pct: io_util * 100.0,
            tps: io_util * 150.0,
            read_mb_s: io_util * peak_read_mb_s,
        }
    }
}

/// Renders a `sar -u`-style report over a host's recorded history.
///
/// ```
/// # use datagrid_simnet::rng::SimRng;
/// # use datagrid_simnet::time::{SimDuration, SimTime};
/// # use datagrid_sysmon::host::{HostSpec, SimHost};
/// # use datagrid_sysmon::load::LoadModel;
/// use datagrid_sysmon::sysstat::sar_report;
///
/// # let mut host = SimHost::new(HostSpec::new("alpha1"), LoadModel::Constant(0.2),
/// #     LoadModel::Constant(0.1), SimDuration::from_secs(10), SimRng::seed_from_u64(1));
/// # host.advance_to(SimTime::from_secs_f64(30.0));
/// let report = sar_report(&host);
/// assert!(report.contains("%idle"));
/// ```
pub fn sar_report(host: &SimHost) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Linux (simulated) {}    CPU utilisation", host.name());
    let _ = writeln!(
        out,
        "{:>12} {:>8} {:>8} {:>8} {:>8}",
        "time", "%user", "%system", "%iowait", "%idle"
    );
    for s in host.history() {
        let b = CpuBreakdown::from_utilization(s.cpu_util);
        let _ = writeln!(
            out,
            "{:>12.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            s.time.as_secs_f64(),
            b.user * 100.0,
            b.system * 100.0,
            b.iowait * 100.0,
            b.idle * 100.0
        );
    }
    if let Some(avg) = average_cpu(host.history()) {
        let b = CpuBreakdown::from_utilization(avg);
        let _ = writeln!(
            out,
            "{:>12} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            "Average:",
            b.user * 100.0,
            b.system * 100.0,
            b.iowait * 100.0,
            b.idle * 100.0
        );
    }
    out
}

/// Renders an `iostat`-style device report over a host's history.
pub fn iostat_report(host: &SimHost) -> String {
    let peak_mb_s = host.spec().disk.read_bandwidth.as_bytes_per_sec() / 1e6;
    let mut out = String::new();
    let _ = writeln!(out, "Device report for {} (hda)", host.name());
    let _ = writeln!(
        out,
        "{:>12} {:>8} {:>10} {:>12}",
        "time", "%util", "tps", "MB_read/s"
    );
    for s in host.history() {
        let line = IostatLine::from_sample(s.io_util, peak_mb_s);
        let _ = writeln!(
            out,
            "{:>12.2} {:>8.2} {:>10.2} {:>12.2}",
            s.time.as_secs_f64(),
            line.util_pct,
            line.tps,
            line.read_mb_s
        );
    }
    out
}

/// Renders a `sar -n DEV`-style network interface report from a recorded
/// link utilisation trace (see
/// [`NetworkTrace`](datagrid_simnet::trace::NetworkTrace)).
///
/// `capacity` is the interface's line rate; throughput columns are derived
/// from utilisation × capacity.
pub fn ifstat_report(iface: &str, trace: &LinkTrace, capacity: Bandwidth) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Network report for {iface} ({capacity})");
    let _ = writeln!(
        out,
        "{:>12} {:>8} {:>12} {:>12}",
        "time", "%ifutil", "rxkB/s", "rxpck/s"
    );
    for s in trace.samples() {
        let bytes_per_s = s.utilization * capacity.as_bytes_per_sec();
        let _ = writeln!(
            out,
            "{:>12.2} {:>8.2} {:>12.1} {:>12.1}",
            s.time.as_secs_f64(),
            s.utilization * 100.0,
            bytes_per_s / 1024.0,
            bytes_per_s / 1460.0, // MTU-sized packets
        );
    }
    out
}

/// Mean CPU utilisation over a sample slice, `None` when empty.
pub fn average_cpu(samples: &[HostSample]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().map(|s| s.cpu_util).sum::<f64>() / samples.len() as f64)
    }
}

/// Mean I/O utilisation over a sample slice, `None` when empty.
pub fn average_io(samples: &[HostSample]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().map(|s| s.io_util).sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::load::LoadModel;
    use datagrid_simnet::rng::SimRng;
    use datagrid_simnet::time::{SimDuration, SimTime};

    fn host() -> SimHost {
        let mut h = SimHost::new(
            HostSpec::new("alpha1"),
            LoadModel::Constant(0.4),
            LoadModel::Constant(0.2),
            SimDuration::from_secs(10),
            SimRng::seed_from_u64(1),
        );
        h.advance_to(SimTime::from_secs_f64(30.0));
        h
    }

    #[test]
    fn breakdown_sums_to_one() {
        for u in [0.0, 0.25, 0.5, 1.0] {
            let b = CpuBreakdown::from_utilization(u);
            assert!((b.total() - 1.0).abs() < 1e-12);
            assert!((b.idle - (1.0 - u)).abs() < 1e-12);
        }
    }

    #[test]
    fn sar_report_contains_rows_and_average() {
        let r = sar_report(&host());
        assert!(r.contains("%user"));
        assert!(r.contains("Average:"));
        // Three samples at 10/20/30 s plus header lines.
        assert_eq!(r.lines().count(), 2 + 3 + 1);
        assert!(r.contains("60.00"), "idle 60% should appear: {r}");
    }

    #[test]
    fn iostat_report_reflects_busy_fraction() {
        let r = iostat_report(&host());
        assert!(r.contains("%util"));
        assert!(r.contains("20.00"), "20% util should appear: {r}");
    }

    #[test]
    fn averages_over_history() {
        let h = host();
        assert!((average_cpu(h.history()).unwrap() - 0.4).abs() < 1e-12);
        assert!((average_io(h.history()).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(average_cpu(&[]), None);
        assert_eq!(average_io(&[]), None);
    }

    #[test]
    #[should_panic(expected = "utilisation must be in [0, 1]")]
    fn breakdown_rejects_out_of_range() {
        let _ = CpuBreakdown::from_utilization(1.2);
    }
}

#[cfg(test)]
mod ifstat_tests {
    use super::*;
    use datagrid_simnet::prelude::*;
    use datagrid_simnet::trace::NetworkTrace;

    #[test]
    fn ifstat_renders_utilisation_rows() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let (fwd, _) = topo.add_duplex_link(
            a,
            b,
            LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)),
        );
        let mut sim = NetSim::new(topo, 1);
        let mut trace = NetworkTrace::watching([fwd]);
        sim.start_flow(FlowSpec::new(a, b, 10_000_000).with_cap(Bandwidth::from_mbps(80.0)));
        trace.sample(&sim);
        let report = ifstat_report(
            "eth0",
            trace.link(fwd).unwrap(),
            Bandwidth::from_mbps(100.0),
        );
        assert!(report.contains("eth0"));
        assert!(report.contains("%ifutil"));
        assert!(report.contains("80.00"), "80% utilisation row: {report}");
        // 80 Mbps = 10 MB/s ≈ 9765.6 kB/s.
        assert!(report.contains("9765.6"), "{report}");
    }
}
