//! Stochastic utilisation processes.
//!
//! A [`LoadProcess`] produces a piecewise-constant utilisation signal in
//! `[0, 1]`, advancing one step per update interval. Four model families
//! cover the behaviours seen on the paper's testbed hosts: idle desktops,
//! batch-loaded cluster nodes (bursty on/off), steadily loaded servers
//! (mean-reverting AR(1)) and machines with daily rhythm (diurnal).

use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::SimDuration;

/// A family of utilisation dynamics for CPU or disk.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Constant utilisation.
    Constant(f64),
    /// Mean-reverting AR(1): `x' = mean + phi (x - mean) + sigma ε`,
    /// clamped to `[0, 1]`.
    Ar1 {
        /// Long-run mean utilisation.
        mean: f64,
        /// Per-step persistence in `[0, 1)`.
        phi: f64,
        /// Innovation standard deviation.
        sigma: f64,
    },
    /// Two-state Markov chain alternating between a busy and an idle level
    /// (batch jobs arriving and finishing).
    MarkovOnOff {
        /// Utilisation while busy.
        busy_level: f64,
        /// Utilisation while idle.
        idle_level: f64,
        /// Per-step probability of a busy host going idle.
        p_busy_to_idle: f64,
        /// Per-step probability of an idle host going busy.
        p_idle_to_busy: f64,
    },
    /// Sinusoidal daily rhythm plus noise:
    /// `base + amplitude sin(2π step / period_steps) + sigma ε`.
    Diurnal {
        /// Mean utilisation.
        base: f64,
        /// Sinusoid amplitude.
        amplitude: f64,
        /// Steps per full cycle.
        period_steps: u64,
        /// Noise standard deviation.
        sigma: f64,
    },
    /// Replays a recorded utilisation trace, cycling when exhausted —
    /// for reproducing measured load patterns exactly.
    Trace(Vec<f64>),
}

impl LoadModel {
    fn validate(&self) {
        let check = |x: f64, what: &str| {
            assert!(
                (0.0..=1.0).contains(&x),
                "{what} must be in [0, 1], got {x}"
            );
        };
        match *self {
            LoadModel::Constant(u) => check(u, "constant utilisation"),
            LoadModel::Ar1 { mean, phi, sigma } => {
                check(mean, "AR(1) mean");
                assert!(
                    (0.0..1.0).contains(&phi),
                    "phi must be in [0, 1), got {phi}"
                );
                assert!(sigma >= 0.0, "sigma must be non-negative");
            }
            LoadModel::MarkovOnOff {
                busy_level,
                idle_level,
                p_busy_to_idle,
                p_idle_to_busy,
            } => {
                check(busy_level, "busy level");
                check(idle_level, "idle level");
                check(p_busy_to_idle, "busy->idle probability");
                check(p_idle_to_busy, "idle->busy probability");
            }
            LoadModel::Diurnal {
                base,
                amplitude,
                period_steps,
                sigma,
            } => {
                check(base, "diurnal base");
                assert!(amplitude >= 0.0, "amplitude must be non-negative");
                assert!(period_steps > 0, "period must be positive");
                assert!(sigma >= 0.0, "sigma must be non-negative");
            }
            LoadModel::Trace(ref samples) => {
                assert!(!samples.is_empty(), "a trace needs at least one sample");
                for &u in samples {
                    check(u, "trace sample");
                }
            }
        }
    }

    fn initial(&self) -> f64 {
        match *self {
            LoadModel::Constant(u) => u,
            LoadModel::Ar1 { mean, .. } => mean,
            LoadModel::MarkovOnOff { idle_level, .. } => idle_level,
            LoadModel::Diurnal { base, .. } => base,
            LoadModel::Trace(ref samples) => samples[0],
        }
    }
}

/// A running utilisation process: one value per update interval,
/// deterministic given its [`SimRng`] stream.
///
/// ```
/// use datagrid_simnet::rng::SimRng;
/// use datagrid_simnet::time::SimDuration;
/// use datagrid_sysmon::load::{LoadModel, LoadProcess};
///
/// let model = LoadModel::Ar1 { mean: 0.3, phi: 0.9, sigma: 0.05 };
/// let mut p = LoadProcess::new(model, SimDuration::from_secs(10), SimRng::seed_from_u64(1));
/// let u = p.advance();
/// assert!((0.0..=1.0).contains(&u));
/// assert_eq!(p.utilization(), u);
/// ```
#[derive(Debug, Clone)]
pub struct LoadProcess {
    model: LoadModel,
    interval: SimDuration,
    rng: SimRng,
    current: f64,
    busy: bool,
    step: u64,
}

impl LoadProcess {
    /// Creates a process; the initial value is the model's resting level.
    ///
    /// # Panics
    ///
    /// Panics if the model parameters are out of range or the interval is
    /// zero.
    pub fn new(model: LoadModel, interval: SimDuration, rng: SimRng) -> Self {
        model.validate();
        assert!(!interval.is_zero(), "update interval must be positive");
        let current = model.initial();
        LoadProcess {
            model,
            interval,
            rng,
            current,
            busy: false,
            step: 0,
        }
    }

    /// A constant process (handy in tests and calibration).
    pub fn constant(utilization: f64) -> Self {
        LoadProcess::new(
            LoadModel::Constant(utilization),
            SimDuration::from_secs(1),
            SimRng::seed_from_u64(0),
        )
    }

    /// Current utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.current
    }

    /// Current idle fraction in `[0, 1]` (what MDS/sysstat report).
    pub fn idle(&self) -> f64 {
        1.0 - self.current
    }

    /// The spacing between updates.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Advances one step and returns the new utilisation.
    pub fn advance(&mut self) -> f64 {
        self.step += 1;
        self.current = match self.model {
            LoadModel::Constant(u) => u,
            LoadModel::Ar1 { mean, phi, sigma } => {
                let next = mean + phi * (self.current - mean) + sigma * self.rng.standard_normal();
                next.clamp(0.0, 1.0)
            }
            LoadModel::MarkovOnOff {
                busy_level,
                idle_level,
                p_busy_to_idle,
                p_idle_to_busy,
            } => {
                if self.busy {
                    if self.rng.chance(p_busy_to_idle) {
                        self.busy = false;
                    }
                } else if self.rng.chance(p_idle_to_busy) {
                    self.busy = true;
                }
                if self.busy {
                    busy_level
                } else {
                    idle_level
                }
            }
            LoadModel::Diurnal {
                base,
                amplitude,
                period_steps,
                sigma,
            } => {
                let phase =
                    std::f64::consts::TAU * (self.step % period_steps) as f64 / period_steps as f64;
                (base + amplitude * phase.sin() + sigma * self.rng.standard_normal())
                    .clamp(0.0, 1.0)
            }
            LoadModel::Trace(ref samples) => samples[(self.step as usize - 1) % samples.len()],
        };
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn constant_stays_constant() {
        let mut p = LoadProcess::constant(0.25);
        for _ in 0..10 {
            assert_eq!(p.advance(), 0.25);
        }
        assert_eq!(p.idle(), 0.75);
    }

    #[test]
    fn ar1_stays_in_bounds_and_reverts() {
        let model = LoadModel::Ar1 {
            mean: 0.4,
            phi: 0.8,
            sigma: 0.1,
        };
        let mut p = LoadProcess::new(model, secs(10), rng());
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let u = p.advance();
            assert!((0.0..=1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.4).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn markov_alternates_between_levels() {
        let model = LoadModel::MarkovOnOff {
            busy_level: 0.9,
            idle_level: 0.1,
            p_busy_to_idle: 0.3,
            p_idle_to_busy: 0.3,
        };
        let mut p = LoadProcess::new(model, secs(10), rng());
        let mut saw_busy = false;
        let mut saw_idle = false;
        for _ in 0..500 {
            let level = p.advance();
            if level == 0.9 {
                saw_busy = true;
            } else if level == 0.1 {
                saw_idle = true;
            } else {
                panic!("unexpected level {level}");
            }
        }
        assert!(saw_busy && saw_idle);
    }

    #[test]
    fn diurnal_cycles() {
        let model = LoadModel::Diurnal {
            base: 0.5,
            amplitude: 0.3,
            period_steps: 24,
            sigma: 0.0,
        };
        let mut p = LoadProcess::new(model, secs(3600), rng());
        // Peak a quarter of the way through the cycle.
        let mut values = Vec::new();
        for _ in 0..24 {
            values.push(p.advance());
        }
        let peak = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let trough = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((peak - 0.8).abs() < 1e-9, "peak {peak}");
        assert!((trough - 0.2).abs() < 1e-9, "trough {trough}");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = LoadModel::Ar1 {
            mean: 0.5,
            phi: 0.9,
            sigma: 0.2,
        };
        let mut a = LoadProcess::new(model.clone(), secs(1), SimRng::seed_from_u64(5));
        let mut b = LoadProcess::new(model, secs(1), SimRng::seed_from_u64(5));
        for _ in 0..100 {
            assert_eq!(a.advance(), b.advance());
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_constant_rejected() {
        let _ = LoadProcess::constant(1.5);
    }

    #[test]
    #[should_panic(expected = "update interval")]
    fn zero_interval_rejected() {
        let _ = LoadProcess::new(LoadModel::Constant(0.1), SimDuration::ZERO, rng());
    }
}

#[cfg(test)]
mod trace_model_tests {
    use super::*;

    #[test]
    fn trace_replays_and_cycles() {
        let model = LoadModel::Trace(vec![0.1, 0.5, 0.9]);
        let mut p = LoadProcess::new(model, SimDuration::from_secs(1), SimRng::seed_from_u64(1));
        assert_eq!(p.utilization(), 0.1); // initial = first sample
        let seen: Vec<f64> = (0..7).map(|_| p.advance()).collect();
        assert_eq!(seen, vec![0.1, 0.5, 0.9, 0.1, 0.5, 0.9, 0.1]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        let _ = LoadProcess::new(
            LoadModel::Trace(Vec::new()),
            SimDuration::from_secs(1),
            SimRng::seed_from_u64(1),
        );
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_trace_rejected() {
        let _ = LoadProcess::new(
            LoadModel::Trace(vec![0.5, 1.4]),
            SimDuration::from_secs(1),
            SimRng::seed_from_u64(1),
        );
    }
}
