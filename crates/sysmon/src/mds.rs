//! A Globus MDS-style information directory.
//!
//! The paper obtains CPU state through the Globus Toolkit's Monitoring and
//! Discovery Service. [`MdsDirectory`] plays that role: hosts register
//! their static description once, push fresh utilisation numbers on every
//! monitoring tick, and consumers query by host name.

use std::collections::HashMap;

use datagrid_simnet::time::SimTime;

use crate::host::{HostId, SimHost};

/// One host's registered information.
#[derive(Debug, Clone, PartialEq)]
pub struct MdsRecord {
    /// Registry id of the host.
    pub host: HostId,
    /// Host name.
    pub name: String,
    /// Core count.
    pub cores: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Memory in MiB.
    pub memory_mb: u64,
    /// Latest CPU idle fraction.
    pub cpu_idle: f64,
    /// Latest disk idle fraction.
    pub io_idle: f64,
    /// When the dynamic fields were last refreshed.
    pub updated: SimTime,
}

/// The information directory: register once, refresh often, query by name.
///
/// ```
/// use datagrid_simnet::rng::SimRng;
/// use datagrid_simnet::time::{SimDuration, SimTime};
/// use datagrid_sysmon::host::{HostId, HostSpec, SimHost};
/// use datagrid_sysmon::load::LoadModel;
/// use datagrid_sysmon::mds::MdsDirectory;
///
/// let host = SimHost::new(
///     HostSpec::new("alpha1"),
///     LoadModel::Constant(0.2),
///     LoadModel::Constant(0.0),
///     SimDuration::from_secs(10),
///     SimRng::seed_from_u64(1),
/// );
/// let mut mds = MdsDirectory::new();
/// mds.register(HostId(0), &host);
/// mds.refresh(HostId(0), &host, SimTime::ZERO);
/// assert_eq!(mds.lookup("alpha1").unwrap().cpu_idle, 0.8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MdsDirectory {
    by_name: HashMap<String, MdsRecord>,
}

impl MdsDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        MdsDirectory::default()
    }

    /// Registers (or re-registers) a host.
    pub fn register(&mut self, id: HostId, host: &SimHost) {
        let spec = host.spec();
        self.by_name.insert(
            spec.name.clone(),
            MdsRecord {
                host: id,
                name: spec.name.clone(),
                cores: spec.cores,
                clock_ghz: spec.clock_ghz,
                memory_mb: spec.memory_mb,
                cpu_idle: host.cpu_idle(),
                io_idle: host.io_idle(),
                updated: SimTime::ZERO,
            },
        );
    }

    /// Refreshes a registered host's dynamic fields.
    ///
    /// # Panics
    ///
    /// Panics if the host was never registered.
    pub fn refresh(&mut self, id: HostId, host: &SimHost, now: SimTime) {
        let rec = self
            .by_name
            .get_mut(host.name())
            .unwrap_or_else(|| panic!("host {} not registered with MDS", host.name()));
        assert_eq!(rec.host, id, "host id changed between register and refresh");
        rec.cpu_idle = host.cpu_idle();
        rec.io_idle = host.io_idle();
        rec.updated = now;
    }

    /// Looks up a host by name.
    pub fn lookup(&self, name: &str) -> Option<&MdsRecord> {
        self.by_name.get(name)
    }

    /// All registered records in name order (deterministic iteration).
    pub fn records(&self) -> Vec<&MdsRecord> {
        let mut v: Vec<&MdsRecord> = self.by_name.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::load::LoadModel;
    use datagrid_simnet::rng::SimRng;
    use datagrid_simnet::time::SimDuration;

    fn host(name: &str, cpu: f64, io: f64) -> SimHost {
        SimHost::new(
            HostSpec::new(name).with_cpu(2, 2.0),
            LoadModel::Constant(cpu),
            LoadModel::Constant(io),
            SimDuration::from_secs(10),
            SimRng::seed_from_u64(1),
        )
    }

    #[test]
    fn register_and_lookup() {
        let h = host("alpha1", 0.3, 0.1);
        let mut mds = MdsDirectory::new();
        mds.register(HostId(0), &h);
        let rec = mds.lookup("alpha1").unwrap();
        assert_eq!(rec.cores, 2);
        assert!((rec.cpu_idle - 0.7).abs() < 1e-12);
        assert!(mds.lookup("nope").is_none());
    }

    #[test]
    fn refresh_updates_dynamic_fields() {
        let mut h = host("hit0", 0.0, 0.0);
        let mut mds = MdsDirectory::new();
        mds.register(HostId(3), &h);
        h.advance_to(SimTime::from_secs_f64(10.0));
        mds.refresh(HostId(3), &h, SimTime::from_secs_f64(10.0));
        let rec = mds.lookup("hit0").unwrap();
        assert_eq!(rec.updated, SimTime::from_secs_f64(10.0));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn refresh_unregistered_panics() {
        let h = host("lz01", 0.0, 0.0);
        let mut mds = MdsDirectory::new();
        mds.refresh(HostId(0), &h, SimTime::ZERO);
    }

    #[test]
    fn records_sorted_by_name() {
        let mut mds = MdsDirectory::new();
        mds.register(HostId(0), &host("zeta", 0.0, 0.0));
        mds.register(HostId(1), &host("alpha", 0.0, 0.0));
        let names: Vec<&str> = mds.records().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(mds.len(), 2);
    }
}
