//! Regression: a bench-style sweep run through [`par_map`] with several
//! workers produces output byte-identical to the serial run.
//!
//! This is the contract the reproducer binaries (`fig3`, `fig4`,
//! `table1`, `ablation_*`) rely on: every sweep cell builds its own grid
//! from the shared seed, so worker scheduling must never leak into the
//! rendered tables. The test lives in its own integration-test binary so
//! setting `DATAGRID_JOBS` cannot race with other tests.

use datagrid_core::grid::DataGrid;
use datagrid_gridftp::transfer::TransferRequest;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::par::{par_map, worker_count};
use datagrid_testbed::sites::{canonical_host, paper_testbed};

const MB: u64 = 1 << 20;

fn grid(seed: u64) -> DataGrid {
    let mut grid = paper_testbed(seed).build();
    grid.warm_up(SimDuration::from_secs(5));
    grid
}

fn run_cell(seed: u64, (size_mb, parallelism): (u64, u32)) -> String {
    let mut grid = grid(seed);
    let src = grid.host_id(canonical_host("alpha01")).expect("alpha01");
    let dst = grid.host_id(canonical_host("gridhit3")).expect("gridhit3");
    let secs = grid
        .transfer_between(
            src,
            dst,
            TransferRequest::new(size_mb * MB).with_parallelism(parallelism),
        )
        .expect("transfer runs")
        .duration()
        .as_secs_f64();
    format!("{size_mb} MB x{parallelism}: {secs:.3} s")
}

#[test]
fn parallel_sweep_output_is_byte_identical_to_serial() {
    let seed = 20050905;
    let cells: Vec<(u64, u32)> = [8u64, 16]
        .iter()
        .flat_map(|&mb| [1u32, 4].map(|p| (mb, p)))
        .collect();

    let serial: Vec<String> = cells.iter().map(|&cell| run_cell(seed, cell)).collect();

    std::env::set_var("DATAGRID_JOBS", "3");
    assert_eq!(worker_count(), 3, "DATAGRID_JOBS override in effect");
    let parallel = par_map(cells, |cell| run_cell(seed, cell));
    std::env::remove_var("DATAGRID_JOBS");

    assert_eq!(serial, parallel);
}
