//! Property tests for the concurrent replay engine: over random star
//! topologies and client counts, every replayed fetch must either
//! deliver its full file or end `Failed` (the per-job analogue of
//! `AllReplicasFailed`), no flow may hang, and the engine's active flow
//! count must return to zero once the replay drains.

use datagrid_core::prelude::{
    DataGrid, FetchOptions, GridBuilder, RecoveryOptions, ReplayJob, ReplayStatus,
};
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_simnet::topology::{Bandwidth, LinkSpec};
use datagrid_sysmon::host::HostSpec;
use datagrid_sysmon::load::LoadModel;
use proptest::prelude::*;

/// A random star grid: `hosts` leaf hosts around one switch, each uplink
/// drawn from `mbps` (index into a small ladder so the strategy stays
/// integral). No background traffic and no monitored paths, so the only
/// flows are the replay's own transfers and they must drain completely.
fn star_grid(seed: u64, mbps_idx: &[usize]) -> DataGrid {
    const LADDER: [f64; 4] = [10.0, 30.0, 100.0, 1000.0];
    let mut b = GridBuilder::new(seed);
    let hub = b.add_switch("hub");
    let nodes: Vec<_> = mbps_idx
        .iter()
        .enumerate()
        .map(|(i, idx)| {
            let n = b.add_host(
                HostSpec::new(format!("h{i}")),
                LoadModel::Constant(0.2),
                LoadModel::Constant(0.1),
            );
            b.topology_mut().add_duplex_link(
                n,
                hub,
                LinkSpec::new(
                    Bandwidth::from_mbps(LADDER[idx % LADDER.len()]),
                    SimDuration::from_millis(2),
                ),
            );
            n
        })
        .collect();
    let _ = nodes;
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every replayed fetch reaches a terminal state with the right byte
    /// count, and the engine has no live flows left afterwards.
    #[test]
    fn replay_drains_with_correct_bytes(
        seed in 0u64..1_000_000,
        mbps_idx in proptest::collection::vec(0usize..4, 3..8),
        files in proptest::collection::vec((1u64..64, 0usize..8, 0usize..8), 1..6),
        clients in proptest::collection::vec((0usize..8, 0usize..6, 0u64..30), 1..12),
    ) {
        let mut grid = star_grid(seed, &mbps_idx);
        let hosts = mbps_idx.len();
        // Register each file on one or two hosts.
        let mut sizes = Vec::new();
        for (fi, (mb, h1, h2)) in files.iter().enumerate() {
            let lfn = format!("file-{fi}");
            let bytes = mb * (1 << 20);
            grid.catalog_mut()
                .register_logical(lfn.parse().unwrap(), bytes)
                .unwrap();
            grid.place_replica(&lfn, &format!("h{}", h1 % hosts)).unwrap();
            let second = h2 % hosts;
            if second != h1 % hosts {
                grid.place_replica(&lfn, &format!("h{second}")).unwrap();
            }
            sizes.push(bytes);
        }
        grid.warm_up(SimDuration::from_secs(20));
        let jobs: Vec<ReplayJob> = clients
            .iter()
            .map(|(host, file, at_s)| ReplayJob {
                at: SimTime::from_secs_f64(20.0 + *at_s as f64),
                client: grid.host_id(&format!("h{}", host % hosts)).unwrap(),
                lfn: format!("file-{}", file % files.len()),
            })
            .collect();
        let report = grid
            .replay_concurrent(&jobs, FetchOptions::default(), &RecoveryOptions::default())
            .unwrap();
        prop_assert_eq!(report.outcomes.len(), jobs.len());
        for outcome in &report.outcomes {
            let fi: usize = outcome.lfn["file-".len()..].parse().unwrap();
            match &outcome.status {
                ReplayStatus::Completed { bytes, .. } => {
                    prop_assert_eq!(*bytes, sizes[fi], "full file must be delivered");
                    prop_assert!(outcome.finished >= outcome.submitted);
                }
                ReplayStatus::Failed { failed } => {
                    // Healthy grid, no faults: nothing should fail, but if
                    // the policy ever abandons, the record must name the
                    // replicas it gave up on.
                    prop_assert!(!failed.is_empty());
                }
            }
        }
        // No hung flows: the replay loop drained everything it started.
        prop_assert_eq!(grid.network().active_flow_count(), 0,
            "active flow count must return to zero after the replay drains");
        let stats = grid.network().stats();
        prop_assert_eq!(stats.flows_started, stats.flows_completed + stats.flows_dropped);
    }

    /// Replaying the same jobs twice on identically seeded grids gives
    /// identical outcome sequences (the engine itself is deterministic,
    /// independent of the workload generator).
    #[test]
    fn replay_engine_is_deterministic(
        seed in 0u64..1_000_000,
        clients in 2usize..10,
    ) {
        let run = || {
            let mut grid = star_grid(seed, &[1, 2, 3, 2]);
            grid.catalog_mut()
                .register_logical("f".parse().unwrap(), 8 << 20)
                .unwrap();
            grid.place_replica("f", "h0").unwrap();
            grid.place_replica("f", "h2").unwrap();
            grid.warm_up(SimDuration::from_secs(20));
            let jobs: Vec<ReplayJob> = (0..clients)
                .map(|c| ReplayJob {
                    at: SimTime::from_secs_f64(20.0 + c as f64),
                    client: grid.host_id(&format!("h{}", 1 + (c & 1) * 2)).unwrap(),
                    lfn: "f".to_string(),
                })
                .collect();
            let report = grid
                .replay_concurrent(&jobs, FetchOptions::default(), &RecoveryOptions::default())
                .unwrap();
            report
                .outcomes
                .iter()
                .map(|o| (o.client.clone(), o.finished, o.attempts))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
