//! The fuzz harness's own contract: everything it prints is a pure
//! function of the scenario code. Same seed — same generated world, same
//! divergence report, same shrunk reproducer; different seeds generate
//! different worlds.

use datagrid_testbed::fuzz::{
    check_scenario, render_divergence_report, run_scenario, shrink, FuzzSpec, BASELINE,
};

/// A corpus draw with enough clients that `--break-oracle` sabotage
/// triggers (the sabotage fires at three or more clients).
fn sabotage_prone(seed: u64) -> FuzzSpec {
    (0..64)
        .map(|i| FuzzSpec::from_corpus(seed, i))
        .find(|s| s.clients >= 4 && s.faults)
        .expect("corpus contains a faulted scenario with >= 4 clients")
}

#[test]
fn same_seed_regenerates_the_same_world() {
    for index in [0, 7, 31] {
        let a = FuzzSpec::from_corpus(42, index);
        let b = FuzzSpec::from_corpus(42, index);
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
    }
}

#[test]
fn different_seeds_generate_different_worlds() {
    let a = FuzzSpec::from_corpus(42, 0);
    let b = FuzzSpec::from_corpus(43, 0);
    // The packed dimensions may coincide, but the seeded world must not.
    assert_ne!(a.describe(), b.describe());
}

#[test]
fn replay_is_byte_identical() {
    let spec = FuzzSpec::from_corpus(7, 3);
    let first = run_scenario(&spec, &BASELINE);
    let second = run_scenario(&spec, &BASELINE);
    assert_eq!(first.completion_set, second.completion_set);
    assert_eq!(first.report, second.report);
    assert_eq!(first.metrics_text, second.metrics_text);
    assert_eq!(first.metrics_json, second.metrics_json);
    assert_eq!(first.events_jsonl, second.events_jsonl);
    assert_eq!(first.audit_text, second.audit_text);
    assert_eq!(first.audit_jsonl, second.audit_jsonl);
}

#[test]
fn replay_round_trips_through_the_packed_code() {
    let spec = FuzzSpec::from_corpus(7, 5);
    let code = spec.code();
    let decoded = FuzzSpec::from_code(code).expect("code decodes");
    assert_eq!(decoded, spec);
    assert_eq!(
        run_scenario(&spec, &BASELINE).completion_set,
        run_scenario(&decoded, &BASELINE).completion_set,
    );
}

#[test]
fn divergence_report_is_deterministic() {
    let spec = sabotage_prone(11);
    let divs_a = check_scenario(&spec, true);
    let divs_b = check_scenario(&spec, true);
    assert!(!divs_a.is_empty(), "sabotage must diverge");
    assert_eq!(divs_a, divs_b);

    let (shrunk_a, sd_a) = shrink(&spec, true);
    let (shrunk_b, sd_b) = shrink(&spec, true);
    assert_eq!(shrunk_a, shrunk_b);
    assert_eq!(
        render_divergence_report(&spec, &divs_a, &shrunk_a, &sd_a),
        render_divergence_report(&spec, &divs_b, &shrunk_b, &sd_b),
    );
}

#[test]
fn shrunk_reproducer_is_minimal_and_replayable() {
    let spec = sabotage_prone(13);
    let (shrunk, divs) = shrink(&spec, true);
    // The sabotage trigger is exactly `clients >= 3` with every other
    // dimension irrelevant, so a correct shrinker lands on the floor.
    assert_eq!(shrunk.clients, 3);
    assert_eq!(shrunk.files, 1);
    assert_eq!(shrunk.requests_per_client, 1);
    assert!(!shrunk.faults);
    assert!(!divs.is_empty());
    // Replaying from the printed code reproduces the divergence exactly.
    let replayed = FuzzSpec::from_code(shrunk.code()).expect("reproducer code decodes");
    assert_eq!(check_scenario(&replayed, true), divs);
    // ... and the divergence is the harness's fault, not the engines'.
    assert!(check_scenario(&replayed, false).is_empty());
}
