//! Deterministic differential fuzzing of the solver and replay engines.
//!
//! Every scale feature since PR 3 (incremental component solves, event
//! cohort batching, per-solve validation, contention-aware selection)
//! promises some flavour of observable equivalence with a simpler
//! baseline. This module turns those promises into a seeded fuzz harness:
//! a single packed code ([`FuzzSpec::code`]) generates a random topology,
//! fault schedule and multi-client replay workload; the scenario runs
//! through paired configurations ([`PAIRS`]); and each pair's oracle
//! diffs the observable surfaces (event log, metrics, audit, BENCH-style
//! report body, completion set). On divergence the scenario shrinks
//! (fewer clients/files/requests, faults dropped) to a minimal reproducer
//! whose code replays the run byte-identically — `fuzz --replay <code>`.
//!
//! The oracles, strongest first:
//!
//! * **batching** (cohort batching on vs off) — byte-identical on every
//!   public surface; only the solver work counters (`simnet.*solves*`,
//!   cohort counts) may differ, exactly the PR 7 equivalence claim.
//! * **validation** (per-solve certification on vs off) — byte-identical
//!   everywhere except the two audit counters the validator itself
//!   maintains (`simnet.transitions_certified` / `transition_flows_checked`).
//! * **solver** (incremental vs full re-solves) — rates agree only to
//!   ulp-scale rounding, so timing digits may drift; the completion sets
//!   (who fetched what, successfully, with how many bytes) must agree.
//! * **selection** (static vs contention-aware scoring) — different
//!   policies pick different replicas, but on fault-free scenarios every
//!   fetch must still complete with the same payload: completion sets
//!   again. Skipped when the scenario schedules faults (failure timing
//!   is policy-dependent by design).

use std::fmt;
use std::fmt::Write as _;

use datagrid_core::grid::GridBuilder;
use datagrid_core::prelude::{DataGrid, FetchOptions, RecoveryOptions, SelectionMode};
use datagrid_simnet::engine::SolverMode;
use datagrid_simnet::fault::{FaultKind, FaultPlan, ScheduledFault};
use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_simnet::topology::{Bandwidth, LinkId, LinkSpec, NodeId};
use datagrid_sysmon::host::HostSpec;
use datagrid_sysmon::load::LoadModel;

use crate::experiment::obs_dump;
use crate::workload::{grid_workload, GridWorkload, GridWorkloadSpec};

/// Sensor warm-up before the replay starts, in seconds (three monitor
/// ticks at the default 10 s cadence).
const WARM_S: f64 = 30.0;

/// Version tag packed into the top byte of a scenario code so stale or
/// corrupted codes are rejected instead of silently decoding garbage.
const CODE_TAG: u64 = 0xFD;

/// Upper bounds for the packed dimensions (6 bits each).
const DIM_MAX: u64 = 63;

/// One fuzz scenario, fully determined by its packed code: the RNG seed
/// drives the topology, workload and fault draws; the dimension fields
/// bound the workload so the shrinker can move through scenario space
/// without touching the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Seed for every random draw (topology shape, capacities, workload,
    /// fault schedule). Only the low 32 bits are representable in the
    /// packed code.
    pub seed: u64,
    /// Concurrent logical clients (1..=63).
    pub clients: usize,
    /// Logical files in the generated catalog (1..=63).
    pub files: usize,
    /// Fetches issued by each client (1..=63).
    pub requests_per_client: usize,
    /// Whether a random fault schedule is installed after warm-up.
    pub faults: bool,
}

impl FuzzSpec {
    /// Draws the `index`-th corpus scenario from `corpus_seed`: dimensions
    /// small enough that a few hundred scenarios (times the paired runs)
    /// finish inside a CI smoke budget, but varied enough to cross the
    /// component-coupling, failover and cache-invalidation paths.
    pub fn from_corpus(corpus_seed: u64, index: u64) -> FuzzSpec {
        let mut rng = SimRng::seed_from_u64(corpus_seed ^ 0xF0_22).fork(&format!("case:{index}"));
        FuzzSpec {
            seed: rng.below(1 << 32),
            clients: 2 + rng.below(5) as usize,
            files: 2 + rng.below(4) as usize,
            requests_per_client: 1 + rng.below(3) as usize,
            faults: rng.below(2) == 0,
        }
    }

    /// Packs the scenario into one `u64` so a reproducer is a single
    /// printable token: `fuzz --replay 0x....`
    pub fn code(&self) -> u64 {
        (self.seed & 0xFFFF_FFFF)
            | ((self.clients as u64).min(DIM_MAX) << 32)
            | ((self.files as u64).min(DIM_MAX) << 38)
            | ((self.requests_per_client as u64).min(DIM_MAX) << 44)
            | (u64::from(self.faults) << 50)
            | (CODE_TAG << 56)
    }

    /// Decodes a packed scenario code; `None` when the tag byte does not
    /// match (a mistyped or stale token).
    pub fn from_code(code: u64) -> Option<FuzzSpec> {
        if code >> 56 != CODE_TAG {
            return None;
        }
        let spec = FuzzSpec {
            seed: code & 0xFFFF_FFFF,
            clients: ((code >> 32) & DIM_MAX) as usize,
            files: ((code >> 38) & DIM_MAX) as usize,
            requests_per_client: ((code >> 44) & DIM_MAX) as usize,
            faults: (code >> 50) & 1 == 1,
        };
        if spec.clients == 0 || spec.files == 0 || spec.requests_per_client == 0 {
            return None;
        }
        Some(spec)
    }

    /// Deterministic one-line description of the scenario's generated
    /// world (topology dims, capacities, workload, fault count) — the
    /// fuzz log's per-scenario header, and the determinism tests' witness
    /// that equal seeds regenerate equal worlds.
    pub fn describe(&self) -> String {
        let world = World::generate(self);
        let mut out = format!(
            "scenario {self}: {} sites / {} hosts, {} links",
            world.sites,
            world.hosts.len(),
            world.link_count,
        );
        let _ = write!(
            out,
            ", {} requests over {} files, {} faults",
            world.workload.trace.len(),
            world.workload.files.len(),
            world.plan.len(),
        );
        if let Some(req) = world.workload.trace.requests().first() {
            let _ = write!(
                out,
                ", first fetch {}@{} t={}ns",
                req.lfn,
                req.client,
                req.at.as_nanos()
            );
        }
        out
    }
}

impl fmt::Display for FuzzSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "0x{:016x} (clients={} files={} requests={} faults={})",
            self.code(),
            self.clients,
            self.files,
            self.requests_per_client,
            self.faults
        )
    }
}

/// The generated world for one spec: a built grid plus everything needed
/// to replay it under any paired configuration.
struct World {
    grid: DataGrid,
    workload: GridWorkload,
    plan: FaultPlan,
    sites: usize,
    hosts: Vec<String>,
    link_count: usize,
}

impl World {
    /// Builds the random star-of-clusters grid, workload and fault plan
    /// for `spec`. Every draw forks from the spec seed, so the same spec
    /// regenerates the same world byte for byte, and paired runs share
    /// one world by construction.
    fn generate(spec: &FuzzSpec) -> World {
        let mut rng = SimRng::seed_from_u64(spec.seed ^ 0xF0_33);
        let sites = 2 + rng.below(2) as usize;
        let mut builder = GridBuilder::new(spec.seed);
        let backbone = builder.add_switch("backbone");
        let mut host_nodes: Vec<NodeId> = Vec::new();
        let mut hosts: Vec<String> = Vec::new();
        let mut spoke_links: Vec<LinkId> = Vec::new();
        let mut link_count = 0;
        for s in 0..sites {
            let hub = builder.add_switch(format!("hub{s}"));
            let (up, _) = builder.topology_mut().add_duplex_link(
                hub,
                backbone,
                LinkSpec::new(
                    Bandwidth::from_mbps(rng.uniform(50.0, 400.0)),
                    SimDuration::from_millis(2 + rng.below(14)),
                ),
            );
            spoke_links.push(up);
            link_count += 2;
            let site_hosts = 1 + rng.below(3) as usize;
            for h in 0..site_hosts {
                let name = format!("s{s}h{h}");
                let node = builder.add_host(
                    HostSpec::new(&name)
                        .with_cpu(1 + rng.below(2) as u32, rng.uniform(0.9, 2.8))
                        .with_memory_mb(256 << rng.below(3)),
                    LoadModel::Constant(rng.uniform(0.05, 0.5)),
                    LoadModel::Constant(rng.uniform(0.05, 0.4)),
                );
                let (link, _) = builder.topology_mut().add_duplex_link(
                    node,
                    hub,
                    LinkSpec::new(
                        Bandwidth::from_mbps(rng.uniform(20.0, 200.0)),
                        SimDuration::from_millis(1 + rng.below(5)),
                    ),
                );
                spoke_links.push(link);
                link_count += 2;
                host_nodes.push(node);
                hosts.push(name);
            }
        }
        builder.monitor_all_host_pairs();
        let grid = builder.build();

        let host_refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let mut wl_rng = rng.fork("workload");
        let wl_spec = GridWorkloadSpec {
            clients: spec.clients,
            files: spec.files,
            replicas_per_file: 1 + wl_rng.below(2) as usize,
            median_bytes: 2 << (20 + wl_rng.below(3)),
            requests_per_client: spec.requests_per_client,
            mean_inter_arrival: SimDuration::from_secs_f64(wl_rng.uniform(0.3, 2.0)),
        };
        let workload = grid_workload(&wl_spec, &host_refs, spec.seed ^ 0xF0_44);

        let mut plan = FaultPlan::new();
        if spec.faults {
            let mut f_rng = rng.fork("faults");
            let n = 1 + f_rng.below(2);
            for _ in 0..n {
                let at = SimTime::from_secs_f64(WARM_S + f_rng.uniform(0.1, 3.0));
                let duration = SimDuration::from_secs_f64(f_rng.uniform(0.2, 2.0));
                let kind = match f_rng.below(4) {
                    0 => FaultKind::LinkDown {
                        link: spoke_links[f_rng.below(spoke_links.len() as u64) as usize],
                    },
                    1 => FaultKind::LinkBrownout {
                        link: spoke_links[f_rng.below(spoke_links.len() as u64) as usize],
                        factor: f_rng.uniform(0.1, 0.6),
                    },
                    2 => FaultKind::HostDegraded {
                        node: host_nodes[f_rng.below(host_nodes.len() as u64) as usize],
                        factor: f_rng.uniform(0.2, 0.8),
                    },
                    // Never black out host 0: it carries the replica
                    // catalog and selection servers, whose loss is an
                    // availability scenario, not an equivalence one.
                    _ => FaultKind::HostBlackout {
                        node: host_nodes[1 + f_rng.below(host_nodes.len() as u64 - 1) as usize],
                    },
                };
                plan.push(ScheduledFault { at, duration, kind });
            }
        }

        World {
            grid,
            workload,
            plan,
            sites,
            hosts,
            link_count,
        }
    }
}

/// One side of a paired run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Re-solve scoping.
    pub solver: SolverMode,
    /// Same-instant cohort batching.
    pub batching: bool,
    /// Per-solve certification (state + transition certificates).
    pub validate: bool,
    /// Selection policy.
    pub mode: SelectionMode,
}

/// The baseline every variant is diffed against: the engine's production
/// defaults with validation off and the paper's static selection.
pub const BASELINE: RunConfig = RunConfig {
    solver: SolverMode::Incremental,
    batching: true,
    validate: false,
    mode: SelectionMode::Static,
};

/// What a pair's oracle compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Every surface must match byte for byte, after dropping
    /// `metrics.txt` lines containing one of the listed counter names
    /// (the variant is *allowed* to differ only there). The single-line
    /// `metrics.json` render is compared only when the filter is empty.
    ByteIdentical(&'static [&'static str]),
    /// Only the completion set must match (who fetched what, success flag
    /// and payload bytes).
    CompletionSets,
}

/// One paired configuration: the variant run and the equivalence oracle
/// tying it to [`BASELINE`].
#[derive(Debug, Clone, Copy)]
pub struct Pair {
    /// Stable pair name used in reports.
    pub name: &'static str,
    /// The variant configuration.
    pub variant: RunConfig,
    /// How the two runs must agree.
    pub oracle: Oracle,
    /// `false` when the pair is skipped on faulted scenarios.
    pub with_faults: bool,
}

/// Solver work counters cohort batching is allowed to move (the whole
/// point of batching is fewer solves; everything public must still
/// match). `events_processed` is in the list because draining a cohort
/// in one sweep pops a different number of queue entries than draining
/// its members one by one.
const BATCHING_COUNTERS: &[&str] = &[
    "simnet.events_processed",
    "simnet.incremental_solves",
    "simnet.full_solves",
    "simnet.solver_flows_touched",
    "simnet.event_cohorts",
    "simnet.batched_solves",
    "simnet.solves_avoided",
];

/// Audit counters only the validator maintains.
const VALIDATION_COUNTERS: &[&str] = &[
    "simnet.transitions_certified",
    "simnet.transition_flows_checked",
];

/// The four paired configurations every scenario runs through.
pub const PAIRS: [Pair; 4] = [
    Pair {
        name: "batching",
        variant: RunConfig {
            batching: false,
            ..BASELINE
        },
        oracle: Oracle::ByteIdentical(BATCHING_COUNTERS),
        with_faults: true,
    },
    Pair {
        name: "validation",
        variant: RunConfig {
            validate: true,
            ..BASELINE
        },
        oracle: Oracle::ByteIdentical(VALIDATION_COUNTERS),
        with_faults: true,
    },
    Pair {
        name: "solver",
        variant: RunConfig {
            solver: SolverMode::Full,
            ..BASELINE
        },
        oracle: Oracle::CompletionSets,
        with_faults: true,
    },
    Pair {
        name: "selection",
        variant: RunConfig {
            mode: SelectionMode::ContentionAware,
            ..BASELINE
        },
        oracle: Oracle::CompletionSets,
        with_faults: false,
    },
];

/// The observable surfaces of one run, all rendered to strings.
#[derive(Debug, Clone)]
pub struct Surfaces {
    /// Sorted per-job completion lines (client, lfn, arrival, success,
    /// bytes) — the weakest surface, shared by every oracle.
    pub completion_set: String,
    /// BENCH-style report body: public fetch/latency numbers only (no
    /// solver counters), so byte-identical pairs can diff it unfiltered.
    pub report: String,
    /// Metrics snapshot in the line-oriented text format.
    pub metrics_text: String,
    /// Metrics snapshot as one JSON line.
    pub metrics_json: String,
    /// Structured event log as JSON lines.
    pub events_jsonl: String,
    /// Selection audit, text render.
    pub audit_text: String,
    /// Selection audit, JSONL render.
    pub audit_jsonl: String,
}

/// Runs one configuration of `spec`'s world end to end and renders every
/// observable surface.
pub fn run_scenario(spec: &FuzzSpec, cfg: &RunConfig) -> Surfaces {
    let mut world = World::generate(spec);
    let grid = &mut world.grid;
    grid.set_selection_mode(cfg.mode);
    grid.set_solver_mode(cfg.solver);
    grid.set_event_batching(cfg.batching);
    grid.set_network_validation(cfg.validate);
    world
        .workload
        .install(grid)
        .expect("generated workload installs cleanly");
    grid.warm_up(SimDuration::from_secs_f64(WARM_S));
    if !world.plan.is_empty() {
        grid.install_fault_plan(world.plan.clone());
    }
    let jobs = world.workload.jobs(grid);
    let report = grid
        .replay_concurrent(&jobs, FetchOptions::default(), &RecoveryOptions::default())
        .expect("generated workloads only fail per-job");

    let mut completion: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| {
            let ok = o.status.is_completed();
            let bytes = match &o.status {
                datagrid_core::prelude::ReplayStatus::Completed { bytes, .. } => *bytes,
                datagrid_core::prelude::ReplayStatus::Failed { .. } => 0,
            };
            format!(
                "at={} client={} lfn={} ok={} bytes={}",
                o.submitted.as_nanos(),
                o.client,
                o.lfn,
                ok,
                bytes
            )
        })
        .collect();
    completion.sort_unstable();
    let completion_set = completion.join("\n");

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"scenario\": \"0x{:016x}\",", spec.code());
    let _ = writeln!(body, "  \"fetches\": {},", report.outcomes.len());
    let _ = writeln!(body, "  \"completed\": {},", report.completed());
    let _ = writeln!(body, "  \"failed\": {},", report.failed());
    let _ = writeln!(body, "  \"makespan_ns\": {}", report.makespan().as_nanos());
    let _ = writeln!(body, "}}");

    let obs = obs_dump(grid);
    Surfaces {
        completion_set,
        report: body,
        metrics_text: obs.metrics_text,
        metrics_json: obs.metrics_json,
        events_jsonl: obs.events_jsonl,
        audit_text: obs.audit_text,
        audit_jsonl: obs.audit_jsonl,
    }
}

/// One observed disagreement between a pair's two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which pair disagreed.
    pub pair: &'static str,
    /// Which surface first differed.
    pub surface: &'static str,
    /// First differing line, rendered `line N: <baseline> != <variant>`.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pair={} surface={} {}",
            self.pair, self.surface, self.detail
        )
    }
}

/// First differing line between two renders, with enough context to read
/// the counterexample straight off the report.
fn first_diff(a: &str, b: &str) -> Option<String> {
    if a == b {
        return None;
    }
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return Some(format!("line {}: {la:?} != {lb:?}", i + 1));
        }
    }
    let (na, nb) = (a.lines().count(), b.lines().count());
    Some(format!("line counts differ: {na} != {nb}"))
}

/// Drops metrics lines carrying any of the allowed counter names.
fn filter_metrics(text: &str, allowed: &[&str]) -> String {
    text.lines()
        .filter(|line| !allowed.iter().any(|key| line.contains(key)))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Diffs a pair's two runs under its oracle. `None` means the runs agree.
fn diff_pair(pair: &Pair, base: &Surfaces, variant: &Surfaces) -> Option<Divergence> {
    let mk = |surface: &'static str, detail: String| {
        Some(Divergence {
            pair: pair.name,
            surface,
            detail,
        })
    };
    match pair.oracle {
        Oracle::CompletionSets => first_diff(&base.completion_set, &variant.completion_set)
            .and_then(|d| mk("completion_set", d)),
        Oracle::ByteIdentical(allowed) => {
            let checks: [(&'static str, &str, &str); 5] = [
                (
                    "completion_set",
                    &base.completion_set,
                    &variant.completion_set,
                ),
                ("report", &base.report, &variant.report),
                ("events_jsonl", &base.events_jsonl, &variant.events_jsonl),
                ("audit_text", &base.audit_text, &variant.audit_text),
                ("audit_jsonl", &base.audit_jsonl, &variant.audit_jsonl),
            ];
            for (surface, a, b) in checks {
                if let Some(d) = first_diff(a, b) {
                    return mk(surface, d);
                }
            }
            let (ma, mb) = (
                filter_metrics(&base.metrics_text, allowed),
                filter_metrics(&variant.metrics_text, allowed),
            );
            if let Some(d) = first_diff(&ma, &mb) {
                return mk("metrics_text", d);
            }
            if allowed.is_empty() {
                if let Some(d) = first_diff(&base.metrics_json, &variant.metrics_json) {
                    return mk("metrics_json", d);
                }
            }
            None
        }
    }
}

/// Runs every applicable pair of `spec` and returns the divergences (an
/// empty vector means all oracles agree).
///
/// `break_oracle` is the harness's own differential test: it corrupts the
/// baseline completion set on scenarios with three or more clients, so a
/// healthy harness MUST report a divergence there, shrink it to a
/// three-client reproducer, and replay it from the printed code. It
/// proves the tester can fail; it says nothing about the engines.
pub fn check_scenario(spec: &FuzzSpec, break_oracle: bool) -> Vec<Divergence> {
    let base = run_scenario(spec, &BASELINE);
    let mut divergences = Vec::new();
    for pair in &PAIRS {
        if spec.faults && !pair.with_faults {
            continue;
        }
        let variant = run_scenario(spec, &pair.variant);
        let mut base_view = base.clone();
        if break_oracle && spec.clients >= 3 {
            // Deterministic sabotage: flip the first completion line.
            base_view.completion_set = format!("SABOTAGED {}", base_view.completion_set);
        }
        if let Some(d) = diff_pair(pair, &base_view, &variant) {
            divergences.push(d);
        }
    }
    divergences
}

/// Shrinks a diverging scenario to a locally minimal reproducer: each
/// round tries (in order) dropping faults, halving then decrementing
/// clients, files and requests, keeping the first candidate that still
/// diverges. Deterministic, and bounded by the dimension sizes.
pub fn shrink(spec: &FuzzSpec, break_oracle: bool) -> (FuzzSpec, Vec<Divergence>) {
    let mut current = *spec;
    let mut divergences = check_scenario(&current, break_oracle);
    assert!(
        !divergences.is_empty(),
        "shrink called on a non-diverging scenario {current}"
    );
    loop {
        let mut candidates: Vec<FuzzSpec> = Vec::new();
        if current.faults {
            candidates.push(FuzzSpec {
                faults: false,
                ..current
            });
        }
        for dim in 0..3 {
            let value = match dim {
                0 => current.clients,
                1 => current.files,
                _ => current.requests_per_client,
            };
            for next in [value / 2, value - 1] {
                if next >= 1 && next < value {
                    let mut cand = current;
                    match dim {
                        0 => cand.clients = next,
                        1 => cand.files = next,
                        _ => cand.requests_per_client = next,
                    }
                    if !candidates.contains(&cand) {
                        candidates.push(cand);
                    }
                }
            }
        }
        let mut progressed = false;
        for cand in candidates {
            let divs = check_scenario(&cand, break_oracle);
            if !divs.is_empty() {
                current = cand;
                divergences = divs;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (current, divergences);
        }
    }
}

/// Renders a divergence report for one scenario: the generated world, the
/// disagreeing pairs, the shrunk reproducer and its replay token. The
/// render is deterministic — same scenario, same bytes.
pub fn render_divergence_report(
    spec: &FuzzSpec,
    divergences: &[Divergence],
    shrunk: &FuzzSpec,
    shrunk_divergences: &[Divergence],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "DIVERGENCE in {}", spec.describe());
    for d in divergences {
        let _ = writeln!(out, "  {d}");
    }
    let _ = writeln!(out, "shrunk to {}", shrunk.describe());
    for d in shrunk_divergences {
        let _ = writeln!(out, "  {d}");
    }
    let _ = writeln!(out, "replay: fuzz --replay 0x{:016x}", shrunk.code());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for index in 0..32 {
            let spec = FuzzSpec::from_corpus(9, index);
            assert_eq!(FuzzSpec::from_code(spec.code()), Some(spec));
        }
    }

    #[test]
    fn bad_codes_are_rejected() {
        assert_eq!(FuzzSpec::from_code(0), None);
        assert_eq!(FuzzSpec::from_code(u64::MAX), None);
        // Valid tag but a zeroed clients field.
        assert_eq!(FuzzSpec::from_code(CODE_TAG << 56), None);
    }

    #[test]
    fn corpus_dimensions_stay_in_bounds() {
        for index in 0..64 {
            let spec = FuzzSpec::from_corpus(1, index);
            assert!((2..=6).contains(&spec.clients));
            assert!((2..=5).contains(&spec.files));
            assert!((1..=3).contains(&spec.requests_per_client));
            assert!(spec.seed < 1 << 32);
        }
    }

    #[test]
    fn world_generation_is_deterministic() {
        let spec = FuzzSpec::from_corpus(3, 0);
        assert_eq!(spec.describe(), spec.describe());
        let other = FuzzSpec::from_corpus(3, 1);
        assert_ne!(spec.describe(), other.describe());
    }

    #[test]
    fn scenario_agrees_across_all_pairs() {
        let spec = FuzzSpec {
            seed: 0x5EED,
            clients: 3,
            files: 3,
            requests_per_client: 2,
            faults: true,
        };
        let divergences = check_scenario(&spec, false);
        assert!(
            divergences.is_empty(),
            "unexpected divergence: {divergences:?}"
        );
    }

    #[test]
    fn broken_oracle_diverges_and_shrinks_to_minimum() {
        let spec = FuzzSpec {
            seed: 0x5EED,
            clients: 6,
            files: 4,
            requests_per_client: 2,
            faults: true,
        };
        let divergences = check_scenario(&spec, true);
        assert!(!divergences.is_empty(), "sabotage must be reported");
        let (shrunk, shrunk_divs) = shrink(&spec, true);
        assert_eq!(shrunk.clients, 3, "minimal sabotage trigger is 3 clients");
        assert_eq!(shrunk.files, 1);
        assert_eq!(shrunk.requests_per_client, 1);
        assert!(!shrunk.faults);
        assert!(!shrunk_divs.is_empty());
        // The replay token round-trips to the same scenario.
        assert_eq!(FuzzSpec::from_code(shrunk.code()), Some(shrunk));
    }
}
