//! The profile figure: hot-path phase breakdown of the grid workload.
//!
//! Runs the same multi-client replay as [`crate::gridscale`], but with the
//! grid's continuous telemetry switched on: a sim-time health timeline
//! ([`datagrid_obs::timeline`]) attached after warm-up, and the replay
//! driver's phase profiler ([`datagrid_obs::prof`]) read back after the
//! run. Each cell reports the per-phase call/item counts (settle, solve,
//! decide, dispatch, retry, failover) next to throughput rates —
//! decisions/sec and settles/sec over the cell's makespan — which is the
//! baseline any future hot-path work gets measured against.
//!
//! Everything in `BENCH_profile.json` is a pure function of the seed in
//! default builds. With the `prof-timing` feature (forwarded through
//! `datagrid-bench`), per-phase wall-clock milliseconds are added — those
//! fields, and only those, vary run to run.

use std::fmt::Write as _;

use datagrid_core::prelude::{FetchOptions, RecoveryOptions};
use datagrid_obs::prof::TIMING_ENABLED;
use datagrid_simnet::time::SimDuration;

use crate::experiment::{obs_dump, ObsDump};
use crate::gridscale::{build_cell, GridScaleConfig};
use crate::par::par_map;

/// Configuration of one profile sweep: the underlying grid workload plus
/// the timeline window width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// The grid workload each cell replays (its `timeline` field is
    /// overridden by [`ProfileConfig::window`]).
    pub grid: GridScaleConfig,
    /// Sim-time width of each health-timeline window.
    pub window: SimDuration,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            grid: GridScaleConfig::default(),
            window: SimDuration::from_secs(30),
        }
    }
}

/// One phase of a cell's profile (depth-first order, as flattened by
/// [`datagrid_obs::ProfSnapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePhase {
    /// Slash-joined path from the root (`settle/solve`).
    pub path: String,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Times the phase ran.
    pub calls: u64,
    /// Work units credited to the phase (candidates scored, bytes
    /// dispatched, solver flows touched — see the phase taxonomy in
    /// `DESIGN.md`).
    pub items: u64,
    /// Wall-clock nanoseconds (zero unless built with `prof-timing`).
    pub total_ns: u64,
    /// `total_ns` minus time spent in child phases.
    pub self_ns: u64,
}

/// The deterministic numbers of one profile cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileCell {
    /// Concurrent clients replayed in this cell.
    pub clients: usize,
    /// Selection mode label (`"static"` / `"contention-aware"`).
    pub mode: &'static str,
    /// Fetches that delivered their full file.
    pub completed: usize,
    /// Fetches that exhausted every candidate.
    pub failed: usize,
    /// Simulated seconds from replay start to the last terminal state.
    pub makespan_s: f64,
    /// Selection decisions made (initial picks plus failover re-picks).
    pub decisions: u64,
    /// Decisions per simulated second of makespan.
    pub decisions_per_sec: f64,
    /// Events settled by the replay driver (the `settle` phase's calls).
    pub settles: u64,
    /// Settles per simulated second of makespan.
    pub settles_per_sec: f64,
    /// Solver passes the engine ran (incremental + full).
    pub solves: u64,
    /// Solver passes per selection decision — the hot-path headline: how
    /// much solver work one client arrival costs. Cohort batching and the
    /// score scratch both push this down.
    pub solves_per_decision: f64,
    /// Same-instant event cohorts the engine processed.
    pub event_cohorts: u64,
    /// Cohorts whose deferred rate changes settled in one solve.
    pub batched_solves: u64,
    /// Solver passes the cohort batching eliminated.
    pub solves_avoided: u64,
    /// Candidate rankings served from the reusable score scratch.
    pub scratch_hits: u64,
    /// Candidate rankings that had to be recomputed.
    pub scratch_misses: u64,
    /// Health-timeline windows the replay spanned.
    pub windows: usize,
    /// Per-phase breakdown, depth-first.
    pub phases: Vec<ProfilePhase>,
}

/// One executed profile cell: the numbers plus every rendered telemetry
/// surface of the cell's grid.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// The cell numbers.
    pub cell: ProfileCell,
    /// The cell's health timeline as deterministic JSON.
    pub timeline_json: String,
    /// The rendered grid health report (per-window table + hottest links).
    pub health_report: String,
    /// The phase profile as a text table.
    pub prof_text: String,
    /// The cell grid's observability export.
    pub obs: ObsDump,
}

/// A whole profile sweep, ready to render as `BENCH_profile.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The sweep's base seed.
    pub seed: u64,
    /// Timeline window width in seconds.
    pub window_secs: f64,
    /// Heap allocations observed while draining a warmed engine event
    /// loop, when the emitting binary probed it (`None` = not probed).
    /// The perf-budget gate pins this to zero: steady-state event
    /// dispatch must never touch the heap.
    pub steady_dispatch_allocs: Option<u64>,
    /// One entry per sweep cell, in input order.
    pub cells: Vec<ProfileCell>,
}

impl ProfileReport {
    /// Collects the cells of executed runs (in order).
    pub fn from_runs(seed: u64, cfg: &ProfileConfig, runs: &[ProfileRun]) -> Self {
        ProfileReport {
            seed,
            window_secs: cfg.window.as_secs_f64(),
            steady_dispatch_allocs: None,
            cells: runs.iter().map(|r| r.cell.clone()).collect(),
        }
    }

    /// Renders the `BENCH_profile.json` body. In default builds every
    /// field is deterministic (same seed ⇒ byte-identical output); with
    /// `prof-timing` the per-phase `total_ms`/`self_ms` fields are added
    /// and the top-level `"timing"` flag flips to `true`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"name\": \"profile\",\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"window_secs\": {:.6},", self.window_secs);
        let _ = writeln!(out, "  \"timing\": {},", TIMING_ENABLED);
        if let Some(allocs) = self.steady_dispatch_allocs {
            let _ = writeln!(out, "  \"steady_dispatch_allocs\": {allocs},");
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"clients\": {},", c.clients);
            let _ = writeln!(out, "      \"mode\": \"{}\",", c.mode);
            let _ = writeln!(out, "      \"completed\": {},", c.completed);
            let _ = writeln!(out, "      \"failed\": {},", c.failed);
            let _ = writeln!(out, "      \"makespan_s\": {:.6},", c.makespan_s);
            let _ = writeln!(out, "      \"decisions\": {},", c.decisions);
            let _ = writeln!(
                out,
                "      \"decisions_per_sec\": {:.6},",
                c.decisions_per_sec
            );
            let _ = writeln!(out, "      \"settles\": {},", c.settles);
            let _ = writeln!(out, "      \"settles_per_sec\": {:.6},", c.settles_per_sec);
            let _ = writeln!(out, "      \"solves\": {},", c.solves);
            let _ = writeln!(
                out,
                "      \"solves_per_decision\": {:.6},",
                c.solves_per_decision
            );
            let _ = writeln!(out, "      \"event_cohorts\": {},", c.event_cohorts);
            let _ = writeln!(out, "      \"batched_solves\": {},", c.batched_solves);
            let _ = writeln!(out, "      \"solves_avoided\": {},", c.solves_avoided);
            let _ = writeln!(out, "      \"scratch_hits\": {},", c.scratch_hits);
            let _ = writeln!(out, "      \"scratch_misses\": {},", c.scratch_misses);
            let _ = writeln!(out, "      \"windows\": {},", c.windows);
            out.push_str("      \"phases\": [\n");
            for (j, p) in c.phases.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"path\": \"{}\", \"depth\": {}, \"calls\": {}, \"items\": {}",
                    p.path, p.depth, p.calls, p.items
                );
                if TIMING_ENABLED {
                    let _ = write!(
                        out,
                        ", \"total_ms\": {:.3}, \"self_ms\": {:.3}",
                        p.total_ns as f64 / 1e6,
                        p.self_ns as f64 / 1e6
                    );
                }
                out.push_str(if j + 1 == c.phases.len() {
                    "}\n"
                } else {
                    "},\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs one profile cell: build, warm up, attach the timeline, replay,
/// read back the profiler and every telemetry surface.
pub fn run_profile_cell(seed: u64, clients: usize, cfg: &ProfileConfig) -> ProfileRun {
    let mut gcfg = cfg.grid;
    gcfg.timeline = Some(cfg.window);
    let (mut grid, workload) = build_cell(seed, clients, &gcfg);
    let jobs = workload.jobs(&grid);
    let options = FetchOptions::default().with_parallelism(gcfg.parallelism);
    let recovery = RecoveryOptions::default();
    // Engine counters are lifetime totals; diff across the replay so the
    // cell reports replay work only, not warm-up churn.
    let pre = grid.network().stats();
    let report = grid
        .replay_concurrent(&jobs, options, &recovery)
        .expect("generated workloads only fail per-job");

    let makespan_s = report.makespan().as_secs_f64();
    let decisions = grid.metrics_snapshot().counter("selection.decisions");
    let mut stats = grid.network().stats();
    stats.incremental_solves -= pre.incremental_solves;
    stats.full_solves -= pre.full_solves;
    stats.event_cohorts -= pre.event_cohorts;
    stats.batched_solves -= pre.batched_solves;
    stats.solves_avoided -= pre.solves_avoided;
    let solves = stats.incremental_solves + stats.full_solves;
    let (scratch_hits, scratch_misses) = grid.score_scratch_stats();
    let snapshot = grid.profiler().snapshot();
    let settles = snapshot
        .phases
        .iter()
        .find(|p| p.path == "settle")
        .map_or(0, |p| p.calls);
    let phases = snapshot
        .phases
        .iter()
        .map(|p| ProfilePhase {
            path: p.path.clone(),
            depth: p.depth,
            calls: p.calls,
            items: p.items,
            total_ns: p.total_ns,
            self_ns: p.self_ns,
        })
        .collect();
    let timeline = grid.timeline().expect("build_cell attached the timeline");
    let per_sec = |n: u64| {
        if makespan_s > 0.0 {
            n as f64 / makespan_s
        } else {
            0.0
        }
    };
    let cell = ProfileCell {
        clients,
        mode: gcfg.mode.label(),
        completed: report.completed(),
        failed: report.failed(),
        makespan_s,
        decisions,
        decisions_per_sec: per_sec(decisions),
        settles,
        settles_per_sec: per_sec(settles),
        solves,
        solves_per_decision: if decisions > 0 {
            solves as f64 / decisions as f64
        } else {
            0.0
        },
        event_cohorts: stats.event_cohorts,
        batched_solves: stats.batched_solves,
        solves_avoided: stats.solves_avoided,
        scratch_hits,
        scratch_misses,
        windows: timeline.window_count(),
        phases,
    };
    ProfileRun {
        cell,
        timeline_json: timeline.render_json(),
        health_report: timeline.render_health_report(),
        prof_text: snapshot.render_text(),
        obs: obs_dump(&grid),
    }
}

/// Runs the whole profile sweep — one cell per client count — on worker
/// threads ([`par_map`]). Cells are seeded independently, so the result
/// is byte-identical to a serial sweep.
pub fn run_profile(seed: u64, client_counts: &[usize], cfg: &ProfileConfig) -> Vec<ProfileRun> {
    par_map(client_counts.to_vec(), |clients| {
        run_profile_cell(seed, clients, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ProfileConfig {
        ProfileConfig {
            grid: GridScaleConfig {
                files: 8,
                warm: SimDuration::from_secs(30),
                ..GridScaleConfig::default()
            },
            window: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn profile_cell_reports_phases_and_timeline() {
        let run = run_profile_cell(7, 4, &small_cfg());
        assert_eq!(run.cell.completed + run.cell.failed, 4);
        assert!(run.cell.settles > 0, "replay settled no events");
        assert!(run.cell.decisions >= 4, "every job decides at least once");
        assert!(run.cell.windows > 0, "timeline recorded no windows");
        let paths: Vec<&str> = run.cell.phases.iter().map(|p| p.path.as_str()).collect();
        for phase in ["settle", "settle/solve", "decide", "dispatch"] {
            assert!(paths.contains(&phase), "missing phase {phase} in {paths:?}");
        }
        assert!(run.timeline_json.contains("\"windows\""));
        assert!(run.health_report.contains("hottest link"));
        assert!(run.prof_text.contains("decide"));
        assert!(run.obs.events_jsonl.contains("replay.end"));
    }

    #[test]
    fn profile_report_is_seed_deterministic() {
        let cfg = small_cfg();
        let a = run_profile(11, &[3], &cfg);
        let b = run_profile(11, &[3], &cfg);
        let ja = ProfileReport::from_runs(11, &cfg, &a).render_json();
        let jb = ProfileReport::from_runs(11, &cfg, &b).render_json();
        if !TIMING_ENABLED {
            assert_eq!(ja, jb);
            assert_eq!(a[0].timeline_json, b[0].timeline_json);
            assert_eq!(a[0].health_report, b[0].health_report);
        }
        // Counts are deterministic even with timing enabled.
        assert_eq!(a[0].cell.decisions, b[0].cell.decisions);
        assert_eq!(a[0].cell.settles, b[0].cell.settles);
        let c = run_profile(12, &[3], &cfg);
        assert_ne!(a[0].timeline_json, c[0].timeline_json);
    }

    #[test]
    fn report_json_shape_and_timing_flag() {
        let cfg = small_cfg();
        let runs = run_profile(5, &[2], &cfg);
        let json = ProfileReport::from_runs(5, &cfg, &runs).render_json();
        assert!(json.contains("\"name\": \"profile\""));
        assert!(json.contains("\"decisions_per_sec\""));
        assert!(json.contains("\"settles_per_sec\""));
        assert!(json.contains("\"path\": \"settle/solve\""));
        let flag = format!("\"timing\": {}", TIMING_ENABLED);
        assert!(json.contains(&flag), "{json}");
        assert!(json.ends_with("}\n"));
    }
}
