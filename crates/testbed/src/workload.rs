//! Request workloads over replicated files.

use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::{SimDuration, SimTime};

/// One client request for a logical file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// When the request arrives.
    pub at: SimTime,
    /// The requesting host's name.
    pub client: String,
    /// The requested logical file name.
    pub lfn: String,
}

/// A time-ordered trace of requests.
///
/// ```
/// use datagrid_simnet::time::{SimDuration, SimTime};
/// use datagrid_testbed::workload::RequestTrace;
///
/// let trace = RequestTrace::poisson(
///     &["alpha1", "gridhit2"],
///     &["file-a", "file-b"],
///     0.1,
///     SimDuration::from_secs(600),
///     7,
/// );
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestTrace {
    requests: Vec<Request>,
}

impl RequestTrace {
    /// Builds a trace from explicit requests, sorting by arrival time.
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.at);
        RequestTrace { requests }
    }

    /// Poisson arrivals at `rate_hz` over `duration`; each request picks a
    /// uniform client and a Zipf(1)-distributed file (popular files are
    /// requested often, as in data-intensive science workloads).
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `files` is empty or `rate_hz` is not
    /// positive.
    pub fn poisson(
        clients: &[&str],
        files: &[&str],
        rate_hz: f64,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        assert!(!files.is_empty(), "need at least one file");
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        let mut rng = SimRng::seed_from_u64(seed);
        // Zipf(1) cumulative weights over files.
        let weights: Vec<f64> = (1..=files.len()).map(|k| 1.0 / k as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut requests = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(rate_hz));
            if t > SimTime::ZERO + duration {
                break;
            }
            let client = clients[rng.below(clients.len() as u64) as usize];
            let mut pick = rng.uniform(0.0, total);
            let mut file = files[files.len() - 1];
            for (f, w) in files.iter().zip(&weights) {
                if pick < *w {
                    file = f;
                    break;
                }
                pick -= w;
            }
            requests.push(Request {
                at: t,
                client: client.to_string(),
                lfn: file.to_string(),
            });
        }
        RequestTrace { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl IntoIterator for RequestTrace {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

/// Synthesises a catalogue of file names and sizes for a data-intensive
/// workload: lognormal sizes around `median_bytes` (high-energy physics
/// event files, genome databases).
pub fn synthetic_files(count: usize, median_bytes: u64, seed: u64) -> Vec<(String, u64)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let size = (median_bytes as f64 * rng.lognormal(0.0, 0.6)).max(1.0) as u64;
            (format!("dataset/file-{i:04}"), size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_ordered_and_bounded() {
        let trace = RequestTrace::poisson(
            &["a", "b"],
            &["f1", "f2", "f3"],
            0.5,
            SimDuration::from_secs(1000),
            1,
        );
        assert!(trace.len() > 100); // ~500 expected
        let reqs = trace.requests();
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(reqs.iter().all(|r| r.at <= SimTime::from_secs_f64(1000.0)));
    }

    #[test]
    fn zipf_prefers_popular_files() {
        let trace = RequestTrace::poisson(
            &["a"],
            &["hot", "warm", "cold"],
            1.0,
            SimDuration::from_secs(3000),
            2,
        );
        let count = |name: &str| trace.requests().iter().filter(|r| r.lfn == name).count();
        assert!(count("hot") > count("warm"));
        assert!(count("warm") > count("cold"));
    }

    #[test]
    fn trace_deterministic_per_seed() {
        let mk =
            |seed| RequestTrace::poisson(&["a"], &["f"], 1.0, SimDuration::from_secs(100), seed);
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn from_requests_sorts() {
        let trace = RequestTrace::from_requests(vec![
            Request {
                at: SimTime::from_secs_f64(5.0),
                client: "a".into(),
                lfn: "f".into(),
            },
            Request {
                at: SimTime::from_secs_f64(1.0),
                client: "b".into(),
                lfn: "g".into(),
            },
        ]);
        assert_eq!(trace.requests()[0].client, "b");
    }

    #[test]
    fn synthetic_files_have_plausible_sizes() {
        let files = synthetic_files(50, 1 << 30, 3);
        assert_eq!(files.len(), 50);
        assert!(files.iter().all(|(n, _)| n.starts_with("dataset/")));
        let median = {
            let mut sizes: Vec<u64> = files.iter().map(|(_, s)| *s).collect();
            sizes.sort_unstable();
            sizes[25]
        };
        // Median within 2x of the requested one.
        assert!(median > 1 << 29 && median < 1 << 32, "median {median}");
    }
}
