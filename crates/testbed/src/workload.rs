//! Request workloads over replicated files.

use datagrid_catalog::name::{LogicalFileName, PhysicalFileName};
use datagrid_core::prelude::{DataGrid, GridError, ReplayJob};
use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::{SimDuration, SimTime};

/// One client request for a logical file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// When the request arrives.
    pub at: SimTime,
    /// The requesting host's name.
    pub client: String,
    /// The requested logical file name.
    pub lfn: String,
}

/// A time-ordered trace of requests.
///
/// ```
/// use datagrid_simnet::time::{SimDuration, SimTime};
/// use datagrid_testbed::workload::RequestTrace;
///
/// let trace = RequestTrace::poisson(
///     &["alpha1", "gridhit2"],
///     &["file-a", "file-b"],
///     0.1,
///     SimDuration::from_secs(600),
///     7,
/// );
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestTrace {
    requests: Vec<Request>,
}

impl RequestTrace {
    /// Builds a trace from explicit requests, sorting by arrival time.
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.at);
        RequestTrace { requests }
    }

    /// Poisson arrivals at `rate_hz` over `duration`; each request picks a
    /// uniform client and a Zipf(1)-distributed file (popular files are
    /// requested often, as in data-intensive science workloads).
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `files` is empty or `rate_hz` is not
    /// positive.
    pub fn poisson(
        clients: &[&str],
        files: &[&str],
        rate_hz: f64,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        assert!(!files.is_empty(), "need at least one file");
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        let mut rng = SimRng::seed_from_u64(seed);
        // Zipf(1) cumulative weights over files.
        let weights: Vec<f64> = (1..=files.len()).map(|k| 1.0 / k as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut requests = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(rate_hz));
            if t > SimTime::ZERO + duration {
                break;
            }
            let client = clients[rng.below(clients.len() as u64) as usize];
            let mut pick = rng.uniform(0.0, total);
            let mut file = files[files.len() - 1];
            for (f, w) in files.iter().zip(&weights) {
                if pick < *w {
                    file = f;
                    break;
                }
                pick -= w;
            }
            requests.push(Request {
                at: t,
                client: client.to_string(),
                lfn: file.to_string(),
            });
        }
        RequestTrace { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl IntoIterator for RequestTrace {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

/// Shape of a deterministic N-client grid-scale workload (see
/// [`grid_workload`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridWorkloadSpec {
    /// Concurrent logical clients, mapped round-robin onto the grid's
    /// hosts.
    pub clients: usize,
    /// Logical files in the generated catalog.
    pub files: usize,
    /// Replica placements per file (clamped to the host count).
    pub replicas_per_file: usize,
    /// Median file size (lognormal spread, see [`synthetic_files`]).
    pub median_bytes: u64,
    /// Fetches issued by each client.
    pub requests_per_client: usize,
    /// Mean of each client's exponential inter-arrival time.
    pub mean_inter_arrival: SimDuration,
}

impl Default for GridWorkloadSpec {
    fn default() -> Self {
        GridWorkloadSpec {
            clients: 16,
            files: 32,
            replicas_per_file: 2,
            median_bytes: 4 << 20,
            requests_per_client: 1,
            mean_inter_arrival: SimDuration::from_secs(2),
        }
    }
}

/// A generated grid-scale workload: a file catalog, seeded replica
/// placements, and a time-ordered multi-client request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GridWorkload {
    /// `(logical name, size in bytes)` per generated file.
    pub files: Vec<(String, u64)>,
    /// Host names holding a replica, per file (same order as `files`).
    pub placements: Vec<Vec<String>>,
    /// The merged request trace, sorted by arrival time.
    pub trace: RequestTrace,
}

impl GridWorkload {
    /// Registers every generated file and replica placement into `grid`'s
    /// catalog (the data is assumed to pre-exist on the placed hosts, as
    /// with [`DataGrid::place_replica`]).
    ///
    /// # Errors
    ///
    /// Catalog errors (duplicate names) or invalid file names.
    pub fn install(&self, grid: &mut DataGrid) -> Result<(), GridError> {
        for ((lfn, bytes), hosts) in self.files.iter().zip(&self.placements) {
            let name = LogicalFileName::new(lfn)?;
            let locations = hosts
                .iter()
                .map(|host| PhysicalFileName::new(host, format!("/storage/{lfn}")))
                .collect::<Result<Vec<_>, _>>()?;
            grid.catalog_mut()
                .register_logical_with_replicas(name, *bytes, locations)?;
        }
        Ok(())
    }

    /// Resolves the request trace into [`ReplayJob`]s against `grid`
    /// (host names become [`datagrid_sysmon::host::HostId`]s), ready for
    /// [`DataGrid::replay_concurrent`].
    ///
    /// # Panics
    ///
    /// Panics if a trace client is not a host of `grid`.
    pub fn jobs(&self, grid: &DataGrid) -> Vec<ReplayJob> {
        self.trace
            .requests()
            .iter()
            .map(|r| ReplayJob {
                at: r.at,
                client: grid
                    .host_id(&r.client)
                    .unwrap_or_else(|| panic!("workload client {:?} is not a grid host", r.client)),
                lfn: r.lfn.clone(),
            })
            .collect()
    }
}

/// Generates a deterministic multi-client workload over `hosts`:
///
/// * a catalog of [`GridWorkloadSpec::files`] logical files with
///   lognormal sizes,
/// * [`GridWorkloadSpec::replicas_per_file`] seeded distinct placements
///   per file,
/// * per-client request schedules with seeded exponential inter-arrival
///   times and Zipf(1) file popularity, merged into one time-ordered
///   trace.
///
/// Every draw comes from forks of `seed`, so the same seed reproduces
/// the workload byte-for-byte and different seeds diverge.
///
/// # Panics
///
/// Panics if `hosts` is empty or the spec has zero clients/files.
pub fn grid_workload(spec: &GridWorkloadSpec, hosts: &[&str], seed: u64) -> GridWorkload {
    assert!(!hosts.is_empty(), "need at least one host");
    assert!(spec.clients > 0, "need at least one client");
    assert!(spec.files > 0, "need at least one file");
    let root = SimRng::seed_from_u64(seed);
    let files = synthetic_files(spec.files, spec.median_bytes, seed ^ 0x5eed_f11e);
    let replicas = spec.replicas_per_file.clamp(1, hosts.len());
    let mut place_rng = root.fork("placements");
    let placements: Vec<Vec<String>> = (0..files.len())
        .map(|_| {
            let mut pool: Vec<&str> = hosts.to_vec();
            (0..replicas)
                .map(|_| {
                    let i = place_rng.below(pool.len() as u64) as usize;
                    pool.swap_remove(i).to_string()
                })
                .collect()
        })
        .collect();
    // Zipf(1) cumulative weights over the catalog, hottest first.
    let weights: Vec<f64> = (1..=files.len()).map(|k| 1.0 / k as f64).collect();
    let total: f64 = weights.iter().sum();
    let rate = 1.0 / spec.mean_inter_arrival.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut requests = Vec::new();
    for c in 0..spec.clients {
        let host = hosts[c % hosts.len()];
        let mut rng = root.fork(&format!("client:{c}"));
        let mut t = SimTime::ZERO;
        for _ in 0..spec.requests_per_client {
            t += SimDuration::from_secs_f64(rng.exponential(rate));
            let mut pick = rng.uniform(0.0, total);
            let mut file = files.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    file = i;
                    break;
                }
                pick -= w;
            }
            requests.push(Request {
                at: t,
                client: host.to_string(),
                lfn: files[file].0.clone(),
            });
        }
    }
    GridWorkload {
        files,
        placements,
        trace: RequestTrace::from_requests(requests),
    }
}

/// Synthesises a catalogue of file names and sizes for a data-intensive
/// workload: lognormal sizes around `median_bytes` (high-energy physics
/// event files, genome databases).
pub fn synthetic_files(count: usize, median_bytes: u64, seed: u64) -> Vec<(String, u64)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let size = (median_bytes as f64 * rng.lognormal(0.0, 0.6)).max(1.0) as u64;
            (format!("dataset/file-{i:04}"), size)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_ordered_and_bounded() {
        let trace = RequestTrace::poisson(
            &["a", "b"],
            &["f1", "f2", "f3"],
            0.5,
            SimDuration::from_secs(1000),
            1,
        );
        assert!(trace.len() > 100); // ~500 expected
        let reqs = trace.requests();
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(reqs.iter().all(|r| r.at <= SimTime::from_secs_f64(1000.0)));
    }

    #[test]
    fn zipf_prefers_popular_files() {
        let trace = RequestTrace::poisson(
            &["a"],
            &["hot", "warm", "cold"],
            1.0,
            SimDuration::from_secs(3000),
            2,
        );
        let count = |name: &str| trace.requests().iter().filter(|r| r.lfn == name).count();
        assert!(count("hot") > count("warm"));
        assert!(count("warm") > count("cold"));
    }

    #[test]
    fn trace_deterministic_per_seed() {
        let mk =
            |seed| RequestTrace::poisson(&["a"], &["f"], 1.0, SimDuration::from_secs(100), seed);
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn from_requests_sorts() {
        let trace = RequestTrace::from_requests(vec![
            Request {
                at: SimTime::from_secs_f64(5.0),
                client: "a".into(),
                lfn: "f".into(),
            },
            Request {
                at: SimTime::from_secs_f64(1.0),
                client: "b".into(),
                lfn: "g".into(),
            },
        ]);
        assert_eq!(trace.requests()[0].client, "b");
    }

    #[test]
    fn synthetic_files_have_plausible_sizes() {
        let files = synthetic_files(50, 1 << 30, 3);
        assert_eq!(files.len(), 50);
        assert!(files.iter().all(|(n, _)| n.starts_with("dataset/")));
        let median = {
            let mut sizes: Vec<u64> = files.iter().map(|(_, s)| *s).collect();
            sizes.sort_unstable();
            sizes[25]
        };
        // Median within 2x of the requested one.
        assert!(median > 1 << 29 && median < 1 << 32, "median {median}");
    }
}
