//! The grid-scale figure: deterministic multi-client replay sweeps.
//!
//! Every prior figure measures one transfer at a time. This harness runs
//! the paper's testbed as a *grid*: N concurrent clients (seeded arrival
//! times, Zipf file popularity — see [`crate::workload::grid_workload`])
//! replayed through [`DataGrid::replay_concurrent`] against one shared
//! simulator, so selection decisions are made while other clients'
//! transfers are consuming the links being scored.
//!
//! Each sweep cell builds its own grid from its own seed fork, which
//! makes cells independent: [`run_grid_scale`] fans them out with
//! [`crate::par::par_map`] and the output is byte-identical for any
//! `DATAGRID_JOBS` worker count. The per-cell numbers (fetches/sec,
//! latency percentiles, solver settle counters, failover counts, scratch
//! high-water marks) render into the deterministic `BENCH_grid.json`
//! body via [`GridScaleReport::render_json`].

use std::fmt::Write as _;

use datagrid_core::prelude::{DataGrid, FetchOptions, RecoveryOptions, SelectionMode};
use datagrid_simnet::stats::percentile;
use datagrid_simnet::time::SimDuration;

use crate::experiment::{obs_dump, ObsDump};
use crate::par::par_map;
use crate::sites::{paper_testbed, HIT_HOSTS, LIZEN_HOSTS, THU_HOSTS};
use crate::workload::{grid_workload, GridWorkload, GridWorkloadSpec};

/// Configuration of one grid-scale sweep (everything except the client
/// count, which is the sweep axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridScaleConfig {
    /// Logical files in each cell's generated catalog.
    pub files: usize,
    /// Replica placements per file.
    pub replicas_per_file: usize,
    /// Median file size in bytes.
    pub median_bytes: u64,
    /// Fetches issued by each client.
    pub requests_per_client: usize,
    /// Mean client inter-arrival time.
    pub mean_inter_arrival: SimDuration,
    /// Sensor warm-up before the replay starts.
    pub warm: SimDuration,
    /// How the selection server reads `BW_P` during the replay.
    pub mode: SelectionMode,
    /// Parallel TCP streams per transfer (0 = stream mode).
    pub parallelism: u32,
    /// Verify the max-min certificate: enable the engine's per-solve
    /// enforcement for the whole cell and re-check the settled allocation
    /// after the replay. Costs solver time; never changes the numbers, so
    /// `BENCH_grid.json` stays byte-identical either way.
    pub verify: bool,
    /// Attach a sim-time health timeline with this window width after
    /// warm-up, so the replay's link utilization / latency / decision
    /// history is recorded per window (`None` = no timeline).
    pub timeline: Option<SimDuration>,
    /// Batch same-instant event cohorts into one solver settle (the
    /// engine default). `false` forces the per-event solve path — the
    /// differential-testing half of the batching-equivalence property:
    /// every public number must be identical either way.
    pub batching: bool,
}

impl Default for GridScaleConfig {
    fn default() -> Self {
        GridScaleConfig {
            files: 48,
            replicas_per_file: 2,
            median_bytes: 4 << 20,
            requests_per_client: 1,
            mean_inter_arrival: SimDuration::from_secs(2),
            warm: SimDuration::from_secs(60),
            mode: SelectionMode::ContentionAware,
            parallelism: 0,
            verify: false,
            timeline: None,
            batching: true,
        }
    }
}

/// The deterministic numbers of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridScaleCell {
    /// Concurrent clients replayed in this cell.
    pub clients: usize,
    /// Selection mode label (`"static"` / `"contention-aware"`).
    pub mode: &'static str,
    /// Fetches submitted.
    pub fetches: usize,
    /// Fetches that delivered their full file.
    pub completed: usize,
    /// Fetches that exhausted every candidate.
    pub failed: usize,
    /// Replicas abandoned in favour of the next-best candidate.
    pub failovers: u64,
    /// Simulated seconds from replay start to the last terminal state.
    pub makespan_s: f64,
    /// Completed fetches per simulated second.
    pub fetches_per_sec: f64,
    /// Median fetch latency (submission → terminal), seconds.
    pub p50_s: f64,
    /// 95th-percentile fetch latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile fetch latency, seconds.
    pub p99_s: f64,
    /// Component-scoped rate solves performed by the engine.
    pub incremental_solves: u64,
    /// Whole-grid rate solves performed by the engine.
    pub full_solves: u64,
    /// Total flows handed to the solver across all solves.
    pub solver_flows_touched: u64,
    /// Same-instant event cohorts the engine processed.
    pub event_cohorts: u64,
    /// Cohorts whose deferred rate changes settled in one solve.
    pub batched_solves: u64,
    /// Solver passes the cohort batching eliminated.
    pub solves_avoided: u64,
    /// Scratch element capacity left by the burst, before compaction.
    pub scratch_high_water: usize,
    /// Scratch element capacity after [`DataGrid::shrink_network_scratch`].
    pub scratch_after_shrink: usize,
}

/// One executed cell: the numbers plus the full observability dump
/// (events, audit, metrics) of the cell's grid.
#[derive(Debug, Clone)]
pub struct GridScaleRun {
    /// The deterministic cell numbers.
    pub cell: GridScaleCell,
    /// The cell grid's observability export.
    pub obs: ObsDump,
}

/// A whole sweep, ready to render as `BENCH_grid.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridScaleReport {
    /// The sweep's base seed.
    pub seed: u64,
    /// One entry per sweep cell, in input order.
    pub cells: Vec<GridScaleCell>,
}

impl GridScaleReport {
    /// Collects the cells of executed runs (in order).
    pub fn from_runs(seed: u64, runs: &[GridScaleRun]) -> Self {
        GridScaleReport {
            seed,
            cells: runs.iter().map(|r| r.cell.clone()).collect(),
        }
    }

    /// Renders the deterministic `BENCH_grid.json` body: same seed (and
    /// any `DATAGRID_JOBS`) ⇒ byte-identical output. No wall-clock or
    /// environment data is included.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"name\": \"grid-scale\",\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"clients\": {},", c.clients);
            let _ = writeln!(out, "      \"mode\": \"{}\",", c.mode);
            let _ = writeln!(out, "      \"fetches\": {},", c.fetches);
            let _ = writeln!(out, "      \"completed\": {},", c.completed);
            let _ = writeln!(out, "      \"failed\": {},", c.failed);
            let _ = writeln!(out, "      \"failovers\": {},", c.failovers);
            let _ = writeln!(out, "      \"makespan_s\": {:.6},", c.makespan_s);
            let _ = writeln!(out, "      \"fetches_per_sec\": {:.6},", c.fetches_per_sec);
            let _ = writeln!(out, "      \"latency_p50_s\": {:.6},", c.p50_s);
            let _ = writeln!(out, "      \"latency_p95_s\": {:.6},", c.p95_s);
            let _ = writeln!(out, "      \"latency_p99_s\": {:.6},", c.p99_s);
            let _ = writeln!(
                out,
                "      \"incremental_solves\": {},",
                c.incremental_solves
            );
            let _ = writeln!(out, "      \"full_solves\": {},", c.full_solves);
            let _ = writeln!(
                out,
                "      \"solver_flows_touched\": {},",
                c.solver_flows_touched
            );
            let _ = writeln!(out, "      \"event_cohorts\": {},", c.event_cohorts);
            let _ = writeln!(out, "      \"batched_solves\": {},", c.batched_solves);
            let _ = writeln!(out, "      \"solves_avoided\": {},", c.solves_avoided);
            let _ = writeln!(
                out,
                "      \"scratch_high_water\": {},",
                c.scratch_high_water
            );
            let _ = writeln!(
                out,
                "      \"scratch_after_shrink\": {}",
                c.scratch_after_shrink
            );
            out.push_str(if i + 1 == self.cells.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// All twelve paper-testbed hosts, THU then Li-Zen then HIT.
pub fn all_paper_hosts() -> Vec<&'static str> {
    THU_HOSTS
        .iter()
        .chain(LIZEN_HOSTS.iter())
        .chain(HIT_HOSTS.iter())
        .copied()
        .collect()
}

/// The workload a cell replays, derived from the cell's own seed fork so
/// cells stay independent.
fn cell_seed(seed: u64, clients: usize, mode: SelectionMode) -> u64 {
    let mode_salt = match mode {
        SelectionMode::Static => 0x5747,
        SelectionMode::ContentionAware => 0xC047,
    };
    seed ^ (clients as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ mode_salt
}

/// Builds a cell's grid and installed workload without replaying it
/// (shared by [`run_grid_scale_cell`] and the property tests).
pub fn build_cell(seed: u64, clients: usize, cfg: &GridScaleConfig) -> (DataGrid, GridWorkload) {
    let cseed = cell_seed(seed, clients, cfg.mode);
    let mut builder = paper_testbed(cseed);
    builder.selection_mode(cfg.mode);
    let mut grid = builder.build();
    if cfg.verify {
        grid.set_network_validation(true);
    }
    grid.set_event_batching(cfg.batching);
    let hosts = all_paper_hosts();
    let spec = GridWorkloadSpec {
        clients,
        files: cfg.files,
        replicas_per_file: cfg.replicas_per_file,
        median_bytes: cfg.median_bytes,
        requests_per_client: cfg.requests_per_client,
        mean_inter_arrival: cfg.mean_inter_arrival,
    };
    let workload = grid_workload(&spec, &hosts, cseed);
    workload
        .install(&mut grid)
        .expect("generated workload installs cleanly");
    grid.warm_up(cfg.warm);
    if let Some(window) = cfg.timeline {
        // After warm-up, so the timeline (and its solver-work attribution)
        // covers only the replay itself.
        grid.enable_timeline(window);
    }
    (grid, workload)
}

/// Runs one sweep cell to completion: build, warm up, replay, measure,
/// compact scratch, export observability.
pub fn run_grid_scale_cell(seed: u64, clients: usize, cfg: &GridScaleConfig) -> GridScaleRun {
    let (mut grid, workload) = build_cell(seed, clients, cfg);
    let jobs = workload.jobs(&grid);
    let options = FetchOptions::default().with_parallelism(cfg.parallelism);
    let recovery = RecoveryOptions::default();
    let report = grid
        .replay_concurrent(&jobs, options, &recovery)
        .expect("generated workloads only fail per-job");
    if cfg.verify {
        grid.network()
            .verify_allocation()
            .expect("post-replay allocation carries the max-min certificate");
    }
    let latencies: Vec<f64> = report
        .outcomes
        .iter()
        .map(|o| o.latency().as_secs_f64())
        .collect();
    let stats = grid.network().stats();
    // The satellite fix in action: compact the engine scratch between
    // sweeps and report how much the burst had pinned.
    let scratch_high_water = grid.network().scratch_footprint();
    grid.shrink_network_scratch();
    let scratch_after_shrink = grid.network().scratch_footprint();
    let completed = report.completed();
    let makespan_s = report.makespan().as_secs_f64();
    let cell = GridScaleCell {
        clients,
        mode: cfg.mode.label(),
        fetches: report.outcomes.len(),
        completed,
        failed: report.failed(),
        failovers: report.outcomes.iter().map(|o| u64::from(o.failovers)).sum(),
        makespan_s,
        fetches_per_sec: if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        },
        p50_s: percentile(&latencies, 0.50),
        p95_s: percentile(&latencies, 0.95),
        p99_s: percentile(&latencies, 0.99),
        incremental_solves: stats.incremental_solves,
        full_solves: stats.full_solves,
        solver_flows_touched: stats.solver_flows_touched,
        event_cohorts: stats.event_cohorts,
        batched_solves: stats.batched_solves,
        solves_avoided: stats.solves_avoided,
        scratch_high_water,
        scratch_after_shrink,
    };
    GridScaleRun {
        cell,
        obs: obs_dump(&grid),
    }
}

/// Runs the whole sweep — one cell per client count — on worker threads
/// ([`par_map`]; order-preserving, `DATAGRID_JOBS` pins the worker
/// count). Cells are seeded independently, so the result is
/// byte-identical to a serial sweep.
pub fn run_grid_scale(
    seed: u64,
    client_counts: &[usize],
    cfg: &GridScaleConfig,
) -> Vec<GridScaleRun> {
    par_map(client_counts.to_vec(), |clients| {
        run_grid_scale_cell(seed, clients, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GridScaleConfig {
        GridScaleConfig {
            files: 8,
            warm: SimDuration::from_secs(30),
            ..GridScaleConfig::default()
        }
    }

    #[test]
    fn small_sweep_completes_and_renders() {
        let cfg = small_cfg();
        let runs = run_grid_scale(7, &[2, 5], &cfg);
        assert_eq!(runs.len(), 2);
        for run in &runs {
            assert_eq!(run.cell.fetches, run.cell.clients);
            assert_eq!(run.cell.completed + run.cell.failed, run.cell.fetches);
            assert!(run.cell.completed > 0, "no fetch completed");
            assert!(run.cell.p50_s > 0.0);
            assert!(run.cell.p99_s >= run.cell.p50_s);
            assert!(run.cell.scratch_after_shrink <= run.cell.scratch_high_water);
            assert!(run.obs.events_jsonl.contains("replay.end"));
        }
        let report = GridScaleReport::from_runs(7, &runs);
        let json = report.render_json();
        assert!(json.contains("\"clients\": 5"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn sweep_is_seed_deterministic() {
        let cfg = small_cfg();
        let a = GridScaleReport::from_runs(11, &run_grid_scale(11, &[3], &cfg));
        let b = GridScaleReport::from_runs(11, &run_grid_scale(11, &[3], &cfg));
        assert_eq!(a.render_json(), b.render_json());
        let c = GridScaleReport::from_runs(12, &run_grid_scale(12, &[3], &cfg));
        assert_ne!(a.render_json(), c.render_json());
    }

    #[test]
    fn verified_cell_matches_unverified_numbers() {
        let plain = run_grid_scale_cell(7, 3, &small_cfg());
        let verified = run_grid_scale_cell(
            7,
            3,
            &GridScaleConfig {
                verify: true,
                ..small_cfg()
            },
        );
        // Certificate enforcement observes; it must never steer.
        assert_eq!(plain.cell, verified.cell);
    }

    #[test]
    fn static_mode_cell_runs() {
        let cfg = GridScaleConfig {
            mode: SelectionMode::Static,
            ..small_cfg()
        };
        let run = run_grid_scale_cell(3, 4, &cfg);
        assert_eq!(run.cell.mode, "static");
        assert_eq!(run.cell.completed + run.cell.failed, 4);
    }
}
