//! # datagrid-testbed
//!
//! The paper's experimental environment, reproduced in simulation:
//!
//! * [`calibration`] — the constants that set absolute scale (WAN
//!   latencies, loss rates, background traffic, disks, GSI cost),
//! * [`sites`] — the three-cluster testbed (THU, Li-Zen, HIT) wired to a
//!   TANet backbone, with the paper's host names,
//! * [`workload`] — request workloads over replicated files, including
//!   the deterministic multi-client grid-scale generator,
//! * [`gridscale`] — the grid-scale sweep harness: N concurrent clients
//!   replayed against one shared simulator, per-cell metrics and the
//!   deterministic `BENCH_grid.json` body,
//! * [`profile`] — the hot-path phase profile harness: the grid workload
//!   replayed with health timelines and the phase profiler attached,
//!   rendering the deterministic `BENCH_profile.json` body,
//! * [`experiment`] — text-table rendering and the selection-quality
//!   harness (oracle comparison) used by the benches,
//! * [`fuzz`] — the seeded differential fuzzing harness: random
//!   topologies, fault schedules and workloads replayed through paired
//!   engine configurations, with oracle diffing and scenario shrinking,
//! * [`par`] — deterministic order-preserving parallel map for the bench
//!   sweeps (`DATAGRID_JOBS` controls the worker count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod experiment;
pub mod fuzz;
pub mod gridscale;
pub mod par;
pub mod profile;
pub mod sites;
pub mod workload;

pub use sites::{canonical_host, paper_testbed, PaperSites};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::calibration::Calibration;
    pub use crate::experiment::{
        obs_dump, replay_trace, selection_quality, write_obs_dump, ObsDump, QualityStats, TextTable,
    };
    pub use crate::fuzz::{
        check_scenario, render_divergence_report, run_scenario, shrink, Divergence, FuzzSpec,
        Oracle, Pair, RunConfig, Surfaces, BASELINE, PAIRS,
    };
    pub use crate::gridscale::{
        all_paper_hosts, build_cell, run_grid_scale, run_grid_scale_cell, GridScaleCell,
        GridScaleConfig, GridScaleReport, GridScaleRun,
    };
    pub use crate::par::{par_map, worker_count};
    pub use crate::profile::{
        run_profile, run_profile_cell, ProfileCell, ProfileConfig, ProfilePhase, ProfileReport,
        ProfileRun,
    };
    pub use crate::sites::{canonical_host, paper_testbed, PaperSites};
    pub use crate::workload::{
        grid_workload, synthetic_files, GridWorkload, GridWorkloadSpec, Request, RequestTrace,
    };
}
