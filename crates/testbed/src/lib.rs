//! # datagrid-testbed
//!
//! The paper's experimental environment, reproduced in simulation:
//!
//! * [`calibration`] — the constants that set absolute scale (WAN
//!   latencies, loss rates, background traffic, disks, GSI cost),
//! * [`sites`] — the three-cluster testbed (THU, Li-Zen, HIT) wired to a
//!   TANet backbone, with the paper's host names,
//! * [`workload`] — request workloads over replicated files,
//! * [`experiment`] — text-table rendering and the selection-quality
//!   harness (oracle comparison) used by the benches,
//! * [`par`] — deterministic order-preserving parallel map for the bench
//!   sweeps (`DATAGRID_JOBS` controls the worker count).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibration;
pub mod experiment;
pub mod par;
pub mod sites;
pub mod workload;

pub use sites::{canonical_host, paper_testbed, PaperSites};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::calibration::Calibration;
    pub use crate::experiment::{
        obs_dump, replay_trace, selection_quality, write_obs_dump, ObsDump, QualityStats, TextTable,
    };
    pub use crate::par::{par_map, worker_count};
    pub use crate::sites::{canonical_host, paper_testbed, PaperSites};
    pub use crate::workload::{Request, RequestTrace};
}
