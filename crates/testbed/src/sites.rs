//! The paper's Data Grid testbed.
//!
//! Three Linux PC clusters (paper §4):
//!
//! * **THU** (Tunghai University, Taichung City): four PCs with dual
//!   AMD Athlon MP 2.0 GHz, 1 GB DDR, 60 GB disk, 1 Gbps — `alpha1..4`,
//! * **Li-Zen** (Li-Zen High School, Taichung County): four PCs with
//!   Intel Celeron 900 MHz, 256 MB, 10 GB disk, 30 Mbps — `lz01..04`,
//! * **HIT** (Hsiuping Institute of Technology): four PCs with Intel P4
//!   2.8 GHz, 512 MB, 80 GB disk, 1 Gbps — `gridhit0..3`.
//!
//! Each cluster hangs off a site switch; the switches connect to a TANet
//! backbone router. Background traffic and per-link loss make available
//! bandwidth dynamic, as on the real academic WAN.

use datagrid_core::grid::GridBuilder;
use datagrid_simnet::background::BackgroundProfile;
use datagrid_simnet::topology::Bandwidth;
use datagrid_simnet::topology::{LinkId, LinkSpec, NodeId};
use datagrid_sysmon::disk::DiskSpec;
use datagrid_sysmon::host::HostSpec;
use datagrid_sysmon::load::LoadModel;

use crate::calibration::Calibration;

/// The paper's THU host names (the text uses `alpha01`/`alpha1`
/// interchangeably; see [`canonical_host`]).
pub const THU_HOSTS: [&str; 4] = ["alpha1", "alpha2", "alpha3", "alpha4"];
/// The paper's Li-Zen host names.
pub const LIZEN_HOSTS: [&str; 4] = ["lz01", "lz02", "lz03", "lz04"];
/// The paper's HIT host names (`hit0` in Table 1 is `gridhit0`).
pub const HIT_HOSTS: [&str; 4] = ["gridhit0", "gridhit1", "gridhit2", "gridhit3"];

/// Normalises the paper's host-name variants (`alpha01` → `alpha1`,
/// `hit0` → `gridhit0`, …) to the names used in the simulated testbed.
pub fn canonical_host(name: &str) -> &str {
    match name {
        "alpha01" => "alpha1",
        "alpha02" => "alpha2",
        "alpha03" => "alpha3",
        "alpha04" => "alpha4",
        "hit0" => "gridhit0",
        "hit1" => "gridhit1",
        "hit2" => "gridhit2",
        "hit3" => "gridhit3",
        other => other,
    }
}

/// Node ids of the built testbed's network elements.
#[derive(Debug, Clone)]
pub struct PaperSites {
    /// THU hosts in name order.
    pub thu: Vec<NodeId>,
    /// Li-Zen hosts in name order.
    pub lizen: Vec<NodeId>,
    /// HIT hosts in name order.
    pub hit: Vec<NodeId>,
    /// THU site switch.
    pub thu_switch: NodeId,
    /// Li-Zen site switch.
    pub lizen_switch: NodeId,
    /// HIT site switch.
    pub hit_switch: NodeId,
    /// TANet backbone router.
    pub backbone: NodeId,
    /// THU uplink (toward backbone, and reverse).
    pub thu_uplink: (LinkId, LinkId),
    /// HIT uplink (toward backbone, and reverse).
    pub hit_uplink: (LinkId, LinkId),
    /// Li-Zen uplink (toward backbone, and reverse) — the paper's 30 Mbps
    /// bottleneck.
    pub lizen_uplink: (LinkId, LinkId),
}

fn thu_host(name: &str) -> HostSpec {
    HostSpec::new(name)
        .with_cpu(2, 2.0)
        .with_memory_mb(1024)
        .with_disk(DiskSpec::ide_2005(60))
}

fn lizen_host(name: &str) -> HostSpec {
    HostSpec::new(name)
        .with_cpu(1, 0.9)
        .with_memory_mb(256)
        .with_disk(DiskSpec::new(
            10,
            Bandwidth::from_bps(30.0 * 8e6),
            Bandwidth::from_bps(25.0 * 8e6),
        ))
}

fn hit_host(name: &str) -> HostSpec {
    HostSpec::new(name)
        .with_cpu(1, 2.8)
        .with_memory_mb(512)
        .with_disk(DiskSpec::new(
            80,
            Bandwidth::from_bps(60.0 * 8e6),
            Bandwidth::from_bps(50.0 * 8e6),
        ))
}

/// Per-site load dynamics: research clusters see mean-reverting load;
/// the high-school machines are busier and burstier.
fn cpu_model(site: &str) -> LoadModel {
    match site {
        "thu" => LoadModel::Ar1 {
            mean: 0.30,
            phi: 0.9,
            sigma: 0.05,
        },
        "lizen" => LoadModel::Ar1 {
            mean: 0.50,
            phi: 0.85,
            sigma: 0.10,
        },
        _ => LoadModel::Ar1 {
            mean: 0.20,
            phi: 0.9,
            sigma: 0.05,
        },
    }
}

fn io_model(site: &str) -> LoadModel {
    match site {
        "thu" => LoadModel::Ar1 {
            mean: 0.20,
            phi: 0.9,
            sigma: 0.05,
        },
        "lizen" => LoadModel::Ar1 {
            mean: 0.40,
            phi: 0.85,
            sigma: 0.10,
        },
        _ => LoadModel::Ar1 {
            mean: 0.15,
            phi: 0.9,
            sigma: 0.05,
        },
    }
}

/// Builds the paper's testbed with default calibration, monitoring every
/// remote host toward `alpha1` (the client of the paper's §4.3 scenario).
/// The returned builder can be customised further before `build()`.
pub fn paper_testbed(seed: u64) -> GridBuilder {
    paper_testbed_with(seed, &Calibration::default()).0
}

/// Builds the paper's testbed with explicit calibration, also returning
/// the site layout.
pub fn paper_testbed_with(seed: u64, cal: &Calibration) -> (GridBuilder, PaperSites) {
    let mut b = GridBuilder::new(seed);

    let thu: Vec<NodeId> = THU_HOSTS
        .iter()
        .map(|n| b.add_host(thu_host(n), cpu_model("thu"), io_model("thu")))
        .collect();
    let lizen: Vec<NodeId> = LIZEN_HOSTS
        .iter()
        .map(|n| b.add_host(lizen_host(n), cpu_model("lizen"), io_model("lizen")))
        .collect();
    let hit: Vec<NodeId> = HIT_HOSTS
        .iter()
        .map(|n| b.add_host(hit_host(n), cpu_model("hit"), io_model("hit")))
        .collect();

    let thu_switch = b.add_switch("thu-switch");
    let lizen_switch = b.add_switch("lizen-switch");
    let hit_switch = b.add_switch("hit-switch");
    let backbone = b.add_switch("tanet");

    let (thu_uplink, hit_uplink, lizen_uplink) = {
        let t = b.topology_mut();
        let lan = LinkSpec::new(cal.lan_capacity, cal.lan_latency);
        for &h in &thu {
            t.add_duplex_link(h, thu_switch, lan);
        }
        for &h in &lizen {
            // The paper lists the Li-Zen machines on Fast Ethernet-class
            // connectivity; their bottleneck is the site uplink anyway.
            t.add_duplex_link(
                h,
                lizen_switch,
                LinkSpec::new(Bandwidth::from_mbps(100.0), cal.lan_latency),
            );
        }
        for &h in &hit {
            t.add_duplex_link(h, hit_switch, lan);
        }
        let thu_uplink = t.add_duplex_link(
            thu_switch,
            backbone,
            LinkSpec::new(cal.fast_uplink, cal.fast_uplink_latency).with_loss(cal.fast_uplink_loss),
        );
        let hit_uplink = t.add_duplex_link(
            hit_switch,
            backbone,
            LinkSpec::new(cal.fast_uplink, cal.fast_uplink_latency).with_loss(cal.fast_uplink_loss),
        );
        let lizen_uplink = t.add_duplex_link(
            lizen_switch,
            backbone,
            LinkSpec::new(cal.lizen_uplink, cal.lizen_uplink_latency)
                .with_loss(cal.lizen_uplink_loss),
        );
        (thu_uplink, hit_uplink, lizen_uplink)
    };

    // Cross traffic: the fast uplinks see light backbone load, the thin
    // Li-Zen uplink a substantial share of its 30 Mbps.
    if cal.backbone_background_utilization > 0.0 {
        let profile = BackgroundProfile::for_utilization(
            thu_switch,
            hit_switch,
            cal.fast_uplink,
            cal.backbone_background_utilization,
            cal.background_flow_bytes,
        )
        .with_flow_cap(Bandwidth::from_mbps(50.0));
        b.add_background(profile.clone());
        let mut reverse = profile;
        std::mem::swap(&mut reverse.src, &mut reverse.dst);
        b.add_background(reverse);
    }
    if cal.lizen_background_utilization > 0.0 {
        let profile = BackgroundProfile::for_utilization(
            backbone,
            lizen_switch,
            cal.lizen_uplink,
            cal.lizen_background_utilization,
            cal.background_flow_bytes,
        )
        .with_flow_cap(Bandwidth::from_mbps(10.0));
        b.add_background(profile.clone());
        let mut reverse = profile;
        std::mem::swap(&mut reverse.src, &mut reverse.dst);
        b.add_background(reverse);
    }

    // Monitor every remote host toward the scenario client alpha1, plus
    // the reverse direction for replication experiments.
    let alpha1 = thu[0];
    for &h in thu.iter().chain(&lizen).chain(&hit) {
        if h != alpha1 {
            b.monitor_path(h, alpha1);
            b.monitor_path(alpha1, h);
        }
    }

    b.monitor_interval(cal.monitor_interval);
    b.probe_bytes(cal.probe_bytes);
    b.sensor_noise(cal.sensor_noise);
    b.tcp_window(cal.tcp_window);
    b.catalog_host("alpha1");

    // Watch the three uplinks so experiments can inspect WAN utilisation.
    b.watch_links([
        thu_uplink.0,
        thu_uplink.1,
        hit_uplink.0,
        hit_uplink.1,
        lizen_uplink.0,
        lizen_uplink.1,
    ]);

    (
        b,
        PaperSites {
            thu,
            lizen,
            hit,
            thu_switch,
            lizen_switch,
            hit_switch,
            backbone,
            thu_uplink,
            hit_uplink,
            lizen_uplink,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagrid_simnet::time::SimDuration;

    #[test]
    fn canonical_names_resolve() {
        assert_eq!(canonical_host("alpha01"), "alpha1");
        assert_eq!(canonical_host("hit0"), "gridhit0");
        assert_eq!(canonical_host("lz04"), "lz04");
    }

    #[test]
    fn testbed_builds_with_all_hosts() {
        let grid = paper_testbed(1).build();
        for name in THU_HOSTS.iter().chain(&LIZEN_HOSTS).chain(&HIT_HOSTS) {
            assert!(grid.host_id(name).is_some(), "missing host {name}");
        }
        assert_eq!(grid.host_ids().count(), 12);
        // 11 remote hosts × 2 directions monitored.
        assert_eq!(grid.nws().len(), 22);
    }

    #[test]
    fn hardware_matches_the_paper() {
        let grid = paper_testbed(1).build();
        let alpha = grid.host(grid.host_id("alpha1").unwrap());
        assert_eq!(alpha.spec().cores, 2);
        assert_eq!(alpha.spec().clock_ghz, 2.0);
        assert_eq!(alpha.spec().memory_mb, 1024);
        assert_eq!(alpha.spec().disk.capacity_gb, 60);
        let lz = grid.host(grid.host_id("lz01").unwrap());
        assert_eq!(lz.spec().clock_ghz, 0.9);
        assert_eq!(lz.spec().memory_mb, 256);
        let hit = grid.host(grid.host_id("gridhit0").unwrap());
        assert_eq!(hit.spec().clock_ghz, 2.8);
        assert_eq!(hit.spec().disk.capacity_gb, 80);
    }

    #[test]
    fn paths_have_paper_bottlenecks() {
        let (b, sites) = paper_testbed_with(2, &Calibration::default());
        let grid = b.build();
        let net = grid.network();
        let topo = net.topology();
        let routing = net.routing();
        // THU -> HIT bottleneck is a fast uplink.
        let p = routing.path(sites.thu[0], sites.hit[0]).unwrap();
        assert_eq!(topo.path_capacity(p).unwrap().as_mbps(), 1000.0);
        // THU -> Li-Zen bottleneck is the 30 Mbps uplink.
        let p = routing.path(sites.thu[1], sites.lizen[3]).unwrap();
        assert_eq!(topo.path_capacity(p).unwrap().as_mbps(), 30.0);
        // RTTs: THU->HIT ≈ 12.4 ms, THU->LZ ≈ 22.4 ms.
        let rtt_hit = routing.rtt(sites.thu[0], sites.hit[0]).unwrap();
        let rtt_lz = routing.rtt(sites.thu[0], sites.lizen[0]).unwrap();
        assert!((rtt_hit.as_millis_f64() - 12.4).abs() < 0.1, "{rtt_hit}");
        assert!((rtt_lz.as_millis_f64() - 22.4).abs() < 0.1, "{rtt_lz}");
    }

    #[test]
    fn warmed_testbed_ranks_sites_correctly() {
        let mut grid = paper_testbed(3).build();
        grid.warm_up(SimDuration::from_secs(300));
        let alpha1 = grid.host_id("alpha1").unwrap();
        let alpha4 = grid.host_id("alpha4").unwrap();
        let hit0 = grid.host_id("gridhit0").unwrap();
        let lz02 = grid.host_id("lz02").unwrap();
        let bw_alpha4 = grid.bandwidth_fraction(alpha4, alpha1).unwrap();
        let bw_hit0 = grid.bandwidth_fraction(hit0, alpha1).unwrap();
        let bw_lz02 = grid.bandwidth_fraction(lz02, alpha1).unwrap();
        assert!(
            bw_alpha4 > bw_hit0 && bw_hit0 > bw_lz02,
            "BW_P order alpha4 ({bw_alpha4}) > hit0 ({bw_hit0}) > lz02 ({bw_lz02})"
        );
    }
}

#[cfg(test)]
mod quiet_tests {
    use super::*;
    use crate::calibration::Calibration;
    use datagrid_simnet::time::SimDuration;

    #[test]
    fn quiet_calibration_gives_steady_measurements() {
        let (b, _) = paper_testbed_with(5, &Calibration::quiet());
        let mut grid = b.build();
        grid.warm_up(SimDuration::from_secs(300));
        let alpha1 = grid.host_id("alpha1").unwrap();
        let hit0 = grid.host_id("gridhit0").unwrap();
        let sensor = grid
            .nws()
            .sensor(grid.node_of(hit0), grid.node_of(alpha1))
            .unwrap();
        // Without background traffic the only variation is sensor noise
        // (3 %): the spread of measurements stays tight around the
        // Mathis-limited ~36.5 Mbps.
        let values: Vec<f64> = sensor
            .series()
            .samples()
            .iter()
            .map(|s| s.value / 1e6)
            .collect();
        assert!(values.len() > 20);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((30.0..45.0).contains(&mean), "mean {mean} Mbps");
        let max_dev = values
            .iter()
            .map(|v| (v - mean).abs() / mean)
            .fold(0.0f64, f64::max);
        assert!(max_dev < 0.15, "max deviation {max_dev}");
    }
}
