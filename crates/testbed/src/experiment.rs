//! Experiment harness: text tables, selection-quality evaluation and
//! observability dumps.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use datagrid_core::grid::{DataGrid, FetchOptions};
use datagrid_core::policy::SelectionPolicy;
use datagrid_simnet::time::SimTime;

use crate::workload::RequestTrace;

/// A fixed-width text table (what the bench binaries print, standing in
/// for the paper's figures).
///
/// ```
/// use datagrid_testbed::experiment::TextTable;
///
/// let mut t = TextTable::new(["size", "ftp", "gridftp"]);
/// t.row(["256 MB", "21.4", "22.1"]);
/// let s = t.render();
/// assert!(s.contains("gridftp"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns (first column left-aligned,
    /// the rest right-aligned).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Aggregate quality of a selection policy over a request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityStats {
    /// The policy's name.
    pub policy: &'static str,
    /// Requests evaluated.
    pub requests: usize,
    /// Mean end-to-end transfer duration in seconds.
    pub mean_duration_s: f64,
    /// Fraction of requests where the policy picked the candidate an
    /// oracle (counterfactual replay of every candidate) found fastest.
    pub oracle_accuracy: f64,
    /// Mean relative regret versus the oracle's best duration.
    pub mean_regret: f64,
}

/// Evaluates a selection policy against the clone-based oracle.
///
/// For every request, the grid is cloned once per candidate and the fetch
/// is replayed with that candidate forced, under identical randomness —
/// giving the true counterfactual transfer times. The policy's pick is
/// then scored against the fastest.
///
/// # Panics
///
/// Panics if a request references an unknown client or file.
pub fn selection_quality(
    grid: &mut DataGrid,
    trace: &RequestTrace,
    policy: SelectionPolicy,
    options: FetchOptions,
) -> QualityStats {
    grid.selector_mut().set_policy(policy.clone());
    let mut durations = Vec::new();
    let mut hits = 0usize;
    let mut regrets = Vec::new();
    for req in trace.requests() {
        let at = SimTime::from_nanos(req.at.as_nanos().max(grid.now().as_nanos()));
        grid.advance_to(at);
        let client = grid
            .host_id(&req.client)
            .unwrap_or_else(|| panic!("unknown client {}", req.client));

        // Oracle: replay every candidate on a clone.
        let candidates = grid
            .score_candidates(client, &req.lfn)
            .unwrap_or_else(|e| panic!("scoring {} failed: {e}", req.lfn));
        let mut best: Option<(String, f64)> = None;
        for c in &candidates {
            let mut probe = grid.clone();
            let secs = probe
                .fetch_from(client, &req.lfn, &c.host_name, options)
                .unwrap_or_else(|e| panic!("oracle fetch failed: {e}"))
                .transfer
                .duration()
                .as_secs_f64();
            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                best = Some((c.host_name.clone(), secs));
            }
        }
        let (best_host, best_secs) = best.expect("at least one candidate");

        let report = grid
            .fetch_with(client, &req.lfn, options)
            .unwrap_or_else(|e| panic!("fetch {} failed: {e}", req.lfn));
        let secs = report.transfer.duration().as_secs_f64();
        durations.push(secs);
        if report.chosen_candidate().host_name == best_host {
            hits += 1;
        }
        regrets.push((secs - best_secs).max(0.0) / best_secs.max(1e-9));
    }
    let n = durations.len().max(1);
    QualityStats {
        policy: policy.name(),
        requests: durations.len(),
        mean_duration_s: durations.iter().sum::<f64>() / n as f64,
        oracle_accuracy: hits as f64 / n as f64,
        mean_regret: regrets.iter().sum::<f64>() / n as f64,
    }
}

/// Replays a request trace verbatim, returning every fetch report — the
/// plain (oracle-free) counterpart of [`selection_quality`] for workload
/// studies and examples.
///
/// # Panics
///
/// Panics if a request references an unknown client or file.
pub fn replay_trace(
    grid: &mut DataGrid,
    trace: &RequestTrace,
    options: FetchOptions,
) -> Vec<datagrid_core::grid::FetchReport> {
    let mut reports = Vec::with_capacity(trace.len());
    for req in trace.requests() {
        let at = SimTime::from_nanos(req.at.as_nanos().max(grid.now().as_nanos()));
        grid.advance_to(at);
        let client = grid
            .host_id(&req.client)
            .unwrap_or_else(|| panic!("unknown client {}", req.client));
        let report = grid
            .fetch_with(client, &req.lfn, options)
            .unwrap_or_else(|e| panic!("fetch {} failed: {e}", req.lfn));
        reports.push(report);
    }
    reports
}

/// Every observability export of a grid run, rendered to strings.
///
/// All five renders are deterministic: two identically seeded runs
/// produce byte-identical dumps.
#[derive(Debug, Clone)]
pub struct ObsDump {
    /// Metrics snapshot in the line-oriented text format.
    pub metrics_text: String,
    /// Metrics snapshot as a single JSON object.
    pub metrics_json: String,
    /// Retained structured events as JSON Lines, oldest first.
    pub events_jsonl: String,
    /// Selection audit log as a human-readable report.
    pub audit_text: String,
    /// Selection audit log as JSON Lines, one decision per line.
    pub audit_jsonl: String,
}

/// Renders the full observability state of a grid — metrics (merged with
/// the engine and catalog counters), event history and selection audit.
pub fn obs_dump(grid: &DataGrid) -> ObsDump {
    let metrics = grid.metrics_snapshot();
    ObsDump {
        metrics_text: metrics.render_text(),
        metrics_json: metrics.render_json(),
        events_jsonl: grid.recorder().events_jsonl(),
        audit_text: grid.audit().render_text(),
        audit_jsonl: grid.audit().render_jsonl(),
    }
}

/// Writes an [`obs_dump`] to `dir` as five files named
/// `<label>.metrics.txt`, `<label>.metrics.json`, `<label>.events.jsonl`,
/// `<label>.audit.txt` and `<label>.audit.jsonl`, creating the directory
/// if needed. Returns the written paths.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing.
pub fn write_obs_dump(grid: &DataGrid, dir: &Path, label: &str) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let dump = obs_dump(grid);
    let files = [
        ("metrics.txt", dump.metrics_text),
        ("metrics.json", dump.metrics_json),
        ("events.jsonl", dump.events_jsonl),
        ("audit.txt", dump.audit_text),
        ("audit.jsonl", dump.audit_jsonl),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (suffix, contents) in files {
        let path = dir.join(format!("{label}.{suffix}"));
        std::fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

/// Formats seconds compactly for tables.
pub fn fmt_secs(secs: f64) -> String {
    format!("{secs:.1}")
}

/// Formats a bandwidth in Mbps for tables.
pub fn fmt_mbps(mbps: f64) -> String {
    format!("{mbps:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::paper_testbed;
    use crate::workload::Request;
    use datagrid_simnet::time::SimDuration;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["file size", "FTP (s)", "GridFTP (s)"]);
        t.row(["256 MB", "20.1", "21.3"]);
        t.row(["2048 MB", "161.0", "162.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All lines equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn quality_harness_runs_on_small_trace() {
        let mut grid = paper_testbed(11).build();
        grid.catalog_mut()
            .register_logical("file-q".parse().unwrap(), 8 << 20)
            .unwrap();
        grid.place_replica("file-q", "alpha4").unwrap();
        grid.place_replica("file-q", "lz02").unwrap();
        grid.warm_up(SimDuration::from_secs(120));
        let trace = RequestTrace::from_requests(vec![
            Request {
                at: SimTime::from_secs_f64(130.0),
                client: "alpha1".into(),
                lfn: "file-q".into(),
            },
            Request {
                at: SimTime::from_secs_f64(200.0),
                client: "alpha1".into(),
                lfn: "file-q".into(),
            },
        ]);
        let stats = selection_quality(
            &mut grid,
            &trace,
            SelectionPolicy::CostModel,
            FetchOptions::default(),
        );
        assert_eq!(stats.requests, 2);
        // alpha4 over the LAN is obviously best; the cost model must find it.
        assert_eq!(stats.oracle_accuracy, 1.0, "{stats:?}");
        assert!(stats.mean_regret < 1e-9);
        assert!(stats.mean_duration_s > 0.0);
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::sites::paper_testbed;
    use crate::workload::RequestTrace;
    use datagrid_simnet::time::SimDuration;

    #[test]
    fn replay_returns_one_report_per_request() {
        let mut grid = paper_testbed(21).build();
        grid.catalog_mut()
            .register_logical("file-r".parse().unwrap(), 8 << 20)
            .unwrap();
        grid.place_replica("file-r", "alpha4").unwrap();
        grid.warm_up(SimDuration::from_secs(60));
        let trace = RequestTrace::poisson(
            &["alpha1", "gridhit1"],
            &["file-r"],
            1.0 / 60.0,
            SimDuration::from_secs(400),
            5,
        );
        let reports = replay_trace(&mut grid, &trace, FetchOptions::default());
        assert_eq!(reports.len(), trace.len());
        assert!(reports.iter().all(|r| r.transfer.payload_bytes == 8 << 20));
        // Time moved forward past the last request.
        assert!(grid.now() >= trace.requests().last().unwrap().at);
    }

    #[test]
    fn obs_dump_renders_and_writes_every_surface() {
        let mut grid = paper_testbed(22).build();
        grid.catalog_mut()
            .register_logical("file-d".parse().unwrap(), 8 << 20)
            .unwrap();
        grid.place_replica("file-d", "alpha4").unwrap();
        grid.warm_up(SimDuration::from_secs(60));
        let client = grid.host_id("alpha1").unwrap();
        grid.fetch(client, "file-d").unwrap();

        let dump = obs_dump(&grid);
        assert!(dump.metrics_text.contains("transfer.seconds"));
        assert!(dump.metrics_json.contains("\"selection.decisions\":1"));
        assert!(dump.events_jsonl.contains("\"kind\":\"span.close\""));
        assert!(dump.audit_text.contains("alpha4"));
        assert_eq!(dump.audit_jsonl.lines().count(), 1);

        let dir = std::env::temp_dir().join(format!("datagrid-obs-{}", std::process::id()));
        let written = write_obs_dump(&grid, &dir, "smoke").unwrap();
        assert_eq!(written.len(), 5);
        for path in &written {
            let body = std::fs::read_to_string(path).unwrap();
            assert!(!body.is_empty(), "{} is empty", path.display());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
