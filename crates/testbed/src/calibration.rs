//! Calibration constants.
//!
//! These numbers set the *absolute* scale of the simulation. They are not
//! taken from the paper (which reports only bar charts on its own 2005
//! testbed) but chosen to be plausible for Taiwanese academic networking
//! of that era, and so that every *relative* finding of the paper holds:
//! FTP ≈ GridFTP at large sizes, parallel streams win on the lossy 30 Mbps
//! Li-Zen path with diminishing returns, and the cost-model score order
//! matches the transfer-time order.

use datagrid_simnet::time::SimDuration;
use datagrid_simnet::topology::Bandwidth;

/// The tunable constants of the paper testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Intra-site LAN speed (switched Fast/Gigabit Ethernet).
    pub lan_capacity: Bandwidth,
    /// Intra-site cable latency.
    pub lan_latency: SimDuration,
    /// THU / HIT campus uplink capacity (the paper lists both sites at
    /// 1 Gbps).
    pub fast_uplink: Bandwidth,
    /// Li-Zen uplink capacity (the paper lists 30 Mbps).
    pub lizen_uplink: Bandwidth,
    /// THU/HIT uplink one-way latency to the TANet backbone.
    pub fast_uplink_latency: SimDuration,
    /// Li-Zen uplink one-way latency (a high school on a thinner line).
    pub lizen_uplink_latency: SimDuration,
    /// Packet loss on each fast uplink.
    pub fast_uplink_loss: f64,
    /// Packet loss on the Li-Zen uplink (what makes single-stream TCP
    /// underutilise it — the mechanism behind the paper's Fig. 4).
    pub lizen_uplink_loss: f64,
    /// Mean utilisation offered by background traffic on the THU↔HIT
    /// backbone direction.
    pub backbone_background_utilization: f64,
    /// Mean utilisation offered by background traffic on the Li-Zen
    /// uplink.
    pub lizen_background_utilization: f64,
    /// Mean background flow size.
    pub background_flow_bytes: f64,
    /// TCP receive window (2.6-era Linux default-ish).
    pub tcp_window: u64,
    /// NWS probe size.
    pub probe_bytes: u64,
    /// Monitoring interval.
    pub monitor_interval: SimDuration,
    /// Sensor measurement noise (relative sigma).
    pub sensor_noise: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            lan_capacity: Bandwidth::from_gbps(1.0),
            lan_latency: SimDuration::from_micros(100),
            fast_uplink: Bandwidth::from_gbps(1.0),
            lizen_uplink: Bandwidth::from_mbps(30.0),
            fast_uplink_latency: SimDuration::from_millis(3),
            lizen_uplink_latency: SimDuration::from_millis(8),
            fast_uplink_loss: 0.0005,
            // A congested consumer-grade school line: enough loss that one
            // TCP stream reaches only ~4.7 Mbps of the 30 Mbps link, so
            // parallel streams keep paying off through 8 streams (Fig. 4).
            lizen_uplink_loss: 0.018,
            backbone_background_utilization: 0.05,
            lizen_background_utilization: 0.20,
            background_flow_bytes: 2e6,
            tcp_window: 256 * 1024,
            probe_bytes: 256 * 1024,
            monitor_interval: SimDuration::from_secs(10),
            sensor_noise: 0.03,
        }
    }
}

impl Calibration {
    /// A quiet variant without background traffic (for deterministic
    /// protocol microtests).
    pub fn quiet() -> Self {
        Calibration {
            backbone_background_utilization: 0.0,
            lizen_background_utilization: 0.0,
            ..Calibration::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_link_speeds() {
        let c = Calibration::default();
        assert_eq!(c.fast_uplink.as_mbps(), 1000.0);
        assert_eq!(c.lizen_uplink.as_mbps(), 30.0);
        assert!(c.lizen_uplink_loss > c.fast_uplink_loss);
    }

    #[test]
    fn quiet_removes_background() {
        let c = Calibration::quiet();
        assert_eq!(c.backbone_background_utilization, 0.0);
        assert_eq!(c.lizen_background_utilization, 0.0);
    }
}
