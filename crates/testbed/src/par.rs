//! Deterministic parallel execution of embarrassingly-parallel sweep cells.
//!
//! The bench bins evaluate a grid of independent configurations
//! (file size × candidate count × seed × policy …). Each cell builds its own
//! simulator from its own seed, so cells can run on worker threads in any
//! order — as long as the *results* come back in input order, the output is
//! byte-identical to a serial sweep. [`par_map`] guarantees exactly that:
//!
//! * every cell's closure receives only its own input (no shared mutable
//!   state),
//! * results are written into a slot indexed by the cell's position, so
//!   completion order cannot leak into the output,
//! * the worker count changes scheduling only, never results.
//!
//! Workers default to the machine's parallelism and can be pinned with the
//! `DATAGRID_JOBS` environment variable (`DATAGRID_JOBS=1` forces the exact
//! serial path, useful for differential tests).

use std::sync::Mutex;

/// The worker count used by [`par_map`]: `DATAGRID_JOBS` if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when unknown).
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("DATAGRID_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`worker_count`] threads, returning the
/// results **in input order** regardless of scheduling.
///
/// `f` must be a pure function of its input for the parallel output to be
/// byte-identical to the serial output (each bench cell seeds its own
/// simulator, so this holds by construction). Panics in `f` propagate to
/// the caller.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // Feed (index, item) pairs through a shared queue; each result lands in
    // its input slot.
    let queue: Mutex<std::vec::IntoIter<(usize, T)>> = Mutex::new(
        items
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_mutex = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").next();
                let Some((idx, item)) = next else { break };
                let result = f(item);
                slots_mutex.lock().expect("slots poisoned")[idx] = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = par_map(inputs.clone(), |x| x * x);
        let want: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn matches_serial_execution_exactly() {
        // A mildly expensive, purely-input-determined cell function; the
        // parallel result must be byte-identical to the serial one.
        let cell = |seed: u64| -> Vec<u64> {
            let mut rng = datagrid_simnet::rng::SimRng::seed_from_u64(seed);
            (0..50).map(|_| rng.below(1_000_000)).collect()
        };
        let seeds: Vec<u64> = (0..32).collect();
        let serial: Vec<Vec<u64>> = seeds.iter().map(|&s| cell(s)).collect();
        let parallel = par_map(seeds, cell);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }
}
