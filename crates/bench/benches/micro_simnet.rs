//! Criterion micro-benchmarks of the network simulator core.

use criterion::{criterion_group, criterion_main, Criterion};
use datagrid_simnet::flow::{max_min_allocation, FlowDemand};
use datagrid_simnet::prelude::*;
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    // 100 flows over random contiguous segments of a 20-link line.
    let caps: Vec<f64> = (0..20).map(|i| 50.0 + 10.0 * i as f64).collect();
    let mut rng = SimRng::seed_from_u64(1);
    let mut topo = Topology::new();
    let nodes: Vec<NodeId> = (0..21).map(|i| topo.add_node(format!("n{i}"))).collect();
    let mut links = Vec::new();
    for (i, w) in nodes.windows(2).enumerate() {
        let (f, _) = topo.add_duplex_link(
            w[0],
            w[1],
            LinkSpec::new(Bandwidth::from_bps(caps[i]), SimDuration::from_millis(1)),
        );
        links.push(f);
    }
    let segment_routes: Vec<Vec<LinkId>> = (0..100)
        .map(|_| {
            let start = rng.below(15) as usize;
            let len = 1 + rng.below(5) as usize;
            links[start..(start + len).min(links.len())].to_vec()
        })
        .collect();
    let link_caps: Vec<f64> = {
        // capacity vector must be indexable by link id over ALL links
        (0..topo.link_count()).map(|_| 100.0).collect()
    };

    c.bench_function("simnet/max_min_100_flows", |b| {
        b.iter(|| {
            let demands: Vec<FlowDemand<'_>> = segment_routes
                .iter()
                .map(|r| FlowDemand {
                    route: r,
                    cap_bps: f64::INFINITY,
                })
                .collect();
            black_box(max_min_allocation(&demands, &link_caps))
        });
    });
}

fn bench_engine_churn(c: &mut Criterion) {
    c.bench_function("simnet/1000_flow_churn", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let a = topo.add_node("a");
            let bnode = topo.add_node("b");
            topo.add_duplex_link(
                a,
                bnode,
                LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)),
            );
            let mut sim = NetSim::new(topo, 7);
            for i in 0..1000u64 {
                sim.start_flow(FlowSpec::new(a, bnode, 10_000 + i));
            }
            let mut done = 0;
            while let Some(ev) = sim.next_event() {
                if matches!(ev.kind, EventKind::FlowCompleted(_)) {
                    done += 1;
                }
            }
            black_box(done)
        });
    });
}

criterion_group!(benches, bench_solver, bench_engine_churn);
criterion_main!(benches);
