//! Criterion bench for the Fig. 3 experiment: how fast the simulator
//! reproduces one FTP vs GridFTP transfer cell.

use criterion::{criterion_group, criterion_main, Criterion};
use datagrid_bench::{warmed_paper_grid, MB};
use datagrid_gridftp::transfer::{Protocol, TransferRequest};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::sites::canonical_host;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for protocol in [Protocol::Ftp, Protocol::GridFtp] {
        let name = match protocol {
            Protocol::Ftp => "ftp_256mb",
            Protocol::GridFtp => "gridftp_256mb",
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut grid = warmed_paper_grid(1, SimDuration::from_secs(30));
                let src = grid.host_id(canonical_host("alpha01")).unwrap();
                let dst = grid.host_id(canonical_host("gridhit3")).unwrap();
                let req = TransferRequest::new(256 * MB).with_protocol(protocol);
                black_box(grid.transfer_between(src, dst, req).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
