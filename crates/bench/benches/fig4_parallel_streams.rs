//! Criterion bench for the Fig. 4 experiment: simulating parallel-stream
//! transfers over the lossy 30 Mbps path.

use criterion::{criterion_group, criterion_main, Criterion};
use datagrid_bench::{warmed_paper_grid, MB};
use datagrid_gridftp::transfer::TransferRequest;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::sites::canonical_host;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for streams in [1u32, 8] {
        group.bench_function(&format!("streams_{streams}_256mb"), |b| {
            b.iter(|| {
                let mut grid = warmed_paper_grid(1, SimDuration::from_secs(30));
                let src = grid.host_id(canonical_host("alpha02")).unwrap();
                let dst = grid.host_id(canonical_host("lz04")).unwrap();
                let req = TransferRequest::new(256 * MB).with_parallelism(streams);
                black_box(grid.transfer_between(src, dst, req).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
