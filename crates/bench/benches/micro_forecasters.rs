//! Criterion micro-benchmarks of the NWS forecaster battery.

use criterion::{criterion_group, criterion_main, Criterion};
use datagrid_simnet::rng::SimRng;
use datagrid_sysmon::nws::forecast::MetaForecaster;
use std::hint::black_box;

fn bench_battery(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(3);
    let samples: Vec<f64> = (0..1000).map(|_| rng.normal(50.0, 10.0).abs()).collect();

    c.bench_function("nws/battery_update_1000", |b| {
        b.iter(|| {
            let mut meta = MetaForecaster::nws_battery();
            for &s in &samples {
                meta.update(s);
            }
            black_box(meta.forecast())
        });
    });

    let mut warmed = MetaForecaster::nws_battery();
    for &s in &samples {
        warmed.update(s);
    }
    c.bench_function("nws/forecast_query", |b| {
        b.iter(|| black_box(warmed.forecast()));
    });
}

criterion_group!(benches, bench_battery);
criterion_main!(benches);
