//! Criterion micro-benchmarks of the replica catalog.

use criterion::{criterion_group, criterion_main, Criterion};
use datagrid_catalog::ReplicaCatalog;
use std::hint::black_box;

fn bench_catalog(c: &mut Criterion) {
    c.bench_function("catalog/register_1000_files", |b| {
        b.iter(|| {
            let mut cat = ReplicaCatalog::new();
            for i in 0..1000 {
                let lfn = format!("dataset/file-{i:04}").parse().unwrap();
                cat.register_logical(lfn, 1 << 20).unwrap();
            }
            black_box(cat.file_count())
        });
    });

    let mut cat = ReplicaCatalog::new();
    for i in 0..1000 {
        let lfn: datagrid_catalog::LogicalFileName =
            format!("dataset/file-{i:04}").parse().unwrap();
        cat.register_logical(lfn.clone(), 1 << 20).unwrap();
        for h in ["alpha4", "gridhit0", "lz02"] {
            cat.add_replica(&lfn, format!("gsiftp://{h}/s/f{i}").parse().unwrap())
                .unwrap();
        }
    }
    c.bench_function("catalog/lookup_replicas", |b| {
        let lfn: datagrid_catalog::LogicalFileName = "dataset/file-0500".parse().unwrap();
        b.iter(|| black_box(cat.replicas(&lfn).unwrap().len()));
    });
    c.bench_function("catalog/list_prefix", |b| {
        b.iter(|| black_box(cat.list("dataset/file-09").len()));
    });
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
