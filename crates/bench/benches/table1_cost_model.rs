//! Criterion bench for the Table 1 scenario: factor gathering, scoring
//! and the full Fig. 1 fetch.

use criterion::{criterion_group, criterion_main, Criterion};
use datagrid_bench::{warmed_paper_grid, MB};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::sites::canonical_host;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut grid = warmed_paper_grid(1, SimDuration::from_secs(120));
    grid.catalog_mut()
        .register_logical("file-a".parse().unwrap(), 64 * MB)
        .unwrap();
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host)).unwrap();
    }
    let client = grid.host_id("alpha1").unwrap();

    c.bench_function("table1/score_candidates", |b| {
        b.iter(|| black_box(grid.score_candidates(client, "file-a").unwrap()));
    });

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("full_fetch_64mb", |b| {
        b.iter(|| {
            let mut probe = grid.clone();
            black_box(probe.fetch(client, "file-a").unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
