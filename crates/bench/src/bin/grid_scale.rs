//! `grid_scale` — **grid-level scale benchmark**.
//!
//! Replays deterministic multi-client workloads (seeded arrivals, Zipf
//! file popularity — [`datagrid_testbed::workload::grid_workload`])
//! against one shared paper testbed per cell, sweeping the client count.
//! Every selection decision is made while other clients' transfers are
//! consuming the links being scored; by default the sweep also runs both
//! [`SelectionMode`]s side by side, so the report shows what
//! contention-aware `BW_P` buys over the paper's static sensor reading.
//!
//! Writes `BENCH_grid.json` (override with `--out <path>` or
//! `$DATAGRID_BENCH_OUT`): fetches/sec, p50/p95/p99 fetch latency,
//! solver settle counters, failover counts and scratch compaction per
//! cell. `grid_scale --check [path]` re-reads the file and validates the
//! key fields parse — the CI smoke test, not a perf gate.
//!
//! Knobs: `DATAGRID_GRID_CLIENTS` (comma list, default
//! `16,64,256,1024,4096,16384`), `DATAGRID_GRID_FILES`, `DATAGRID_GRID_MODES`
//! (`static`, `contention`, or `both`), `DATAGRID_JOBS` (sweep worker
//! count; output is byte-identical for any value), `DATAGRID_OBS_DIR`
//! (dump each cell's event log / audit / metrics).
//!
//! `--verify` checks the max-min certificate on every cell: each solve
//! is enforced as it happens and the settled post-replay allocation is
//! re-verified. Slower, never changes the emitted numbers.

use datagrid_bench::{banner, seed_from_args, OBS_DIR_ENV};
use datagrid_core::prelude::SelectionMode;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::gridscale::{run_grid_scale, GridScaleConfig, GridScaleReport, GridScaleRun};

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn modes() -> Vec<SelectionMode> {
    match std::env::var("DATAGRID_GRID_MODES").as_deref() {
        Ok("static") => vec![SelectionMode::Static],
        Ok("contention") => vec![SelectionMode::ContentionAware],
        _ => vec![SelectionMode::Static, SelectionMode::ContentionAware],
    }
}

/// Extracts `"key": <number>` from the (known, flat-ish) JSON we wrote.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// CI smoke: re-read the emitted file and validate the key fields parse.
fn check(path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !json.contains("\"grid-scale\"") {
        return Err(format!("{path} is not a grid-scale report"));
    }
    for key in [
        "clients",
        "fetches",
        "completed",
        "makespan_s",
        "fetches_per_sec",
        "latency_p50_s",
        "latency_p99_s",
        "incremental_solves",
    ] {
        let v = extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing numeric field \"{key}\""))?;
        if v.is_nan() || v <= 0.0 {
            return Err(format!("{path}: field \"{key}\" = {v}, expected > 0"));
        }
    }
    let fetches = extract_number(&json, "fetches").unwrap_or(0.0);
    let completed = extract_number(&json, "completed").unwrap_or(0.0);
    if completed > fetches {
        return Err(format!(
            "{path}: completed {completed} exceeds fetches {fetches}"
        ));
    }
    println!(
        "{path}: ok ({:.0} clients, {:.0} fetches, {:.2} fetches/s, p50 {:.1}s)",
        extract_number(&json, "clients").unwrap_or(0.0),
        fetches,
        extract_number(&json, "fetches_per_sec").unwrap_or(0.0),
        extract_number(&json, "latency_p50_s").unwrap_or(0.0),
    );
    Ok(())
}

fn dump_cell_obs(run: &GridScaleRun) {
    let Ok(dir) = std::env::var(OBS_DIR_ENV) else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let label = format!("grid_scale_{}_c{}", run.cell.mode, run.cell.clients);
    let dir = std::path::Path::new(&dir);
    if let Err(err) = std::fs::create_dir_all(dir)
        .and_then(|()| {
            std::fs::write(
                dir.join(format!("{label}.events.jsonl")),
                &run.obs.events_jsonl,
            )
        })
        .and_then(|()| {
            std::fs::write(
                dir.join(format!("{label}.audit.jsonl")),
                &run.obs.audit_jsonl,
            )
        })
        .and_then(|()| {
            std::fs::write(
                dir.join(format!("{label}.metrics.json")),
                &run.obs.metrics_json,
            )
        })
    {
        eprintln!("observability: dump to {} failed: {err}", dir.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_grid.json");
        if let Err(err) = check(path) {
            eprintln!("grid_scale --check failed: {err}");
            std::process::exit(1);
        }
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("DATAGRID_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_grid.json".to_string());

    let seed = seed_from_args();
    banner("Grid scale: deterministic multi-client fetch replay", seed);

    let client_counts = env_list("DATAGRID_GRID_CLIENTS", &[16, 64, 256, 1024, 4096, 16384]);
    let files = env_usize("DATAGRID_GRID_FILES", 48);
    let verify = args.iter().any(|a| a == "--verify");
    if verify {
        println!("verification on: enforcing the max-min certificate on every solve\n");
    }

    let mut runs: Vec<GridScaleRun> = Vec::new();
    for mode in modes() {
        let cfg = GridScaleConfig {
            files,
            mode,
            verify,
            ..GridScaleConfig::default()
        };
        runs.extend(run_grid_scale(seed, &client_counts, &cfg));
    }
    let report = GridScaleReport::from_runs(seed, &runs);

    let mut table = TextTable::new([
        "clients",
        "mode",
        "done/fail",
        "failovers",
        "makespan (s)",
        "fetches/s",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "settles",
    ]);
    for c in &report.cells {
        table.row([
            format!("{}", c.clients),
            c.mode.to_string(),
            format!("{}/{}", c.completed, c.failed),
            format!("{}", c.failovers),
            format!("{:.1}", c.makespan_s),
            format!("{:.3}", c.fetches_per_sec),
            format!("{:.1}", c.p50_s),
            format!("{:.1}", c.p95_s),
            format!("{:.1}", c.p99_s),
            format!("{}", c.incremental_solves + c.full_solves),
        ]);
    }
    print!("{}", table.render());
    println!();
    for c in &report.cells {
        println!(
            "{} clients ({}): scratch {} -> {} elements after shrink",
            c.clients, c.mode, c.scratch_high_water, c.scratch_after_shrink
        );
    }
    for run in &runs {
        dump_cell_obs(run);
    }
    if verify {
        println!(
            "\nmax-min certificate held on every solve across {} cell(s)",
            runs.len()
        );
    }

    let json = report.render_json();
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
