//! Table 1 — **replica selection cost model versus measured transfer
//! time**.
//!
//! Reproduces the paper's §4.3 scenario: the user at THU `alpha1` requests
//! logical file `file-a` (1024 MB) whose replicas live at `alpha4` (same
//! cluster), `hit0` (fast remote site) and `lz02` (slow remote site). The
//! selection server gathers the three system factors per candidate, scores
//! them with weights 0.8/0.1/0.1, and the table compares scores against
//! the transfer time each candidate would actually take (measured by
//! counterfactual replay on cloned grids). Expected shape: score order ==
//! speed order, alpha4 best, lz02 worst.

use datagrid_bench::{banner, emit_observability, seed_from_args, warmed_paper_grid, MB};
use datagrid_core::grid::FetchOptions;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner(
        "Table 1: replica selection cost model and file transfer time (client alpha1, file-a 1024 MB)",
        seed,
    );

    let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
    grid.catalog_mut()
        .register_logical("file-a".parse().expect("valid lfn"), 1024 * MB)
        .expect("fresh catalog");
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host))
            .expect("replica placement");
    }
    let client = grid.host_id("alpha1").expect("alpha1");

    let candidates = grid
        .score_candidates(client, "file-a")
        .expect("scoring succeeds");

    let mut table = TextTable::new([
        "replica",
        "BW_P",
        "CPU_P",
        "IO_P",
        "score",
        "transfer time (s)",
    ]);

    // Counterfactual: replay the fetch with each candidate forced, on a
    // clone (identical randomness), as the paper measured every candidate's
    // physical transfer time. Clones are independent, so the probes fan out
    // across workers; par_map keeps input order (byte-identical to serial).
    let probes: Vec<_> = candidates
        .iter()
        .map(|c| (c.host_name.clone(), grid.clone()))
        .collect();
    let measured = par_map(probes, |(host, mut probe)| {
        probe
            .fetch_from(client, "file-a", &host, FetchOptions::default())
            .expect("forced fetch succeeds")
            .transfer
            .duration()
            .as_secs_f64()
    });

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (c, &secs) in candidates.iter().zip(&measured) {
        table.row([
            c.host_name.clone(),
            format!("{:.3}", c.factors.bandwidth_fraction),
            format!("{:.3}", c.factors.cpu_idle),
            format!("{:.3}", c.factors.io_idle),
            format!("{:.3}", c.score),
            format!("{secs:.1}"),
        ]);
        rows.push((c.host_name.clone(), c.score, secs));
    }

    print!("{}", table.render());
    println!();

    // The paper's claim: the score ranking matches the transfer-time
    // ranking, so the cost model picks the best replica.
    let mut by_score = rows.clone();
    by_score.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut by_time = rows.clone();
    by_time.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    let agree = by_score.iter().zip(&by_time).all(|(s, t)| s.0 == t.0);
    println!(
        "score order:        {}",
        by_score
            .iter()
            .map(|r| r.0.as_str())
            .collect::<Vec<_>>()
            .join(" > ")
    );
    println!(
        "measured-time order: {}",
        by_time
            .iter()
            .map(|r| r.0.as_str())
            .collect::<Vec<_>>()
            .join(" < ")
    );
    println!(
        "cost model ranking {} the measured transfer-time ranking (paper: they match).",
        if agree { "MATCHES" } else { "DOES NOT MATCH" }
    );

    // And run the actual scenario end to end with the selector free.
    let report = grid.fetch(client, "file-a").expect("scenario fetch");
    println!(
        "\nfull Fig. 1 scenario: selection server chose {} (score {:.3}); transfer took {:.1} s \
         (decision latency {:.1} ms).",
        report.chosen_candidate().host_name,
        report.chosen_candidate().score,
        report.transfer.duration().as_secs_f64(),
        report.decision_latency.as_millis_f64(),
    );

    // Feed the counterfactual measurements back into the decision's audit
    // entry so its rank/measured-time agreement covers all candidates.
    if let Some(decision) = grid.recorder_mut().audit_mut().last_mut() {
        for (host, _score, secs) in &rows {
            decision.attach_measured(host, *secs);
        }
    }
    if let Some(decision) = grid.audit().last() {
        println!("\nselection audit:\n{}", decision.render_text());
        if let Some(agreement) = decision.rank_agreement() {
            println!(
                "rank vs measured-time agreement: {:.0}% of candidate pairs ordered consistently.",
                agreement * 100.0
            );
        }
    }
    emit_observability(&grid, "table1");
}
