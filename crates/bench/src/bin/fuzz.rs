//! `fuzz` — **seeded differential fuzzing of the solver and replay
//! engines**.
//!
//! Draws a corpus of random scenarios (topology, fault schedule,
//! multi-client workload — all from one corpus seed) and runs each
//! through the paired configurations of [`datagrid_testbed::fuzz`]:
//! batching on/off and validation on/off must be byte-identical on every
//! public surface; incremental vs full solves and static vs
//! contention-aware selection must agree on the completion set. On
//! divergence the scenario shrinks to a minimal reproducer and prints a
//! replay token.
//!
//! ```text
//! fuzz [--count N] [--seed S] [--replay CODE] [--deny-divergence] [--break-oracle]
//! ```
//!
//! * `--count N` — corpus size (default 200).
//! * `--seed S` — corpus seed (default [`DEFAULT_SEED`]).
//! * `--replay CODE` — skip the corpus and re-run one scenario from its
//!   packed code (as printed in a divergence report), byte-identically.
//! * `--deny-divergence` — exit non-zero if any scenario diverges (the
//!   CI smoke gate).
//! * `--break-oracle` — sabotage the baseline surfaces so the harness
//!   MUST report, shrink and replay a divergence; exits non-zero if it
//!   stays silent. Self-test of the tester.
//!
//! Scenarios fan out with [`datagrid_testbed::par::par_map`]
//! (`DATAGRID_JOBS` controls the worker count); output is byte-identical
//! for any value.

use datagrid_bench::DEFAULT_SEED;
use datagrid_testbed::fuzz::{check_scenario, render_divergence_report, shrink, FuzzSpec};
use datagrid_testbed::par::par_map;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_code(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny-divergence");
    let break_oracle = args.iter().any(|a| a == "--break-oracle");
    let count: u64 = arg_value(&args, "--count")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);

    if let Some(code_arg) = arg_value(&args, "--replay") {
        let Some(code) = parse_code(&code_arg) else {
            eprintln!("fuzz: --replay {code_arg}: not a number");
            std::process::exit(2);
        };
        let Some(spec) = FuzzSpec::from_code(code) else {
            eprintln!("fuzz: --replay 0x{code:016x}: not a valid scenario code");
            std::process::exit(2);
        };
        println!("replaying {}", spec.describe());
        let divergences = check_scenario(&spec, break_oracle);
        if divergences.is_empty() {
            println!("all pairs agree");
            return;
        }
        for d in &divergences {
            println!("  {d}");
        }
        std::process::exit(1);
    }

    println!("=== fuzz: differential corpus (seed {seed}, {count} scenarios) ===");
    if break_oracle {
        println!("oracle sabotage on: the harness must catch its own corruption\n");
    }

    let indices: Vec<u64> = (0..count).collect();
    let results: Vec<(FuzzSpec, Vec<datagrid_testbed::fuzz::Divergence>)> =
        par_map(indices, |index| {
            let spec = FuzzSpec::from_corpus(seed, index);
            let divergences = check_scenario(&spec, break_oracle);
            (spec, divergences)
        });

    let mut diverged = 0usize;
    for (spec, divergences) in &results {
        if divergences.is_empty() {
            continue;
        }
        diverged += 1;
        let (shrunk, shrunk_divs) = shrink(spec, break_oracle);
        print!(
            "{}",
            render_divergence_report(spec, divergences, &shrunk, &shrunk_divs)
        );
        println!();
    }

    println!(
        "{} scenarios, {} diverged, {} agree",
        results.len(),
        diverged,
        results.len() - diverged
    );

    if break_oracle {
        if diverged == 0 {
            eprintln!("fuzz: --break-oracle sabotaged the baseline but no divergence was reported");
            std::process::exit(1);
        }
        println!("harness self-test passed: sabotage was detected and shrunk");
        return;
    }
    if diverged > 0 && deny {
        std::process::exit(1);
    }
}
