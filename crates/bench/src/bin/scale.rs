//! `scale` — **simulation-core throughput benchmark**.
//!
//! Measures how fast the fluid-flow engine settles large flow populations
//! under the two solver modes:
//!
//! * [`SolverMode::Full`] — the from-scratch baseline: every arrival,
//!   completion or fault re-solves the whole network and reschedules every
//!   flow (the engine's original behaviour),
//! * [`SolverMode::Incremental`] — the per-link flow index + connected
//!   component solver that only touches the perturbed component.
//!
//! Two figures: `disjoint-pairs` (1k+ concurrent flows over independent
//! site pairs, the regime replica selection creates — most transfers do
//! not share links) and `coupled-hub` (every flow crosses one shared hub,
//! the honest worst case where the component is the whole network).
//!
//! Writes `BENCH_simnet.json` (override with `--out <path>` or
//! `$DATAGRID_BENCH_OUT`) with events/sec, settles/sec, flows sustained
//! and wall time per figure, baseline and incremental side by side.
//! `scale --check [path]` re-reads the file and validates the key
//! throughput fields parse — the CI smoke test, not a perf gate.
//! `--verify` turns on per-solve max-min certificate enforcement plus a
//! peak-population [`NetSim::verify_allocation`] check per figure (wall
//! times are then not comparable to unverified runs).

use std::fmt::Write as _;
use std::time::Instant;

use datagrid_bench::{banner, emit_engine_observability, MB};
use datagrid_simnet::engine::{EventKind, FlowSpec, NetSim, SolverMode};
use datagrid_simnet::time::SimDuration;
use datagrid_simnet::topology::{Bandwidth, LinkSpec, NodeId, Topology};
use datagrid_testbed::experiment::TextTable;

/// The seed is cosmetic here (no randomness in the workload), but keeps
/// the banner format consistent with the other reproducers.
const SEED: u64 = 20050905;

fn mode_label(mode: SolverMode) -> &'static str {
    match mode {
        SolverMode::Full => "full",
        SolverMode::Incremental => "incremental",
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One solver-mode run of one figure.
struct ModeResult {
    wall_s: f64,
    events_processed: u64,
    settles: u64,
    flows_touched: u64,
}

impl ModeResult {
    fn events_per_sec(&self) -> f64 {
        self.events_processed as f64 / self.wall_s
    }

    fn settles_per_sec(&self) -> f64 {
        self.settles as f64 / self.wall_s
    }

    fn json(&self) -> String {
        format!(
            "{{\"wall_s\": {:.6}, \"events_processed\": {}, \"settles\": {}, \
             \"flows_touched\": {}, \"events_per_sec\": {:.1}, \"settles_per_sec\": {:.1}}}",
            self.wall_s,
            self.events_processed,
            self.settles,
            self.flows_touched,
            self.events_per_sec(),
            self.settles_per_sec(),
        )
    }
}

struct Figure {
    name: &'static str,
    flows: usize,
    full: ModeResult,
    incremental: ModeResult,
}

impl Figure {
    /// Settle throughput improvement: both modes process the same workload
    /// (same arrivals and completions), so the ratio of settles/sec is the
    /// per-event reallocation speedup.
    fn settle_speedup(&self) -> f64 {
        self.incremental.settles_per_sec() / self.full.settles_per_sec()
    }

    fn wall_speedup(&self) -> f64 {
        self.full.wall_s / self.incremental.wall_s
    }
}

/// `pairs` independent site pairs, each with a dedicated duplex link and
/// `flows_per_pair` concurrent flows of staggered sizes (distinct
/// completion times, so every completion perturbs its component).
fn disjoint_pairs_run(
    pairs: usize,
    flows_per_pair: usize,
    mode: SolverMode,
    verify: bool,
) -> ModeResult {
    let mut topo = Topology::new();
    let endpoints: Vec<(NodeId, NodeId)> = (0..pairs)
        .map(|i| {
            let a = topo.add_node(format!("src{i}"));
            let b = topo.add_node(format!("dst{i}"));
            topo.add_duplex_link(
                a,
                b,
                LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1)),
            );
            (a, b)
        })
        .collect();
    let mut sim = NetSim::new(topo, SEED);
    sim.set_solver_mode(mode);
    sim.set_validation(verify);

    let start = Instant::now();
    for (i, &(a, b)) in endpoints.iter().enumerate() {
        for k in 0..flows_per_pair {
            // 4..20 MB, varied per pair and per flow.
            let bytes = (4 + (i + 3 * k) % 16) as u64 * MB;
            sim.start_flow(FlowSpec::new(a, b, bytes));
        }
    }
    if verify {
        sim.verify_allocation()
            .expect("peak-population allocation carries the max-min certificate");
    }
    let result = drain(&mut sim, start);
    emit_engine_observability(&sim, &format!("scale_disjoint_pairs_{}", mode_label(mode)));
    result
}

/// `hosts` spokes around one hub; every flow crosses the shared hub, so
/// all flows form a single connected component and the incremental solver
/// degenerates to (almost) the full solve.
fn coupled_hub_run(
    hosts: usize,
    flows_per_host: usize,
    mode: SolverMode,
    verify: bool,
) -> ModeResult {
    let mut topo = Topology::new();
    let hub = topo.add_node("hub");
    let spokes: Vec<NodeId> = (0..hosts)
        .map(|i| {
            let n = topo.add_node(format!("host{i}"));
            topo.add_duplex_link(
                n,
                hub,
                LinkSpec::new(Bandwidth::from_mbps(200.0), SimDuration::from_millis(1)),
            );
            n
        })
        .collect();
    let mut sim = NetSim::new(topo, SEED);
    sim.set_solver_mode(mode);
    sim.set_validation(verify);

    let start = Instant::now();
    for (i, &src) in spokes.iter().enumerate() {
        for k in 0..flows_per_host {
            let dst = spokes[(i + 1 + k) % spokes.len()];
            let bytes = (4 + (i + 5 * k) % 12) as u64 * MB;
            sim.start_flow(FlowSpec::new(src, dst, bytes));
        }
    }
    if verify {
        sim.verify_allocation()
            .expect("peak-population allocation carries the max-min certificate");
    }
    let result = drain(&mut sim, start);
    emit_engine_observability(&sim, &format!("scale_coupled_hub_{}", mode_label(mode)));
    result
}

/// Runs the event loop until every flow has completed, then snapshots the
/// engine counters for whichever solver mode was active.
fn drain(sim: &mut NetSim, start: Instant) -> ModeResult {
    while let Some(ev) = sim.next_event() {
        debug_assert!(matches!(ev.kind, EventKind::FlowCompleted(_)));
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = sim.stats();
    assert_eq!(stats.flows_started, stats.flows_completed, "drained");
    ModeResult {
        wall_s,
        events_processed: stats.events_processed,
        settles: stats.incremental_solves + stats.full_solves,
        flows_touched: stats.solver_flows_touched,
    }
}

fn render_json(figures: &[Figure]) -> String {
    let headline = &figures[0];
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"simnet-scale\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"flows_sustained\": {},", headline.flows);
    let _ = writeln!(
        out,
        "  \"events_per_sec\": {:.1},",
        headline.incremental.events_per_sec()
    );
    let _ = writeln!(
        out,
        "  \"settles_per_sec\": {:.1},",
        headline.incremental.settles_per_sec()
    );
    let _ = writeln!(
        out,
        "  \"settle_throughput_speedup\": {:.2},",
        headline.settle_speedup()
    );
    out.push_str("  \"figures\": [\n");
    for (i, fig) in figures.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", fig.name);
        let _ = writeln!(out, "      \"flows_sustained\": {},", fig.flows);
        let _ = writeln!(out, "      \"baseline_full\": {},", fig.full.json());
        let _ = writeln!(out, "      \"incremental\": {},", fig.incremental.json());
        let _ = writeln!(
            out,
            "      \"settle_throughput_speedup\": {:.2},",
            fig.settle_speedup()
        );
        let _ = writeln!(out, "      \"wall_speedup\": {:.2}", fig.wall_speedup());
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < figures.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"key": <number>` from the (known, flat-ish) JSON we wrote.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// CI smoke: re-read the emitted file and validate the key throughput
/// fields parse as positive numbers. Deliberately *not* a perf gate — CI
/// machines are too noisy to assert the speedup itself.
fn check(path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !json.contains("\"simnet-scale\"") {
        return Err(format!("{path} is not a simnet-scale report"));
    }
    for key in [
        "flows_sustained",
        "events_per_sec",
        "settles_per_sec",
        "settle_throughput_speedup",
        "wall_s",
    ] {
        let v = extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing numeric field \"{key}\""))?;
        if v.is_nan() || v <= 0.0 {
            return Err(format!("{path}: field \"{key}\" = {v}, expected > 0"));
        }
    }
    println!(
        "{path}: ok ({} flows, {:.0} events/s, {:.0} settles/s, {:.1}x settle speedup)",
        extract_number(&json, "flows_sustained").unwrap_or(0.0),
        extract_number(&json, "events_per_sec").unwrap_or(0.0),
        extract_number(&json, "settles_per_sec").unwrap_or(0.0),
        extract_number(&json, "settle_throughput_speedup").unwrap_or(0.0),
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_simnet.json");
        if let Err(err) = check(path) {
            eprintln!("scale --check failed: {err}");
            std::process::exit(1);
        }
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("DATAGRID_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_simnet.json".to_string());

    banner(
        "Scale: simulation-core settle throughput (incremental vs full solver)",
        SEED,
    );

    let pairs = env_usize("DATAGRID_SCALE_PAIRS", 256);
    let per_pair = env_usize("DATAGRID_SCALE_FLOWS_PER_PAIR", 8);
    let hosts = env_usize("DATAGRID_SCALE_HOSTS", 64);
    let per_host = env_usize("DATAGRID_SCALE_FLOWS_PER_HOST", 4);
    let verify = args.iter().any(|a| a == "--verify");
    if verify {
        println!(
            "verification on: every solve is certificate-checked \
             (wall times are not comparable to unverified runs)\n"
        );
    }

    let figures = [
        Figure {
            name: "disjoint-pairs",
            flows: pairs * per_pair,
            full: disjoint_pairs_run(pairs, per_pair, SolverMode::Full, verify),
            incremental: disjoint_pairs_run(pairs, per_pair, SolverMode::Incremental, verify),
        },
        Figure {
            name: "coupled-hub",
            flows: hosts * per_host,
            full: coupled_hub_run(hosts, per_host, SolverMode::Full, verify),
            incremental: coupled_hub_run(hosts, per_host, SolverMode::Incremental, verify),
        },
    ];

    let mut table = TextTable::new([
        "figure",
        "flows",
        "mode",
        "wall (ms)",
        "events/s",
        "settles/s",
        "flows touched",
    ]);
    for fig in &figures {
        for (mode, r) in [("full", &fig.full), ("incremental", &fig.incremental)] {
            table.row([
                fig.name.to_string(),
                format!("{}", fig.flows),
                mode.to_string(),
                format!("{:.2}", r.wall_s * 1e3),
                format!("{:.0}", r.events_per_sec()),
                format!("{:.0}", r.settles_per_sec()),
                format!("{}", r.flows_touched),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    for fig in &figures {
        println!(
            "{}: settle throughput {:.1}x the from-scratch baseline (wall {:.1}x) at {} \
             concurrent flows",
            fig.name,
            fig.settle_speedup(),
            fig.wall_speedup(),
            fig.flows,
        );
    }

    let json = render_json(&figures);
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
