//! Ablation — **security versus speed**.
//!
//! The paper's Data Grid rests on "a secure, reliable, efficient data
//! transport protocol"; GSI secures the control channel and GridFTP's
//! `PROT` command optionally protects the data channel. This binary
//! quantifies what each level costs on the testbed: plain FTP, GridFTP
//! with a clear data channel (the Globus default the paper measured),
//! integrity protection (`PROT S`) and full privacy (`PROT P`), from a
//! CPU-modest HIT server and from the dual-CPU THU server.

use datagrid_bench::{banner, emit_observability, seed_from_args, slug, warmed_paper_grid, MB};
use datagrid_gridftp::transfer::{DataChannelProtection, Protocol, TransferRequest};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner(
        "Ablation: transport security levels (FTP / GridFTP PROT C,S,P)",
        seed,
    );

    let mut table = TextTable::new(["configuration", "from gridhit0 (s)", "from alpha4 (s)"]);

    let cases: [(&str, Protocol, DataChannelProtection); 4] = [
        (
            "FTP (no security)",
            Protocol::Ftp,
            DataChannelProtection::Clear,
        ),
        (
            "GridFTP PROT C (clear)",
            Protocol::GridFtp,
            DataChannelProtection::Clear,
        ),
        (
            "GridFTP PROT S (integrity)",
            Protocol::GridFtp,
            DataChannelProtection::Safe,
        ),
        (
            "GridFTP PROT P (privacy)",
            Protocol::GridFtp,
            DataChannelProtection::Private,
        ),
    ];

    // Two independent transfers per configuration (fresh grid each), so
    // the whole case x source sweep fans out across workers; par_map
    // keeps results in input order.
    let cells: Vec<(Protocol, DataChannelProtection, &str)> = cases
        .iter()
        .flat_map(|&(_, protocol, protection)| {
            ["hit0", "alpha4"].map(|src| (protocol, protection, src))
        })
        .collect();
    let secs = par_map(cells, |(protocol, protection, src_name)| {
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(60));
        let src = grid.host_id(canonical_host(src_name)).expect("host");
        let dst = grid.host_id("alpha1").expect("alpha1");
        let req = TransferRequest::new(256 * MB)
            .with_protocol(protocol)
            .with_protection(protection);
        let secs = grid
            .transfer_between(src, dst, req)
            .expect("transfer runs")
            .duration()
            .as_secs_f64();
        emit_observability(
            &grid,
            &format!(
                "ablation_security_{}_{}",
                slug(src_name),
                slug(&format!("{protocol:?}_{protection:?}")),
            ),
        );
        secs
    });
    for ((label, _, _), pair) in cases.iter().zip(secs.chunks(2)) {
        table.row([
            label.to_string(),
            format!("{:.1}", pair[0]),
            format!("{:.1}", pair[1]),
        ]);
    }

    print!("{}", table.render());
    println!();
    println!(
        "expected shape: on WAN paths the network is the bottleneck and even PROT P is \
         nearly free, while on the fast LAN path (alpha4 -> alpha1) encryption becomes \
         CPU-bound and visibly slows the transfer -- why Globus defaults the data channel \
         to clear and the paper measured it that way."
    );
}
