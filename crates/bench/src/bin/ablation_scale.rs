//! Ablation — **larger, dynamic grids** (the paper's future work §5,
//! item 3: "extend our Data Grid testbed for analyzing the performance of
//! replica selection in a dynamic and larger number of sites
//! environment").
//!
//! Builds synthetic star grids with a growing number of replica sites
//! whose link speeds, loads and loss rates vary, then compares the paper
//! weights, auto-tuned weights (see [`datagrid_core::tuning`]),
//! bandwidth-only selection and random selection against the oracle.
//! Expected shape: monitored policies beat random, and per-environment
//! tuned weights recover the accuracy the paper's fixed 0.8/0.1/0.1 loses
//! on grids whose BW_P values are crushed by the global normalisation.

use datagrid_bench::{banner, emit_observability, seed_from_args, slug, MB};
use datagrid_core::cost::CostModel;
use datagrid_core::grid::{FetchOptions, GridBuilder};
use datagrid_core::policy::SelectionPolicy;
use datagrid_core::tuning::{Observation, WeightTuner};
use datagrid_simnet::rng::SimRng;
use datagrid_simnet::time::SimDuration;
use datagrid_simnet::topology::{Bandwidth, LinkSpec};
use datagrid_sysmon::host::HostSpec;
use datagrid_sysmon::load::LoadModel;
use datagrid_testbed::experiment::{selection_quality, TextTable};
use datagrid_testbed::par::par_map;
use datagrid_testbed::workload::RequestTrace;

/// A star grid: one client site plus `sites` heterogeneous replica sites.
fn synthetic_grid(sites: usize, seed: u64) -> datagrid_core::grid::DataGrid {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x5CA1E);
    let mut b = GridBuilder::new(seed);
    let client = b.add_host(
        HostSpec::new("client").with_cpu(2, 2.0),
        LoadModel::Constant(0.1),
        LoadModel::Constant(0.1),
    );
    let hub = b.add_switch("hub");
    let mut replica_hosts = Vec::new();
    for i in 0..sites {
        let name = format!("site{i:02}");
        let cpu_mean = rng.uniform(0.1, 0.8);
        let io_mean = rng.uniform(0.1, 0.6);
        let node = b.add_host(
            HostSpec::new(&name).with_cpu(1, rng.uniform(0.9, 3.0)),
            LoadModel::Ar1 {
                mean: cpu_mean,
                phi: 0.9,
                sigma: 0.1,
            },
            LoadModel::Ar1 {
                mean: io_mean,
                phi: 0.9,
                sigma: 0.1,
            },
        );
        let capacity = Bandwidth::from_mbps(rng.uniform(10.0, 600.0));
        let latency = SimDuration::from_secs_f64(rng.uniform(0.002, 0.030));
        let loss = rng.uniform(0.0, 0.01);
        b.topology_mut().add_duplex_link(
            node,
            hub,
            LinkSpec::new(capacity, latency).with_loss(loss),
        );
        b.monitor_path(node, client);
        replica_hosts.push(name);
    }
    b.topology_mut().add_duplex_link(
        client,
        hub,
        LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_millis(1)),
    );
    b.catalog_host("client");
    let mut grid = b.build();
    grid.catalog_mut()
        .register_logical("file-s".parse().expect("valid lfn"), 128 * MB)
        .expect("fresh catalog");
    for name in &replica_hosts {
        grid.place_replica("file-s", name)
            .expect("replica placement");
    }
    grid.warm_up(SimDuration::from_secs(300));
    grid
}

fn main() {
    let seed = seed_from_args();
    banner(
        "Ablation: scaling to larger dynamic grids (future work #3)",
        seed,
    );

    let mut table = TextTable::new([
        "replica sites",
        "policy",
        "oracle accuracy",
        "mean regret",
        "mean fetch (s)",
    ]);

    // One cell per (site count, policy) plus a tuned-weights cell per site
    // count. Every cell builds its own grid from the seed, so cells fan out
    // across workers; par_map returns rows in input order, byte-identical
    // to the serial sweep.
    let mut cells: Vec<(usize, Option<SelectionPolicy>)> = Vec::new();
    for sites in [3usize, 6, 12] {
        for policy in [
            SelectionPolicy::CostModel,
            SelectionPolicy::BandwidthOnly,
            SelectionPolicy::Random,
        ] {
            cells.push((sites, Some(policy)));
        }
        cells.push((sites, None)); // auto-tuned weights
    }

    let rows = par_map(cells, |(sites, policy)| -> [String; 5] {
        let trace = RequestTrace::poisson(
            &["client"],
            &["file-s"],
            1.0 / 90.0,
            SimDuration::from_secs(1500),
            seed ^ sites as u64,
        );
        match policy {
            Some(policy) => {
                let mut grid = synthetic_grid(sites, seed);
                let stats = selection_quality(
                    &mut grid,
                    &trace,
                    policy,
                    FetchOptions::default().with_parallelism(4),
                );
                emit_observability(
                    &grid,
                    &format!("ablation_scale_s{sites}_{}", slug(stats.policy)),
                );
                [
                    format!("{sites}"),
                    stats.policy.to_string(),
                    format!("{:.2}", stats.oracle_accuracy),
                    format!("{:.2}", stats.mean_regret),
                    format!("{:.1}", stats.mean_duration_s),
                ]
            }
            None => {
                // Cost model with per-environment auto-tuned weights
                // (future work #2 applied to future work #3).
                let mut grid = synthetic_grid(sites, seed);
                let client = grid.host_id("client").expect("client host");
                let mut tuner = WeightTuner::new();
                for _ in 0..2 {
                    grid.warm_up(SimDuration::from_secs(60));
                    for c in grid
                        .score_candidates(client, "file-s")
                        .expect("scoring succeeds")
                    {
                        let mut probe = grid.clone();
                        let secs = probe
                            .fetch_from(
                                client,
                                "file-s",
                                &c.host_name,
                                FetchOptions::default().with_parallelism(4),
                            )
                            .expect("oracle fetch")
                            .transfer
                            .duration()
                            .as_secs_f64();
                        tuner.record(Observation::new(c.factors, secs));
                    }
                }
                let (weights, _) = tuner.tune(10).expect("enough observations");
                let mut grid = synthetic_grid(sites, seed);
                grid.selector_mut().set_cost_model(CostModel::new(weights));
                let stats = selection_quality(
                    &mut grid,
                    &trace,
                    SelectionPolicy::CostModel,
                    FetchOptions::default().with_parallelism(4),
                );
                emit_observability(&grid, &format!("ablation_scale_s{sites}_tuned"));
                [
                    format!("{sites}"),
                    format!(
                        "tuned ({:.2}/{:.2}/{:.2})",
                        weights.bandwidth, weights.cpu, weights.io
                    ),
                    format!("{:.2}", stats.oracle_accuracy),
                    format!("{:.2}", stats.mean_regret),
                    format!("{:.1}", stats.mean_duration_s),
                ]
            }
        }
    });
    for row in rows {
        table.row(row);
    }

    print!("{}", table.render());
    println!();
    println!(
        "expected shape: monitored policies beat random selection, and the gap grows with \
         the number and heterogeneity of candidate sites. The run also exposes a genuine \
         limitation of the paper's fixed weights: BW_P is normalised by the grid-wide \
         maximum bandwidth, so on large grids full of long-RTT paths the bandwidth term is \
         crushed below the CPU/IO terms and 0.8/0.1/0.1 can misrank -- bandwidth-only \
         selection (or weights tuned per environment, see ablation_weights) recovers the \
         accuracy. This is exactly the weight-determination problem the paper defers to \
         future work."
    );
}
