//! Ablation — **dynamic replica creation strategies**.
//!
//! Replica *selection* (the paper) and replica *creation* (its companion
//! problem) interact: once hot files are replicated close to demand, the
//! selector serves local or near reads. This binary replays the same
//! Zipf workload under three strategies from
//! [`datagrid_core::replication`] and reports mean fetch time, the local
//! hit rate and how many replica copies were created (the storage price).

use datagrid_bench::{banner, emit_observability, seed_from_args, slug, warmed_paper_grid, MB};
use datagrid_core::grid::FetchOptions;
use datagrid_core::replication::{ReplicationManager, ReplicationStrategy};
use datagrid_simnet::time::{SimDuration, SimTime};
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;
use datagrid_testbed::workload::RequestTrace;

fn main() {
    let seed = seed_from_args();
    banner(
        "Ablation: dynamic replication strategies over a Zipf workload",
        seed,
    );

    let strategies: [(&str, ReplicationStrategy); 3] = [
        ("never (paper: selection only)", ReplicationStrategy::Never),
        (
            "fetch-count >= 2",
            ReplicationStrategy::FetchCount { threshold: 2 },
        ),
        (
            "slow-fetch > 30 s",
            ReplicationStrategy::SlowFetch { threshold_s: 30.0 },
        ),
    ];

    let files: Vec<String> = (0..4).map(|i| format!("dataset/file-{i}")).collect();
    let file_refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let clients = ["gridhit1", "gridhit2", "lz01", "lz03"];
    let trace = RequestTrace::poisson(
        &clients,
        &file_refs,
        1.0 / 100.0,
        SimDuration::from_secs(4000),
        seed ^ 0x4EB,
    );

    let mut table = TextTable::new([
        "strategy",
        "requests",
        "mean fetch (s)",
        "local hits",
        "replicas created",
    ]);

    // Each strategy replays the trace on its own grid, so the three
    // strategies fan out across workers; par_map keeps rows in input
    // order (byte-identical to serial).
    let rows = par_map(strategies.to_vec(), |(label, strategy)| {
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
        for f in &files {
            grid.catalog_mut()
                .register_logical(f.parse().expect("valid lfn"), 128 * MB)
                .expect("fresh catalog");
            grid.place_replica(f, canonical_host("alpha4"))
                .expect("replica placement");
        }
        let mut mgr = ReplicationManager::new(strategy);
        let mut durations = Vec::new();
        let mut local_hits = 0usize;
        let mut created = 0usize;
        for req in trace.requests() {
            let at = SimTime::from_nanos(req.at.as_nanos().max(grid.now().as_nanos()));
            grid.advance_to(at);
            let client = grid.host_id(&req.client).expect("testbed host");
            let report = grid
                .fetch_with(
                    client,
                    &req.lfn,
                    FetchOptions::default().with_parallelism(4),
                )
                .expect("fetch succeeds");
            durations.push(report.transfer.duration().as_secs_f64());
            if report.local_hit {
                local_hits += 1;
            }
            if let Some(advice) = mgr.observe(&report) {
                grid.replicate(&advice.lfn, &advice.to_host, 4)
                    .expect("replication succeeds");
                created += 1;
            }
        }
        let mean = durations.iter().sum::<f64>() / durations.len().max(1) as f64;
        emit_observability(&grid, &format!("ablation_replication_{}", slug(label)));
        [
            label.to_string(),
            format!("{}", durations.len()),
            format!("{mean:.1}"),
            format!("{local_hits}"),
            format!("{created}"),
        ]
    });
    for row in rows {
        table.row(row);
    }

    print!("{}", table.render());
    println!();
    println!(
        "expected shape: replication strategies trade storage (replicas created) for time \
         -- repeat customers at HIT and the slow Li-Zen site turn remote WAN fetches into \
         local reads, shrinking the mean fetch far below selection-only."
    );
}
