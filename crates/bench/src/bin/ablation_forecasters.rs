//! Ablation — **NWS forecaster accuracy**.
//!
//! The cost model consumes NWS *forecasts* of path bandwidth, so forecast
//! quality bounds selection quality. This binary lets the testbed run for
//! half an hour of simulated time, then reports every battery member's
//! cumulative error on the volatile Li-Zen path and the stable HIT path,
//! plus which member the dynamic selection currently trusts.

use datagrid_bench::{banner, emit_observability, seed_from_args, warmed_paper_grid};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner("Ablation: NWS forecaster battery accuracy", seed);

    let grid = warmed_paper_grid(seed, SimDuration::from_secs(1800));
    let alpha1 = grid.host_id("alpha1").expect("alpha1");

    for remote in ["lz02", "hit0"] {
        let host = grid.host_id(canonical_host(remote)).expect("remote host");
        let sensor = grid
            .nws()
            .sensor(grid.node_of(host), grid.node_of(alpha1))
            .expect("monitored path");
        println!(
            "path {} -> alpha1: {} samples, selected forecaster: {}",
            remote,
            sensor.series().len(),
            sensor.battery().selected().unwrap_or("<none>"),
        );
        let mut table = TextTable::new(["forecaster", "MAE (Mbps)", "RMSE (Mbps)", "predictions"]);
        let mut scores: Vec<_> = sensor.battery().scores().to_vec();
        scores.sort_by(|a, b| a.mae().partial_cmp(&b.mae()).expect("finite"));
        for s in scores {
            table.row([
                s.name.to_string(),
                format!("{:.3}", s.mae() / 1e6),
                format!("{:.3}", s.mse().sqrt() / 1e6),
                format!("{}", s.predictions),
            ]);
        }
        print!("{}", table.render());
        println!();
    }

    println!(
        "expected shape: smoothing/median forecasters beat last-value on the noisy Li-Zen \
         path; the dynamic meta-selection picks a low-MAE member, which is why NWS uses a \
         battery rather than a single predictor."
    );
    emit_observability(&grid, "ablation_forecasters");
}
