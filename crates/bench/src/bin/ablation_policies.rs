//! Ablation — **selection policy comparison**.
//!
//! Runs the same request trace under every implemented policy and scores
//! each against the clone-based oracle. Expected shape: the paper's cost
//! model ties or beats bandwidth-only selection and clearly beats the
//! monitoring-free baselines (random, round-robin) and the network-blind
//! least-loaded policy.

use datagrid_bench::{banner, emit_observability, seed_from_args, slug, warmed_paper_grid, MB};
use datagrid_core::grid::FetchOptions;
use datagrid_core::policy::SelectionPolicy;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::{selection_quality, TextTable};
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;
use datagrid_testbed::workload::RequestTrace;

fn main() {
    let seed = seed_from_args();
    banner("Ablation: selection policies vs the oracle", seed);

    let mut table = TextTable::new(["policy", "oracle accuracy", "mean regret", "mean fetch (s)"]);

    // Each policy runs on its own freshly built grid, so the sweep fans
    // out across workers; par_map keeps rows in input order
    // (byte-identical to serial).
    let rows = par_map(SelectionPolicy::all().to_vec(), |policy| {
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
        grid.catalog_mut()
            .register_logical("file-p".parse().expect("valid lfn"), 256 * MB)
            .expect("fresh catalog");
        for host in ["alpha4", "hit0", "lz02"] {
            grid.place_replica("file-p", canonical_host(host))
                .expect("replica placement");
        }
        let trace = RequestTrace::poisson(
            &["alpha1", "alpha3", "gridhit1", "lz03"],
            &["file-p"],
            1.0 / 120.0,
            SimDuration::from_secs(2400),
            seed ^ 0x9017,
        );
        let stats = selection_quality(
            &mut grid,
            &trace,
            policy,
            FetchOptions::default().with_parallelism(4),
        );
        emit_observability(&grid, &format!("ablation_policies_{}", slug(stats.policy)));
        [
            stats.policy.to_string(),
            format!("{:.2}", stats.oracle_accuracy),
            format!("{:.2}", stats.mean_regret),
            format!("{:.1}", stats.mean_duration_s),
        ]
    });
    for row in rows {
        table.row(row);
    }

    print!("{}", table.render());
    println!();
    println!(
        "expected shape: the cost model (and its bandwidth-dominant core) picks the truly \
         fastest replica far more often than random/round-robin, and avoids the pathologies \
         of host-state-only selection."
    );
}
