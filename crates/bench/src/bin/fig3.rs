//! Fig. 3 — **FTP versus GridFTP** file transfer time.
//!
//! Reproduces the paper's first experiment: transfer 256/512/1024/2048 MB
//! from THU `alpha01` to HIT `gridhit3` with plain FTP and with GridFTP
//! (stream mode), and compare transfer times. Expected shape: the two
//! protocols track each other, GridFTP paying a small constant GSI
//! authentication overhead that vanishes in relative terms as files grow.

use datagrid_bench::{
    banner, emit_observability, seed_from_args, warmed_paper_grid, MB, PAPER_SIZES_MB,
};
use datagrid_gridftp::transfer::{Protocol, TransferRequest};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner("Fig. 3: FTP versus GridFTP (alpha01 -> gridhit3)", seed);

    let mut table = TextTable::new([
        "file size (MB)",
        "FTP (s)",
        "GridFTP (s)",
        "overhead (s)",
        "overhead (%)",
    ]);

    // Every cell builds a fresh grid from the same seed, so cells are
    // independent and identically distributed (same background traffic
    // sample) and can run on worker threads; par_map returns results in
    // input order, keeping the sweep byte-identical to a serial run.
    let cells: Vec<(u64, Protocol)> = PAPER_SIZES_MB
        .iter()
        .flat_map(|&size_mb| [(size_mb, Protocol::Ftp), (size_mb, Protocol::GridFtp)])
        .collect();
    let results = par_map(cells, |(size_mb, protocol)| {
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(60));
        let src = grid.host_id(canonical_host("alpha01")).expect("alpha01");
        let dst = grid.host_id(canonical_host("gridhit3")).expect("gridhit3");
        let req = TransferRequest::new(size_mb * MB).with_protocol(protocol);
        let secs = grid
            .transfer_between(src, dst, req)
            .expect("transfer runs")
            .duration()
            .as_secs_f64();
        (secs, grid)
    });

    for (size_mb, pair) in PAPER_SIZES_MB.iter().zip(results.chunks(2)) {
        let ftp = pair[0].0;
        let gftp = pair[1].0;
        table.row([
            format!("{size_mb}"),
            format!("{ftp:.1}"),
            format!("{gftp:.1}"),
            format!("{:.2}", gftp - ftp),
            format!("{:.2}", (gftp - ftp) / ftp * 100.0),
        ]);
    }

    print!("{}", table.render());
    println!();
    println!(
        "paper finding: transfer times are similar for all sizes; GridFTP pays only a \
         constant authentication overhead (\"even [when] file size is 2 gigabytes, the data \
         transfer time is similar\")."
    );
    if let Some((_, grid)) = results.last() {
        emit_observability(grid, "fig3");
    }
}
