//! Fig. 3 — **FTP versus GridFTP** file transfer time.
//!
//! Reproduces the paper's first experiment: transfer 256/512/1024/2048 MB
//! from THU `alpha01` to HIT `gridhit3` with plain FTP and with GridFTP
//! (stream mode), and compare transfer times. Expected shape: the two
//! protocols track each other, GridFTP paying a small constant GSI
//! authentication overhead that vanishes in relative terms as files grow.

use datagrid_bench::{
    banner, emit_observability, seed_from_args, warmed_paper_grid, MB, PAPER_SIZES_MB,
};
use datagrid_gridftp::transfer::{Protocol, TransferRequest};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner("Fig. 3: FTP versus GridFTP (alpha01 -> gridhit3)", seed);

    let mut table = TextTable::new([
        "file size (MB)",
        "FTP (s)",
        "GridFTP (s)",
        "overhead (s)",
        "overhead (%)",
    ]);

    let mut last_grid = None;
    for size_mb in PAPER_SIZES_MB {
        let mut run = |protocol: Protocol| {
            // A fresh grid per cell keeps cells independent and identically
            // distributed (same seed, same background traffic sample).
            let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(60));
            let src = grid.host_id(canonical_host("alpha01")).expect("alpha01");
            let dst = grid.host_id(canonical_host("gridhit3")).expect("gridhit3");
            let req = TransferRequest::new(size_mb * MB).with_protocol(protocol);
            let secs = grid
                .transfer_between(src, dst, req)
                .expect("transfer runs")
                .duration()
                .as_secs_f64();
            last_grid = Some(grid);
            secs
        };
        let ftp = run(Protocol::Ftp);
        let gftp = run(Protocol::GridFtp);
        table.row([
            format!("{size_mb}"),
            format!("{ftp:.1}"),
            format!("{gftp:.1}"),
            format!("{:.2}", gftp - ftp),
            format!("{:.2}", (gftp - ftp) / ftp * 100.0),
        ]);
    }

    print!("{}", table.render());
    println!();
    println!(
        "paper finding: transfer times are similar for all sizes; GridFTP pays only a \
         constant authentication overhead (\"even [when] file size is 2 gigabytes, the data \
         transfer time is similar\")."
    );
    if let Some(grid) = &last_grid {
        emit_observability(grid, "fig3");
    }
}
