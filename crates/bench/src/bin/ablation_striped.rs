//! Ablation — **striped data transfer** (the paper's future work §5,
//! item 1: "there is another striped data transfer feature that can
//! improve aggregate bandwidth").
//!
//! Fetches a large file to THU `alpha1` from 1, 2 or 4 HIT stripe servers
//! (each opening the same per-server parallelism). Expected shape: stripes
//! multiply aggregate bandwidth while per-stream TCP is the bottleneck,
//! then flatten once the shared HIT uplink saturates.

use datagrid_bench::{banner, emit_observability, seed_from_args, warmed_paper_grid, MB};
use datagrid_gridftp::transfer::TransferRequest;
use datagrid_simnet::time::SimDuration;
use datagrid_sysmon::host::HostId;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::par::par_map;

fn main() {
    let seed = seed_from_args();
    banner(
        "Ablation: striped transfers from HIT stripe servers (future work #1)",
        seed,
    );

    let mut table = TextTable::new([
        "stripe servers",
        "streams/server",
        "time 1024 MB (s)",
        "aggregate (Mbps)",
    ]);

    // Fresh grid per cell, so the stripes x parallelism sweep fans out
    // across workers; par_map keeps rows in input order.
    let cells: Vec<(usize, u32)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&stripes| [1u32, 4].map(|parallelism| (stripes, parallelism)))
        .collect();
    let rows = par_map(cells, |(stripes, parallelism)| {
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(60));
        let client = grid.host_id("alpha1").expect("alpha1");
        let sources: Vec<HostId> = (0..stripes)
            .map(|i| grid.host_id(&format!("gridhit{i}")).expect("hit host"))
            .collect();
        let req = TransferRequest::new(1024 * MB).with_parallelism(parallelism);
        let outcome = grid
            .striped_transfer_between(&sources, client, req)
            .expect("striped transfer runs");
        let secs = outcome.duration().as_secs_f64();
        emit_observability(
            &grid,
            &format!("ablation_striped_s{stripes}_p{parallelism}"),
        );
        [
            format!("{stripes}"),
            format!("{parallelism}"),
            format!("{secs:.1}"),
            format!("{:.1}", outcome.avg_throughput().as_mbps()),
        ]
    });
    for row in rows {
        table.row(row);
    }

    print!("{}", table.render());
    println!();
    println!(
        "expected shape: aggregate bandwidth grows with stripe servers (each brings its own \
         disk and TCP streams) until the shared site uplink saturates -- the improvement the \
         paper anticipated from GridFTP's striped transfer feature."
    );
}
