//! `profile` — **hot-path phase profile of the grid workload**.
//!
//! Replays the deterministic multi-client grid workload (same generator
//! as `grid_scale`) with the continuous-telemetry stack switched on: a
//! sim-time health timeline attached to each cell's grid after warm-up,
//! and the replay driver's phase profiler read back after the run. The
//! report shows where the replay hot path spends its work — per-phase
//! call/item counts for settle (with nested solver attribution), decide,
//! dispatch, retry and failover — next to decisions/sec and settles/sec.
//!
//! Writes `BENCH_profile.json` (override with `--out <path>` or
//! `$DATAGRID_BENCH_OUT`). In default builds every byte of the file is a
//! pure function of the seed; build with `--features prof-timing` to add
//! per-phase wall-clock milliseconds (those fields, and only those, vary
//! run to run). `profile --check [path]` re-reads the file and validates
//! the schema — the CI smoke test, not a perf gate.
//!
//! Knobs: `DATAGRID_PROFILE_CLIENTS` (comma list, default
//! `256,1024,4096`), `DATAGRID_PROFILE_FILES`,
//! `DATAGRID_PROFILE_WINDOW_SECS` (timeline window width, default 60),
//! `DATAGRID_PROFILE_MODE` (`static` / `contention`), `DATAGRID_JOBS`
//! (sweep worker count; output is byte-identical for any value),
//! `DATAGRID_OBS_DIR` (dump each cell's timeline / health report / phase
//! table / event log / metrics).
//!
//! `--verify` enforces the max-min certificate on every solve. The grid
//! health report of the largest cell is printed after the phase tables.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use datagrid_bench::{banner, seed_from_args, OBS_DIR_ENV};
use datagrid_core::prelude::SelectionMode;
use datagrid_obs::prof::TIMING_ENABLED;
use datagrid_simnet::prelude::{Bandwidth, FlowSpec, LinkSpec, NetSim, Topology};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::gridscale::GridScaleConfig;
use datagrid_testbed::profile::{run_profile, ProfileConfig, ProfileReport, ProfileRun};

/// Counts heap allocations so the steady-state dispatch probe can report
/// a real measurement into `BENCH_profile.json` instead of an assertion
/// that lives only in the test suite. The counter is a single relaxed
/// atomic bump per allocation — invisible next to simulation work.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Measures heap allocations across a warmed engine event drain — the
/// number the perf budget pins to zero. Mirrors the `alloc_steady`
/// integration test: two churn cycles size every reusable buffer, then a
/// third identical flow population is drained with the counter running
/// (flow *starts* are outside the claim). Runs single-threaded after the
/// sweep's worker threads have joined, so every counted allocation is the
/// drain's own.
fn steady_dispatch_alloc_probe() -> u64 {
    let mut topo = Topology::new();
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let c = topo.add_node("c");
    let hub = topo.add_node("hub");
    let spec = || LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_millis(1));
    topo.add_duplex_link(a, hub, spec());
    topo.add_duplex_link(b, hub, spec());
    topo.add_duplex_link(c, hub, spec());
    let mut sim = NetSim::new(topo, 7);
    sim.set_validation(false);
    sim.set_auto_shrink(false);

    const FLOWS: usize = 64;
    let start_all = |sim: &mut NetSim| {
        for i in 0..FLOWS {
            let (src, dst) = if i % 2 == 0 { (a, b) } else { (a, c) };
            sim.start_flow(FlowSpec::new(src, dst, 4_000_000 + (i as u64) * 37_000));
        }
    };
    for _ in 0..2 {
        start_all(&mut sim);
        while sim.next_event().is_some() {}
    }
    start_all(&mut sim);
    let before = ALLOCS.load(Ordering::Relaxed);
    while sim.next_event().is_some() {}
    ALLOCS.load(Ordering::Relaxed) - before
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn mode() -> SelectionMode {
    match std::env::var("DATAGRID_PROFILE_MODE").as_deref() {
        Ok("static") => SelectionMode::Static,
        _ => SelectionMode::ContentionAware,
    }
}

/// Extracts `"key": <number>` from the (known, flat-ish) JSON we wrote.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// CI smoke: re-read the emitted file and validate the schema.
fn check(path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !json.contains("\"name\": \"profile\"") {
        return Err(format!("{path} is not a profile report"));
    }
    if !json.contains("\"timing\": true") && !json.contains("\"timing\": false") {
        return Err(format!("{path}: missing \"timing\" flag"));
    }
    for key in [
        "clients",
        "completed",
        "makespan_s",
        "decisions",
        "decisions_per_sec",
        "settles",
        "settles_per_sec",
        "solves",
        "solves_per_decision",
        "windows",
    ] {
        let v = extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing numeric field \"{key}\""))?;
        if v.is_nan() || v <= 0.0 {
            return Err(format!("{path}: field \"{key}\" = {v}, expected > 0"));
        }
    }
    // Hot-path counters that may legitimately be zero (a tiny cell can
    // batch nothing); present and non-negative is the shape contract.
    for key in [
        "event_cohorts",
        "batched_solves",
        "solves_avoided",
        "scratch_hits",
        "scratch_misses",
        "steady_dispatch_allocs",
    ] {
        let v = extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing numeric field \"{key}\""))?;
        if v < 0.0 {
            return Err(format!("{path}: field \"{key}\" = {v}, expected >= 0"));
        }
    }
    for phase in [
        "\"path\": \"settle\"",
        "\"path\": \"settle/solve\"",
        "\"path\": \"decide\"",
        "\"path\": \"dispatch\"",
    ] {
        if !json.contains(phase) {
            return Err(format!("{path}: missing phase entry {phase}"));
        }
    }
    println!(
        "{path}: ok ({:.0} clients, {:.0} decisions, {:.2} decisions/s, {:.2} settles/s)",
        extract_number(&json, "clients").unwrap_or(0.0),
        extract_number(&json, "decisions").unwrap_or(0.0),
        extract_number(&json, "decisions_per_sec").unwrap_or(0.0),
        extract_number(&json, "settles_per_sec").unwrap_or(0.0),
    );
    Ok(())
}

fn dump_cell_obs(run: &ProfileRun) {
    let Ok(dir) = std::env::var(OBS_DIR_ENV) else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let label = format!("profile_{}_c{}", run.cell.mode, run.cell.clients);
    let dir = std::path::Path::new(&dir);
    let files = [
        ("timeline.json", run.timeline_json.as_str()),
        ("health.txt", run.health_report.as_str()),
        ("profile.txt", run.prof_text.as_str()),
        ("events.jsonl", run.obs.events_jsonl.as_str()),
        ("metrics.json", run.obs.metrics_json.as_str()),
    ];
    let write_all = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (suffix, body) in files {
            std::fs::write(dir.join(format!("{label}.{suffix}")), body)?;
        }
        Ok(())
    };
    if let Err(err) = write_all() {
        eprintln!("observability: dump to {} failed: {err}", dir.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_profile.json");
        if let Err(err) = check(path) {
            eprintln!("profile --check failed: {err}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("--check-budget") {
        let Some(budget_path) = args.get(1) else {
            eprintln!("usage: profile --check-budget <budget.json> [report.json]");
            std::process::exit(2);
        };
        let report_path = args
            .get(2)
            .map(String::as_str)
            .unwrap_or("BENCH_profile.json");
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("profile --check-budget: cannot read {p}: {e}");
                std::process::exit(1);
            })
        };
        let budget = read(budget_path);
        let report = read(report_path);
        match datagrid_bench::budget::check_budget(&report, &budget) {
            Ok(summary) => {
                println!("{report_path}: within budget {budget_path}");
                print!("{summary}");
            }
            Err(err) => {
                eprintln!("profile --check-budget failed against {budget_path}:\n{err}");
                std::process::exit(1);
            }
        }
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("DATAGRID_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_profile.json".to_string());

    let seed = seed_from_args();
    banner("Profile: hot-path phase breakdown of the grid replay", seed);
    println!(
        "wall-clock timings: {}\n",
        if TIMING_ENABLED {
            "on (prof-timing build; ms columns are non-deterministic)"
        } else {
            "off (counts only; output is a pure function of the seed)"
        }
    );

    let client_counts = env_list("DATAGRID_PROFILE_CLIENTS", &[256, 1024, 4096]);
    let files = env_u64("DATAGRID_PROFILE_FILES", 48) as usize;
    let window = SimDuration::from_secs(env_u64("DATAGRID_PROFILE_WINDOW_SECS", 60));
    let verify = args.iter().any(|a| a == "--verify");
    if verify {
        println!("verification on: enforcing the max-min certificate on every solve\n");
    }

    let cfg = ProfileConfig {
        grid: GridScaleConfig {
            files,
            mode: mode(),
            verify,
            ..GridScaleConfig::default()
        },
        window,
    };
    let runs = run_profile(seed, &client_counts, &cfg);
    let mut report = ProfileReport::from_runs(seed, &cfg, &runs);
    // Worker threads have joined; the probe's drain is the only live work,
    // so the count is exact (and deterministic: zero, or the budget trips).
    report.steady_dispatch_allocs = Some(steady_dispatch_alloc_probe());

    let mut table = TextTable::new([
        "clients",
        "mode",
        "done/fail",
        "makespan (s)",
        "decisions",
        "decisions/s",
        "settles",
        "settles/s",
        "solves/dec",
        "avoided",
        "scratch h/m",
        "windows",
    ]);
    for c in &report.cells {
        table.row([
            format!("{}", c.clients),
            c.mode.to_string(),
            format!("{}/{}", c.completed, c.failed),
            format!("{:.1}", c.makespan_s),
            format!("{}", c.decisions),
            format!("{:.3}", c.decisions_per_sec),
            format!("{}", c.settles),
            format!("{:.3}", c.settles_per_sec),
            format!("{:.2}", c.solves_per_decision),
            format!("{}", c.solves_avoided),
            format!("{}/{}", c.scratch_hits, c.scratch_misses),
            format!("{}", c.windows),
        ]);
    }
    print!("{}", table.render());
    if let Some(allocs) = report.steady_dispatch_allocs {
        println!("\nsteady-state dispatch allocations (warmed engine drain): {allocs}");
    }

    for run in &runs {
        println!("\nphase profile, {} clients:", run.cell.clients);
        print!("{}", run.prof_text);
    }

    // The health report of the largest cell — the per-window saturation /
    // latency picture the ISSUE's acceptance criteria ask for.
    if let Some(largest) = runs.iter().max_by_key(|r| r.cell.clients) {
        println!("\ngrid health report, {} clients:", largest.cell.clients);
        print!("{}", largest.health_report);
    }

    for run in &runs {
        dump_cell_obs(run);
    }
    if verify {
        println!(
            "\nmax-min certificate held on every solve across {} cell(s)",
            runs.len()
        );
    }

    let json = report.render_json();
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
