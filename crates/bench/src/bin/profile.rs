//! `profile` — **hot-path phase profile of the grid workload**.
//!
//! Replays the deterministic multi-client grid workload (same generator
//! as `grid_scale`) with the continuous-telemetry stack switched on: a
//! sim-time health timeline attached to each cell's grid after warm-up,
//! and the replay driver's phase profiler read back after the run. The
//! report shows where the replay hot path spends its work — per-phase
//! call/item counts for settle (with nested solver attribution), decide,
//! dispatch, retry and failover — next to decisions/sec and settles/sec.
//!
//! Writes `BENCH_profile.json` (override with `--out <path>` or
//! `$DATAGRID_BENCH_OUT`). In default builds every byte of the file is a
//! pure function of the seed; build with `--features prof-timing` to add
//! per-phase wall-clock milliseconds (those fields, and only those, vary
//! run to run). `profile --check [path]` re-reads the file and validates
//! the schema — the CI smoke test, not a perf gate.
//!
//! Knobs: `DATAGRID_PROFILE_CLIENTS` (comma list, default
//! `256,1024,4096`), `DATAGRID_PROFILE_FILES`,
//! `DATAGRID_PROFILE_WINDOW_SECS` (timeline window width, default 60),
//! `DATAGRID_PROFILE_MODE` (`static` / `contention`), `DATAGRID_JOBS`
//! (sweep worker count; output is byte-identical for any value),
//! `DATAGRID_OBS_DIR` (dump each cell's timeline / health report / phase
//! table / event log / metrics).
//!
//! `--verify` enforces the max-min certificate on every solve. The grid
//! health report of the largest cell is printed after the phase tables.

use datagrid_bench::{banner, seed_from_args, OBS_DIR_ENV};
use datagrid_core::prelude::SelectionMode;
use datagrid_obs::prof::TIMING_ENABLED;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::gridscale::GridScaleConfig;
use datagrid_testbed::profile::{run_profile, ProfileConfig, ProfileReport, ProfileRun};

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|part| part.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn mode() -> SelectionMode {
    match std::env::var("DATAGRID_PROFILE_MODE").as_deref() {
        Ok("static") => SelectionMode::Static,
        _ => SelectionMode::ContentionAware,
    }
}

/// Extracts `"key": <number>` from the (known, flat-ish) JSON we wrote.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// CI smoke: re-read the emitted file and validate the schema.
fn check(path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !json.contains("\"name\": \"profile\"") {
        return Err(format!("{path} is not a profile report"));
    }
    if !json.contains("\"timing\": true") && !json.contains("\"timing\": false") {
        return Err(format!("{path}: missing \"timing\" flag"));
    }
    for key in [
        "clients",
        "completed",
        "makespan_s",
        "decisions",
        "decisions_per_sec",
        "settles",
        "settles_per_sec",
        "windows",
    ] {
        let v = extract_number(&json, key)
            .ok_or_else(|| format!("{path}: missing numeric field \"{key}\""))?;
        if !(v > 0.0) {
            return Err(format!("{path}: field \"{key}\" = {v}, expected > 0"));
        }
    }
    for phase in [
        "\"path\": \"settle\"",
        "\"path\": \"settle/solve\"",
        "\"path\": \"decide\"",
        "\"path\": \"dispatch\"",
    ] {
        if !json.contains(phase) {
            return Err(format!("{path}: missing phase entry {phase}"));
        }
    }
    println!(
        "{path}: ok ({:.0} clients, {:.0} decisions, {:.2} decisions/s, {:.2} settles/s)",
        extract_number(&json, "clients").unwrap_or(0.0),
        extract_number(&json, "decisions").unwrap_or(0.0),
        extract_number(&json, "decisions_per_sec").unwrap_or(0.0),
        extract_number(&json, "settles_per_sec").unwrap_or(0.0),
    );
    Ok(())
}

fn dump_cell_obs(run: &ProfileRun) {
    let Ok(dir) = std::env::var(OBS_DIR_ENV) else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let label = format!("profile_{}_c{}", run.cell.mode, run.cell.clients);
    let dir = std::path::Path::new(&dir);
    let files = [
        ("timeline.json", run.timeline_json.as_str()),
        ("health.txt", run.health_report.as_str()),
        ("profile.txt", run.prof_text.as_str()),
        ("events.jsonl", run.obs.events_jsonl.as_str()),
        ("metrics.json", run.obs.metrics_json.as_str()),
    ];
    let write_all = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (suffix, body) in files {
            std::fs::write(dir.join(format!("{label}.{suffix}")), body)?;
        }
        Ok(())
    };
    if let Err(err) = write_all() {
        eprintln!("observability: dump to {} failed: {err}", dir.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_profile.json");
        if let Err(err) = check(path) {
            eprintln!("profile --check failed: {err}");
            std::process::exit(1);
        }
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("DATAGRID_BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_profile.json".to_string());

    let seed = seed_from_args();
    banner("Profile: hot-path phase breakdown of the grid replay", seed);
    println!(
        "wall-clock timings: {}\n",
        if TIMING_ENABLED {
            "on (prof-timing build; ms columns are non-deterministic)"
        } else {
            "off (counts only; output is a pure function of the seed)"
        }
    );

    let client_counts = env_list("DATAGRID_PROFILE_CLIENTS", &[256, 1024, 4096]);
    let files = env_u64("DATAGRID_PROFILE_FILES", 48) as usize;
    let window = SimDuration::from_secs(env_u64("DATAGRID_PROFILE_WINDOW_SECS", 60));
    let verify = args.iter().any(|a| a == "--verify");
    if verify {
        println!("verification on: enforcing the max-min certificate on every solve\n");
    }

    let cfg = ProfileConfig {
        grid: GridScaleConfig {
            files,
            mode: mode(),
            verify,
            ..GridScaleConfig::default()
        },
        window,
    };
    let runs = run_profile(seed, &client_counts, &cfg);
    let report = ProfileReport::from_runs(seed, &cfg, &runs);

    let mut table = TextTable::new([
        "clients",
        "mode",
        "done/fail",
        "makespan (s)",
        "decisions",
        "decisions/s",
        "settles",
        "settles/s",
        "windows",
    ]);
    for c in &report.cells {
        table.row([
            format!("{}", c.clients),
            c.mode.to_string(),
            format!("{}/{}", c.completed, c.failed),
            format!("{:.1}", c.makespan_s),
            format!("{}", c.decisions),
            format!("{:.3}", c.decisions_per_sec),
            format!("{}", c.settles),
            format!("{:.3}", c.settles_per_sec),
            format!("{}", c.windows),
        ]);
    }
    print!("{}", table.render());

    for run in &runs {
        println!("\nphase profile, {} clients:", run.cell.clients);
        print!("{}", run.prof_text);
    }

    // The health report of the largest cell — the per-window saturation /
    // latency picture the ISSUE's acceptance criteria ask for.
    if let Some(largest) = runs.iter().max_by_key(|r| r.cell.clients) {
        println!("\ngrid health report, {} clients:", largest.cell.clients);
        print!("{}", largest.health_report);
    }

    for run in &runs {
        dump_cell_obs(run);
    }
    if verify {
        println!(
            "\nmax-min certificate held on every solve across {} cell(s)",
            runs.len()
        );
    }

    let json = report.render_json();
    std::fs::write(&out_path, &json).expect("write benchmark report");
    println!("\nwrote {out_path}");
}
