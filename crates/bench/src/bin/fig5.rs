//! Fig. 5 — the **replica selection cost model program**.
//!
//! The paper's Java GUI polls the information services, shows each remote
//! site's cost toward `alpha1` over time (Fig. 5a), averages over a
//! selectable time scale (Fig. 5b's scroll bar), and sorts sites on the
//! *Cost* button. This binary renders the same three views as text.

use datagrid_bench::{banner, emit_observability, seed_from_args, warmed_paper_grid, MB};
use datagrid_core::history::CostHistory;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner(
        "Fig. 5: cost model program (scores of replica sites toward alpha1)",
        seed,
    );

    let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
    grid.catalog_mut()
        .register_logical("file-a".parse().expect("valid lfn"), 1024 * MB)
        .expect("fresh catalog");
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host))
            .expect("replica placement");
    }
    let client = grid.host_id("alpha1").expect("alpha1");

    // Poll the selection server every 10 s for 10 minutes, like the GUI.
    let mut history = CostHistory::new();
    let poll = SimDuration::from_secs(10);
    let polls = 60;
    for _ in 0..polls {
        grid.warm_up(poll);
        let now = grid.now();
        for c in grid
            .score_candidates(client, "file-a")
            .expect("scoring succeeds")
        {
            history.record(&c.host_name, now, c.score);
        }
    }
    let now = grid.now();

    // Fig. 5a: the per-site cost traces (sampled every 60 s).
    let mut series = TextTable::new(["t (s)", "alpha4", "gridhit0", "lz02"]);
    let window = SimDuration::from_secs(10);
    for minute in 1..=10 {
        let t = datagrid_simnet::time::SimTime::from_secs_f64(300.0 + 60.0 * minute as f64);
        let cell = |site: &str| {
            history
                .average(site, t, window)
                .map_or("-".to_string(), |v| format!("{v:.3}"))
        };
        series.row([
            format!("{}", 300 + 60 * minute),
            cell("alpha4"),
            cell("gridhit0"),
            cell("lz02"),
        ]);
    }
    println!("cost over time (instantaneous, sampled each minute):");
    print!("{}", series.render());
    println!();

    // Fig. 5b: averages over two selectable time scales.
    for window_s in [30u64, 300u64] {
        let mut avg = TextTable::new(["site", &format!("avg score ({window_s} s window)")]);
        for (site, score) in history.sorted(now, SimDuration::from_secs(window_s)) {
            avg.row([site, format!("{score:.3}")]);
        }
        println!("averaged over a {window_s} s time scale:");
        print!("{}", avg.render());
        println!();
    }

    // The Cost button: the sorted list the user sees.
    let sorted = history.sorted(now, SimDuration::from_secs(300));
    println!("sorted cost list (best replica first):");
    for (rank, (site, score)) in sorted.iter().enumerate() {
        println!("  {}. {site}  (score {score:.3})", rank + 1);
    }
    println!(
        "\npaper finding: \"after calculating the score of replica selection cost model, we \
         can sort a list of replicas from the most efficient replica to worst one\"."
    );
    emit_observability(&grid, "fig5");
}
