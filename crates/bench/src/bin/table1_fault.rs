//! Table 1 under injected faults — **replica selection with failover**.
//!
//! Reruns the paper's §4.3 scenario (client `alpha1` fetching `file-a`,
//! 1024 MB, replicas at `alpha4`, `hit0`, `lz02`) on a grid where the
//! top-ranked replica server blacks out mid-transfer. The client's
//! recovery ladder — stall watchdog, seeded exponential-backoff retries
//! with MODE E restart markers, suspect marking and next-best-replica
//! failover — must still deliver the file, and the whole episode is
//! recorded through the observability layer (`DATAGRID_OBS_DIR` dumps
//! `table1_fault.*`).

use datagrid_bench::{banner, emit_observability, seed_from_args, warmed_paper_grid, MB};
use datagrid_core::grid::FetchOptions;
use datagrid_core::recovery::RecoveryOptions;
use datagrid_gridftp::retry::RetryPolicy;
use datagrid_simnet::fault::FaultPlan;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::sites::canonical_host;

fn main() {
    let seed = seed_from_args();
    banner(
        "Table 1 under faults: top-ranked replica blacks out mid-transfer (client alpha1, file-a 1024 MB)",
        seed,
    );

    let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
    grid.catalog_mut()
        .register_logical("file-a".parse().expect("valid lfn"), 1024 * MB)
        .expect("fresh catalog");
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-a", canonical_host(host))
            .expect("replica placement");
    }
    let client = grid.host_id("alpha1").expect("alpha1");

    let healthy = grid
        .score_candidates(client, "file-a")
        .expect("scoring succeeds");
    let mut table = TextTable::new(["replica", "BW_P", "CPU_P", "IO_P", "score"]);
    for c in &healthy {
        table.row([
            c.host_name.clone(),
            format!("{:.3}", c.factors.bandwidth_fraction),
            format!("{:.3}", c.factors.cpu_idle),
            format!("{:.3}", c.factors.io_idle),
            format!("{:.3}", c.score),
        ]);
    }
    println!("healthy ranking:");
    print!("{}", table.render());
    println!();

    // The fault: the best candidate's host goes dark 4 s into the episode
    // (mid-transfer: 1024 MB needs ~9 s of data time) and stays dark far
    // longer than any retry budget.
    let top = healthy[0].clone();
    let fault_at = grid.now() + SimDuration::from_secs(4);
    let outage = SimDuration::from_secs(3600);
    grid.install_fault_plan(FaultPlan::new().host_blackout(
        fault_at,
        outage,
        grid.node_of(top.host),
    ));
    println!(
        "fault plan: host_blackout({}) at t={:.0} s for {:.0} s — the selected replica dies mid-transfer.",
        top.host_name,
        fault_at.as_secs_f64(),
        outage.as_secs_f64(),
    );

    let recovery = RecoveryOptions::default()
        .with_retry(
            RetryPolicy::default()
                .with_max_attempts(2)
                .with_base_backoff(SimDuration::from_secs(2)),
        )
        .with_stall_timeout(SimDuration::from_secs(2));
    let rec = grid
        .fetch_with_recovery(
            client,
            "file-a",
            FetchOptions::default().with_parallelism(4),
            &recovery,
        )
        .expect("the fetch survives the blackout via failover");

    println!();
    println!("recovery episode:");
    println!(
        "  sessions started:   {} (across {} replica{})",
        rec.attempts,
        rec.failovers() + 1,
        if rec.failovers() == 0 { "" } else { "s" },
    );
    println!("  replicas abandoned: {}", rec.failed_over.join(", "));
    println!(
        "  backoff waited:     {:.1} s",
        rec.backoff_total.as_secs_f64()
    );
    println!(
        "  payload moved:      {} MB (file is {} MB; the surplus was lost to the fault)",
        rec.payload_moved / MB,
        1024,
    );
    println!(
        "  final winner:       {} — transfer took {:.1} s end to end",
        rec.report.chosen_candidate().host_name,
        rec.report.transfer.duration().as_secs_f64(),
    );
    println!();

    let reranked = &rec.report.candidates;
    let mut table = TextTable::new(["replica", "score after failover", "note"]);
    for c in reranked {
        let note = if rec.failed_over.contains(&c.host_name) {
            "suspect (abandoned)"
        } else if c.host_name == rec.report.chosen_candidate().host_name {
            "winner"
        } else {
            ""
        };
        table.row([c.host_name.clone(), format!("{:.3}", c.score), note.into()]);
    }
    println!("post-failover ranking (suspect sites are penalised):");
    print!("{}", table.render());

    let m = grid.metrics_snapshot();
    println!();
    println!(
        "observability: {} stalls, {} retries, {} abandoned, {} failovers, {} fault transitions recorded.",
        m.counter("transfer.stalls"),
        m.counter("transfer.retries"),
        m.counter("transfer.abandoned"),
        m.counter("selection.failovers"),
        m.counter("fault.transitions"),
    );
    if let Some(decision) = grid.audit().last() {
        println!("\nfailover selection audit:\n{}", decision.render_text());
    }
    emit_observability(&grid, "table1_fault");
}
