//! Fig. 4 — **GridFTP parallel data transfer**.
//!
//! Reproduces the paper's second experiment: transfer 256/512/1024/2048 MB
//! from THU `alpha02` to Li-Zen `lz04` (the lossy 30 Mbps site) with no
//! parallelism (stream mode) and with MODE E at 1/2/4/8/16 TCP streams.
//! Expected shape: parallel streams cut transfer time substantially, more
//! so for large files, with diminishing returns at high stream counts; one
//! MODE E stream is *not* identical to stream mode (block framing).

use datagrid_bench::{
    banner, emit_observability, seed_from_args, warmed_paper_grid, MB, PAPER_SIZES_MB,
};
use datagrid_gridftp::transfer::TransferRequest;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::TextTable;
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;

const STREAMS: [u32; 5] = [1, 2, 4, 8, 16];

fn main() {
    let seed = seed_from_args();
    banner(
        "Fig. 4: GridFTP with parallel data transfer (alpha02 -> lz04, 30 Mbps WAN)",
        seed,
    );

    let mut table = TextTable::new([
        "file size (MB)",
        "no parallel (s)",
        "1 stream (s)",
        "2 streams (s)",
        "4 streams (s)",
        "8 streams (s)",
        "16 streams (s)",
    ]);

    // Fresh grid per cell: cells are independent, so the whole
    // size x parallelism sweep fans out across workers; par_map keeps the
    // results in input order (byte-identical to serial).
    let configs_per_size = 1 + STREAMS.len();
    let cells: Vec<(u64, Option<u32>)> = PAPER_SIZES_MB
        .iter()
        .flat_map(|&size_mb| {
            std::iter::once((size_mb, None)).chain(STREAMS.iter().map(move |&p| (size_mb, Some(p))))
        })
        .collect();
    let results = par_map(cells, |(size_mb, parallelism)| {
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(60));
        let src = grid.host_id(canonical_host("alpha02")).expect("alpha02");
        let dst = grid.host_id(canonical_host("lz04")).expect("lz04");
        let mut req = TransferRequest::new(size_mb * MB);
        if let Some(p) = parallelism {
            req = req.with_parallelism(p);
        }
        let secs = grid
            .transfer_between(src, dst, req)
            .expect("transfer runs")
            .duration()
            .as_secs_f64();
        (secs, grid)
    });

    for (size_mb, row) in PAPER_SIZES_MB.iter().zip(results.chunks(configs_per_size)) {
        let mut cells = vec![format!("{size_mb}")];
        for (secs, _) in row {
            cells.push(format!("{secs:.1}"));
        }
        table.row(cells);
    }

    print!("{}", table.render());
    println!();
    println!(
        "paper finding: \"parallel data transfer technique showed better performance for \
         larger file sizes\" -- multiple TCP streams aggregate bandwidth on the lossy WAN \
         path, with diminishing returns once the 30 Mbps link saturates."
    );
    if let Some((_, grid)) = results.last() {
        emit_observability(grid, "fig4");
    }
}
