//! Ablation — **cost-model weight sweep** (the paper's future work §5,
//! item 2: "how to determine the system factors weight").
//!
//! Sweeps the `(BW_W, CPU_W, IO_W)` weights over a grid of proportions and
//! measures, against the clone-based oracle, how often the cost model
//! picks the truly fastest replica and how much time a wrong pick costs.
//! Expected shape: bandwidth-dominant weights (like the paper's 0.8/0.1/
//! 0.1) maximise accuracy; ignoring bandwidth entirely is much worse.

use datagrid_bench::{banner, emit_observability, seed_from_args, warmed_paper_grid, MB};
use datagrid_core::cost::{CostModel, Weights};
use datagrid_core::grid::FetchOptions;
use datagrid_core::policy::SelectionPolicy;
use datagrid_core::tuning::{Observation, WeightTuner};
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::experiment::{selection_quality, TextTable};
use datagrid_testbed::par::par_map;
use datagrid_testbed::sites::canonical_host;
use datagrid_testbed::workload::RequestTrace;

const SWEEP: [(f64, f64, f64); 7] = [
    (1.0, 0.0, 0.0),
    (0.8, 0.1, 0.1), // the paper's choice
    (0.6, 0.2, 0.2),
    (1.0, 1.0, 1.0), // equal thirds (normalised)
    (0.2, 0.4, 0.4),
    (0.0, 0.5, 0.5), // network-blind
    (0.0, 1.0, 0.0), // CPU only
];

fn main() {
    let seed = seed_from_args();
    banner("Ablation: cost-model weight sweep (future work #2)", seed);

    let mut table = TextTable::new([
        "weights (BW/CPU/IO)",
        "oracle accuracy",
        "mean regret",
        "mean fetch (s)",
    ]);

    // One fresh grid per weight vector, so the sweep fans out across
    // workers; par_map keeps rows in input order (byte-identical to
    // serial).
    let rows = par_map(SWEEP.to_vec(), |(bw, cpu, io)| {
        let weights = Weights::normalized(bw, cpu, io);
        let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
        grid.catalog_mut()
            .register_logical("file-w".parse().expect("valid lfn"), 256 * MB)
            .expect("fresh catalog");
        for host in ["alpha4", "hit0", "lz02"] {
            grid.place_replica("file-w", canonical_host(host))
                .expect("replica placement");
        }
        grid.selector_mut().set_cost_model(CostModel::new(weights));
        let trace = RequestTrace::poisson(
            &["alpha1", "alpha2", "gridhit1", "gridhit2"],
            &["file-w"],
            1.0 / 120.0,
            SimDuration::from_secs(2400),
            seed ^ 0xABBA,
        );
        let stats = selection_quality(
            &mut grid,
            &trace,
            SelectionPolicy::CostModel,
            FetchOptions::default().with_parallelism(4),
        );
        emit_observability(
            &grid,
            &format!(
                "ablation_weights_bw{:02.0}_cpu{:02.0}_io{:02.0}",
                weights.bandwidth * 100.0,
                weights.cpu * 100.0,
                weights.io * 100.0
            ),
        );
        [
            format!(
                "{:.2}/{:.2}/{:.2}",
                weights.bandwidth, weights.cpu, weights.io
            ),
            format!("{:.2}", stats.oracle_accuracy),
            format!("{:.2}", stats.mean_regret),
            format!("{:.1}", stats.mean_duration_s),
        ]
    });
    for row in rows {
        table.row(row);
    }

    print!("{}", table.render());
    println!();
    println!(
        "expected shape: bandwidth-dominant weights (the paper fixes 0.8/0.1/0.1 after \
         observing that CPU and I/O only slightly affect GridFTP throughput) select the \
         fastest replica most often; dropping the bandwidth factor is far worse."
    );

    // Future work #2, answered: learn the weights from oracle observations.
    let mut grid = warmed_paper_grid(seed, SimDuration::from_secs(300));
    grid.catalog_mut()
        .register_logical("file-w".parse().expect("valid lfn"), 256 * MB)
        .expect("fresh catalog");
    for host in ["alpha4", "hit0", "lz02"] {
        grid.place_replica("file-w", canonical_host(host))
            .expect("replica placement");
    }
    let mut tuner = WeightTuner::new();
    for round in 0..6 {
        grid.warm_up(SimDuration::from_secs(60));
        let client = grid
            .host_id(["alpha1", "gridhit1"][round % 2])
            .expect("client host");
        for c in grid
            .score_candidates(client, "file-w")
            .expect("scoring succeeds")
        {
            let mut probe = grid.clone();
            let secs = probe
                .fetch_from(
                    client,
                    "file-w",
                    &c.host_name,
                    FetchOptions::default().with_parallelism(4),
                )
                .expect("oracle fetch")
                .transfer
                .duration()
                .as_secs_f64();
            tuner.record(Observation::new(c.factors, secs));
        }
    }
    let (weights, agreement) = tuner.tune(10).expect("enough observations");
    println!(
        "\nauto-tuned weights from {} oracle observations: BW={:.2} CPU={:.2} IO={:.2} \
         (rank agreement {:.2}) -- compare the paper's hand-picked 0.80/0.10/0.10.",
        tuner.len(),
        weights.bandwidth,
        weights.cpu,
        weights.io,
        agreement,
    );
    emit_observability(&grid, "ablation_weights_tuned");
}
