//! Shared helpers for the experiment reproducers (`src/bin/*`) and the
//! criterion micro-benchmarks (`benches/*`).
//!
//! One binary per paper artefact:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig3` | Fig. 3 — FTP vs GridFTP transfer time |
//! | `fig4` | Fig. 4 — GridFTP parallel data transfer |
//! | `table1` | Table 1 — cost model scores vs measured transfer time |
//! | `fig5` | Fig. 5 — the cost program (time series + sorted list) |
//! | `ablation_weights` | future work §5(2) — weight sweep |
//! | `ablation_policies` | policy comparison vs oracle |
//! | `ablation_striped` | future work §5(1) — striped transfers |
//! | `ablation_scale` | future work §5(3) — larger dynamic grids |
//! | `ablation_forecasters` | NWS forecaster accuracy |
//! | `ablation_security` | FTP vs GridFTP PROT C/S/P cost |
//! | `ablation_replication` | dynamic replica creation strategies |
//! | `scale` | simulation-core settle throughput (`BENCH_simnet.json`) |
//! | `grid_scale` | multi-client replay sweep, static vs contention-aware (`BENCH_grid.json`) |
//! | `fuzz` | seeded differential fuzzing of paired engine configurations |
//!
//! The sweep bins fan independent cells out with
//! [`datagrid_testbed::par::par_map`]; `DATAGRID_JOBS=1` forces the
//! serial path, any value the worker count — output is byte-identical
//! either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;

use datagrid_core::grid::DataGrid;
use datagrid_simnet::time::SimDuration;
use datagrid_testbed::calibration::Calibration;
use datagrid_testbed::sites::paper_testbed_with;

/// Bytes per megabyte as the paper counts them (2^20).
pub const MB: u64 = 1 << 20;

/// The file sizes of Figs. 3 and 4, in megabytes.
pub const PAPER_SIZES_MB: [u64; 4] = [256, 512, 1024, 2048];

/// The default experiment seed. Every binary prints it; pass a different
/// one as the first CLI argument to resample.
pub const DEFAULT_SEED: u64 = 20050905; // PaCT 2005 in Krasnoyarsk

/// Reads the seed from the first CLI argument, defaulting to
/// [`DEFAULT_SEED`].
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Prints the standard experiment banner.
pub fn banner(name: &str, seed: u64) {
    println!("=== {name} (seed {seed}) ===");
    println!(
        "testbed: THU (4x dual Athlon MP 2.0GHz, 1Gbps) / Li-Zen (4x Celeron 900MHz, 30Mbps) / \
         HIT (4x P4 2.8GHz, 1Gbps) -- simulated"
    );
    println!();
}

/// Builds the paper testbed, warmed up so NWS sensors and load processes
/// have history.
pub fn warmed_paper_grid(seed: u64, warm: SimDuration) -> DataGrid {
    let (builder, _) = paper_testbed_with(seed, &Calibration::default());
    let mut grid = builder.build();
    grid.warm_up(warm);
    grid
}

/// Name of the environment variable that switches the reproducer binaries
/// into observability-dump mode.
pub const OBS_DIR_ENV: &str = "DATAGRID_OBS_DIR";

/// Writes the grid's full observability dump (metrics text + JSON, event
/// JSONL, selection audit) under `$DATAGRID_OBS_DIR` as `<label>.*` files.
/// A no-op when the variable is unset or empty, so the reproducers stay
/// dependency-free by default.
pub fn emit_observability(grid: &DataGrid, label: &str) {
    let Ok(dir) = std::env::var(OBS_DIR_ENV) else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    match datagrid_testbed::experiment::write_obs_dump(grid, std::path::Path::new(&dir), label) {
        Ok(paths) => println!(
            "\nobservability: wrote {} dump files under {dir}/{label}.*",
            paths.len()
        ),
        Err(err) => eprintln!("observability: dump to {dir} failed: {err}"),
    }
}

/// Writes a metrics dump built from a bare engine's counters under
/// `$DATAGRID_OBS_DIR` as `<label>.metrics.{txt,json}` — the engine-only
/// counterpart of [`emit_observability`] for bins that drive [`NetSim`]
/// directly (no grid, so no event ring or selection audit exists). A
/// no-op when the variable is unset or empty.
pub fn emit_engine_observability(sim: &datagrid_simnet::engine::NetSim, label: &str) {
    let Ok(dir) = std::env::var(OBS_DIR_ENV) else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let s = sim.stats();
    let mut m = datagrid_obs::MetricsRegistry::new();
    m.set_counter("simnet.events_processed", s.events_processed);
    m.set_counter("simnet.timers_fired", s.timers_fired);
    m.set_counter("simnet.flows_started", s.flows_started);
    m.set_counter("simnet.flows_completed", s.flows_completed);
    m.set_counter(
        "simnet.background_flows_started",
        s.background_flows_started,
    );
    m.set_counter("simnet.bytes_completed", s.bytes_completed);
    m.set_counter("simnet.fault_transitions", s.fault_transitions);
    m.set_counter("simnet.flows_dropped", s.flows_dropped);
    m.set_counter("simnet.incremental_solves", s.incremental_solves);
    m.set_counter("simnet.full_solves", s.full_solves);
    m.set_counter("simnet.solver_flows_touched", s.solver_flows_touched);
    m.set_counter("simnet.auto_shrinks", s.auto_shrinks);
    m.set_counter("simnet.transitions_certified", s.transitions_certified);
    m.set_counter(
        "simnet.transition_flows_checked",
        s.transition_flows_checked,
    );
    let dir = std::path::Path::new(&dir);
    let write_all = || -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{label}.metrics.txt")), m.render_text())?;
        std::fs::write(dir.join(format!("{label}.metrics.json")), m.render_json())?;
        Ok(())
    };
    match write_all() {
        Ok(()) => println!(
            "\nobservability: wrote engine metrics under {}/{label}.metrics.*",
            dir.display()
        ),
        Err(err) => eprintln!("observability: dump to {} failed: {err}", dir.display()),
    }
}

/// Lowercases `s` and replaces every non-alphanumeric run with a single
/// `_`, for use in observability dump file names (`emit_observability`
/// labels built from sweep-cell keys like `"fetch-count >= 2"`).
pub fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut gap = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_flattens_cell_keys() {
        assert_eq!(slug("fetch-count >= 2"), "fetch_count_2");
        assert_eq!(
            slug("GridFTP PROT S (integrity)"),
            "gridftp_prot_s_integrity"
        );
        assert_eq!(slug("cost-model"), "cost_model");
    }

    #[test]
    fn warmed_grid_is_ready() {
        let grid = warmed_paper_grid(1, SimDuration::from_secs(60));
        assert_eq!(grid.now().as_secs_f64(), 60.0);
    }

    #[test]
    fn sizes_match_paper() {
        assert_eq!(PAPER_SIZES_MB, [256, 512, 1024, 2048]);
    }
}
