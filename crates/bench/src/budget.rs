//! The deterministic perf budget: `profile --check-budget`.
//!
//! `BENCH_profile.json` is a pure function of the seed in default builds,
//! so its *work counters* — solver passes per decision, batching savings,
//! steady-state dispatch allocations — are stable enough to gate CI on
//! directly, with no timing noise and no statistical machinery. The
//! budget file (`ci/profile_budget.json`) states ceilings; this module
//! re-reads the emitted report and fails loudly when a ceiling is
//! crossed, which is exactly what a hot-path regression looks like in a
//! deterministic simulator: the counters move, not the milliseconds.
//!
//! Both files are the repo's own flat hand-rendered JSON, so the parser
//! here is the same needle-scanning style as `profile --check` — not a
//! general JSON parser, and deliberately so (no new dependencies).
//!
//! Budget cells are matched to report cells by client count. A report
//! cell with no budget entry is reported but not gated (local sweeps run
//! larger cells than CI); a budget that gates *nothing* is an error, so
//! the gate cannot silently rot when client counts drift.

use std::fmt::Write as _;

/// One `"clients": N` object sliced out of a flat JSON array body.
#[derive(Debug, Clone, PartialEq)]
struct Chunk {
    clients: u64,
    body: String,
}

/// Extracts `"key": <number>` from a flat JSON fragment.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Splits the `"cells": [...]` array into per-cell fragments, keyed by
/// their `"clients"` field. Cell objects in our reports are `{...}`
/// blocks with no nested objects except the `phases` array, so scanning
/// for balanced braces is sufficient.
fn cells(json: &str) -> Result<Vec<Chunk>, String> {
    let start = json
        .find("\"cells\":")
        .ok_or_else(|| "missing \"cells\" array".to_string())?;
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cell_start = None;
    for (i, c) in json[start..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    cell_start = Some(start + i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = cell_start.take() {
                        let body = json[s..=start + i].to_string();
                        let clients = extract_number(&body, "clients")
                            .ok_or_else(|| "cell without \"clients\" field".to_string())?;
                        out.push(Chunk {
                            clients: clients as u64,
                            body,
                        });
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    if out.is_empty() {
        return Err("\"cells\" array is empty".to_string());
    }
    Ok(out)
}

/// Checks one report cell against one budget cell. Budget keys are
/// `max_<counter>` (ceiling, inclusive) or `min_<counter>` (floor,
/// inclusive) over the report cell's numeric fields.
fn check_cell(report: &Chunk, budget: &Chunk, failures: &mut Vec<String>) -> Vec<String> {
    let mut gated = Vec::new();
    // Walk the budget cell's keys; every max_*/min_* must resolve.
    let mut rest = budget.body.as_str();
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = &rest[..end];
        rest = &rest[end + 1..];
        let (kind, counter) = if let Some(c) = key.strip_prefix("max_") {
            (Bound::Max, c)
        } else if let Some(c) = key.strip_prefix("min_") {
            (Bound::Min, c)
        } else {
            continue;
        };
        let Some(limit) = extract_number(&budget.body, key) else {
            failures.push(format!(
                "budget cell {}: \"{key}\" is not a number",
                budget.clients
            ));
            continue;
        };
        let Some(actual) = extract_number(&report.body, counter) else {
            failures.push(format!(
                "cell {}: report has no counter \"{counter}\" (budget key \"{key}\")",
                report.clients
            ));
            continue;
        };
        let ok = match kind {
            Bound::Max => actual <= limit,
            Bound::Min => actual >= limit,
        };
        let op = match kind {
            Bound::Max => "<=",
            Bound::Min => ">=",
        };
        if ok {
            gated.push(format!("{counter} = {actual} {op} {limit}"));
        } else {
            failures.push(format!(
                "cell {}: {counter} = {actual}, budget requires {op} {limit}",
                report.clients
            ));
        }
    }
    gated
}

#[derive(Clone, Copy)]
enum Bound {
    Max,
    Min,
}

/// Checks a `BENCH_profile.json` body against a budget body. Returns the
/// human-readable gate summary, or an error listing every violated bound.
///
/// # Errors
///
/// One message per violated bound / malformed field, joined by newlines;
/// also an error when the budget matched no report cell at all (a gate
/// that checks nothing must not pass).
pub fn check_budget(report_json: &str, budget_json: &str) -> Result<String, String> {
    if !budget_json.contains("\"name\": \"profile-budget\"") {
        return Err("budget file is not a profile budget (missing name)".to_string());
    }
    let report_cells = cells(report_json).map_err(|e| format!("report: {e}"))?;
    let budget_cells = cells(budget_json).map_err(|e| format!("budget: {e}"))?;

    let mut failures = Vec::new();
    let mut summary = String::new();
    let mut matched = 0usize;

    // Top-level bound: the engine's warmed event drain must not allocate.
    if let Some(limit) = extract_number(budget_json, "max_steady_dispatch_allocs") {
        match extract_number(report_json, "steady_dispatch_allocs") {
            Some(actual) if actual <= limit => {
                let _ = writeln!(summary, "steady_dispatch_allocs = {actual} <= {limit}");
                matched += 1;
            }
            Some(actual) => failures.push(format!(
                "steady_dispatch_allocs = {actual}, budget requires <= {limit}"
            )),
            None => failures.push(
                "report has no \"steady_dispatch_allocs\" (emitted by the profile binary's \
                 allocation probe)"
                    .to_string(),
            ),
        }
    }

    for rc in &report_cells {
        match budget_cells.iter().find(|bc| bc.clients == rc.clients) {
            Some(bc) => {
                matched += 1;
                let gated = check_cell(rc, bc, &mut failures);
                let _ = writeln!(
                    summary,
                    "cell {}: {}",
                    rc.clients,
                    if gated.is_empty() {
                        "no bounds".to_string()
                    } else {
                        gated.join(", ")
                    }
                );
            }
            None => {
                let _ = writeln!(summary, "cell {}: no budget entry (not gated)", rc.clients);
            }
        }
    }

    if matched == 0 {
        failures.push(format!(
            "budget gated nothing: no budget cell matches the report's client counts {:?}",
            report_cells.iter().map(|c| c.clients).collect::<Vec<_>>()
        ));
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(solves_per_decision: f64, solves_avoided: u64, allocs: u64) -> String {
        format!(
            "{{\n  \"name\": \"profile\",\n  \"steady_dispatch_allocs\": {allocs},\n  \
             \"cells\": [\n    {{\n      \"clients\": 16,\n      \"decisions\": 16,\n      \
             \"solves\": 480,\n      \"solves_per_decision\": {solves_per_decision:.6},\n      \
             \"solves_avoided\": {solves_avoided}\n    }}\n  ]\n}}\n"
        )
    }

    const BUDGET: &str = "{\n  \"name\": \"profile-budget\",\n  \
        \"max_steady_dispatch_allocs\": 0,\n  \"cells\": [\n    {\n      \
        \"clients\": 16,\n      \"max_solves_per_decision\": 40.0,\n      \
        \"min_solves_avoided\": 1\n    }\n  ]\n}\n";

    #[test]
    fn compliant_report_passes() {
        let summary = check_budget(&report(30.0, 12, 0), BUDGET).unwrap();
        assert!(
            summary.contains("solves_per_decision = 30 <= 40"),
            "{summary}"
        );
        assert!(
            summary.contains("steady_dispatch_allocs = 0 <= 0"),
            "{summary}"
        );
    }

    #[test]
    fn injected_solver_regression_fails() {
        // A hot-path regression shows up as more solver passes per
        // arrival; the gate must trip on exactly that counter.
        let err = check_budget(&report(55.0, 12, 0), BUDGET).unwrap_err();
        assert!(err.contains("solves_per_decision = 55"), "{err}");
        assert!(err.contains("<= 40"), "{err}");
    }

    #[test]
    fn lost_batching_fails_the_floor() {
        let err = check_budget(&report(30.0, 0, 0), BUDGET).unwrap_err();
        assert!(err.contains("solves_avoided = 0"), "{err}");
        assert!(err.contains(">= 1"), "{err}");
    }

    #[test]
    fn dispatch_allocation_fails() {
        let err = check_budget(&report(30.0, 12, 7), BUDGET).unwrap_err();
        assert!(err.contains("steady_dispatch_allocs = 7"), "{err}");
    }

    #[test]
    fn missing_alloc_probe_fails() {
        let no_probe = "{\n  \"name\": \"profile\",\n  \"cells\": [\n    {\n      \
            \"clients\": 16,\n      \"solves_per_decision\": 1.0,\n      \
            \"solves_avoided\": 5\n    }\n  ]\n}\n";
        let err = check_budget(no_probe, BUDGET).unwrap_err();
        assert!(err.contains("steady_dispatch_allocs"), "{err}");
    }

    #[test]
    fn unmatched_budget_gates_nothing_and_fails() {
        let other = report(1.0, 5, 0).replace("\"clients\": 16", "\"clients\": 64");
        let budget_no_alloc = BUDGET.replace("  \"max_steady_dispatch_allocs\": 0,\n", "");
        let err = check_budget(&other, &budget_no_alloc).unwrap_err();
        assert!(err.contains("budget gated nothing"), "{err}");
    }

    #[test]
    fn unknown_report_counter_fails() {
        let budget = BUDGET.replace("max_solves_per_decision", "max_zorp");
        let err = check_budget(&report(1.0, 5, 0), &budget).unwrap_err();
        assert!(err.contains("no counter \"zorp\""), "{err}");
    }

    #[test]
    fn ungated_cells_are_reported() {
        let two = report(1.0, 5, 0).replace(
            "    }\n  ]",
            "    },\n    {\n      \"clients\": 4096,\n      \"solves_per_decision\": 9.0\n    }\n  ]",
        );
        let summary = check_budget(&two, BUDGET).unwrap();
        assert!(summary.contains("cell 4096: no budget entry"), "{summary}");
    }

    #[test]
    fn wrong_budget_name_is_rejected() {
        let err = check_budget(&report(1.0, 5, 0), "{\"name\": \"grid\"}").unwrap_err();
        assert!(err.contains("not a profile budget"), "{err}");
    }
}
