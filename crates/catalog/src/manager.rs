//! Replica management: creating and deleting physical copies while keeping
//! the catalog consistent.
//!
//! The Globus replica management service combines catalog bookkeeping with
//! GridFTP data movement. [`ReplicaManager`] does the bookkeeping half and
//! delegates the bytes to a [`ReplicaTransport`], which the full stack
//! implements with the simulated GridFTP executor (and tests implement
//! with an in-memory mock).

use std::error::Error;
use std::fmt;

use crate::catalog::ReplicaCatalog;
use crate::error::CatalogError;
use crate::name::{LogicalFileName, PhysicalFileName};

/// Result of a completed transport operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportReceipt {
    /// Bytes moved.
    pub bytes: u64,
}

/// A transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transport failed: {}", self.reason)
    }
}

impl Error for TransportError {}

/// The data movement half of replica management. The full stack wires this
/// to GridFTP third-party transfers; tests use in-memory mocks.
pub trait ReplicaTransport {
    /// Copies `bytes` from the source replica to the destination location.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the copy cannot be carried out.
    fn copy(
        &mut self,
        src: &PhysicalFileName,
        dst: &PhysicalFileName,
        bytes: u64,
    ) -> Result<TransportReceipt, TransportError>;

    /// Deletes the physical file behind a replica location.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the deletion cannot be carried out.
    fn delete(&mut self, target: &PhysicalFileName) -> Result<(), TransportError>;
}

/// Errors from replica management operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManagerError {
    /// The catalog rejected the bookkeeping side.
    Catalog(CatalogError),
    /// The transport rejected the data movement side.
    Transport(TransportError),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Catalog(e) => write!(f, "catalog: {e}"),
            ManagerError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ManagerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ManagerError::Catalog(e) => Some(e),
            ManagerError::Transport(e) => Some(e),
        }
    }
}

impl From<CatalogError> for ManagerError {
    fn from(e: CatalogError) -> Self {
        ManagerError::Catalog(e)
    }
}

impl From<TransportError> for ManagerError {
    fn from(e: TransportError) -> Self {
        ManagerError::Transport(e)
    }
}

/// Replica manager: catalog-consistent create/delete of physical copies.
///
/// ```
/// use datagrid_catalog::prelude::*;
///
/// #[derive(Default)]
/// struct MemTransport;
/// impl ReplicaTransport for MemTransport {
///     fn copy(&mut self, _: &PhysicalFileName, _: &PhysicalFileName, bytes: u64)
///         -> Result<TransportReceipt, TransportError> {
///         Ok(TransportReceipt { bytes })
///     }
///     fn delete(&mut self, _: &PhysicalFileName) -> Result<(), TransportError> {
///         Ok(())
///     }
/// }
///
/// let mut mgr = ReplicaManager::new();
/// mgr.catalog_mut().register_logical("file-a".parse().unwrap(), 100).unwrap();
/// mgr.catalog_mut().add_replica(
///     &"file-a".parse().unwrap(),
///     "gsiftp://alpha4/d/file-a".parse().unwrap(),
/// ).unwrap();
/// let mut t = MemTransport;
/// mgr.create_replica(&mut t, &"file-a".parse().unwrap(),
///     "gsiftp://hit0/d/file-a".parse().unwrap()).unwrap();
/// assert_eq!(mgr.catalog().replicas(&"file-a".parse().unwrap()).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicaManager {
    catalog: ReplicaCatalog,
}

impl ReplicaManager {
    /// Creates a manager with an empty catalog.
    pub fn new() -> Self {
        ReplicaManager::default()
    }

    /// Wraps an existing catalog.
    pub fn with_catalog(catalog: ReplicaCatalog) -> Self {
        ReplicaManager { catalog }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &ReplicaCatalog {
        &self.catalog
    }

    /// Mutable access to the underlying catalog.
    pub fn catalog_mut(&mut self) -> &mut ReplicaCatalog {
        &mut self.catalog
    }

    /// Creates a new replica of `name` at `destination` by copying from the
    /// first registered source, then registers it. Nothing is registered if
    /// the copy fails.
    ///
    /// # Errors
    ///
    /// Catalog errors (unknown file, duplicate destination, no source
    /// replica) or transport errors.
    pub fn create_replica<T: ReplicaTransport>(
        &mut self,
        transport: &mut T,
        name: &LogicalFileName,
        destination: PhysicalFileName,
    ) -> Result<TransportReceipt, ManagerError> {
        let (src, bytes) = {
            let rec = self
                .catalog
                .lookup(name)
                .ok_or_else(|| CatalogError::UnknownFile {
                    name: name.to_string(),
                })?;
            if rec.locations().contains(&destination) {
                return Err(CatalogError::DuplicateReplica {
                    name: name.to_string(),
                    location: destination.to_string(),
                }
                .into());
            }
            let src = rec
                .locations()
                .first()
                .ok_or_else(|| CatalogError::UnknownReplica {
                    name: name.to_string(),
                    location: "<no source replica>".to_string(),
                })?
                .clone();
            (src, rec.entry().size_bytes())
        };
        let receipt = transport.copy(&src, &destination, bytes)?;
        self.catalog.add_replica(name, destination)?;
        Ok(receipt)
    }

    /// Deletes the replica at `location`: catalog first (so the safety rule
    /// against removing the last copy applies before any data is touched),
    /// then the physical file. If the physical deletion fails the catalog
    /// registration is restored.
    ///
    /// # Errors
    ///
    /// Catalog errors or transport errors.
    pub fn delete_replica<T: ReplicaTransport>(
        &mut self,
        transport: &mut T,
        name: &LogicalFileName,
        location: &PhysicalFileName,
    ) -> Result<(), ManagerError> {
        self.catalog.remove_replica(name, location)?;
        if let Err(e) = transport.delete(location) {
            self.catalog
                .add_replica(name, location.clone())
                .expect("restoring a just-removed replica cannot fail");
            return Err(e.into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory transport with scriptable failures.
    #[derive(Debug, Default)]
    struct MockTransport {
        copies: Vec<(String, String, u64)>,
        deletes: Vec<String>,
        fail_copy: bool,
        fail_delete: bool,
    }

    impl ReplicaTransport for MockTransport {
        fn copy(
            &mut self,
            src: &PhysicalFileName,
            dst: &PhysicalFileName,
            bytes: u64,
        ) -> Result<TransportReceipt, TransportError> {
            if self.fail_copy {
                return Err(TransportError {
                    reason: "copy refused".into(),
                });
            }
            self.copies.push((src.to_string(), dst.to_string(), bytes));
            Ok(TransportReceipt { bytes })
        }

        fn delete(&mut self, target: &PhysicalFileName) -> Result<(), TransportError> {
            if self.fail_delete {
                return Err(TransportError {
                    reason: "delete refused".into(),
                });
            }
            self.deletes.push(target.to_string());
            Ok(())
        }
    }

    fn lfn(s: &str) -> LogicalFileName {
        s.parse().unwrap()
    }

    fn pfn(s: &str) -> PhysicalFileName {
        s.parse().unwrap()
    }

    fn manager() -> ReplicaManager {
        let mut m = ReplicaManager::new();
        m.catalog_mut()
            .register_logical(lfn("file-a"), 1000)
            .unwrap();
        m.catalog_mut()
            .add_replica(&lfn("file-a"), pfn("gsiftp://alpha4/d/f"))
            .unwrap();
        m
    }

    #[test]
    fn create_copies_from_first_source() {
        let mut m = manager();
        let mut t = MockTransport::default();
        let receipt = m
            .create_replica(&mut t, &lfn("file-a"), pfn("gsiftp://hit0/d/f"))
            .unwrap();
        assert_eq!(receipt.bytes, 1000);
        assert_eq!(t.copies.len(), 1);
        assert_eq!(t.copies[0].0, "gsiftp://alpha4/d/f");
        assert_eq!(m.catalog().replicas(&lfn("file-a")).unwrap().len(), 2);
    }

    #[test]
    fn failed_copy_registers_nothing() {
        let mut m = manager();
        let mut t = MockTransport {
            fail_copy: true,
            ..MockTransport::default()
        };
        let err = m
            .create_replica(&mut t, &lfn("file-a"), pfn("gsiftp://hit0/d/f"))
            .unwrap_err();
        assert!(matches!(err, ManagerError::Transport(_)));
        assert_eq!(m.catalog().replicas(&lfn("file-a")).unwrap().len(), 1);
    }

    #[test]
    fn create_with_no_source_fails() {
        let mut m = ReplicaManager::new();
        m.catalog_mut().register_logical(lfn("empty"), 10).unwrap();
        let mut t = MockTransport::default();
        let err = m
            .create_replica(&mut t, &lfn("empty"), pfn("gsiftp://h/p"))
            .unwrap_err();
        assert!(matches!(
            err,
            ManagerError::Catalog(CatalogError::UnknownReplica { .. })
        ));
    }

    #[test]
    fn create_duplicate_destination_fails_without_copying() {
        let mut m = manager();
        let mut t = MockTransport::default();
        let err = m
            .create_replica(&mut t, &lfn("file-a"), pfn("gsiftp://alpha4/d/f"))
            .unwrap_err();
        assert!(matches!(
            err,
            ManagerError::Catalog(CatalogError::DuplicateReplica { .. })
        ));
        assert!(t.copies.is_empty());
    }

    #[test]
    fn delete_removes_catalog_and_data() {
        let mut m = manager();
        let mut t = MockTransport::default();
        m.create_replica(&mut t, &lfn("file-a"), pfn("gsiftp://hit0/d/f"))
            .unwrap();
        m.delete_replica(&mut t, &lfn("file-a"), &pfn("gsiftp://hit0/d/f"))
            .unwrap();
        assert_eq!(t.deletes, vec!["gsiftp://hit0/d/f".to_string()]);
        assert_eq!(m.catalog().replicas(&lfn("file-a")).unwrap().len(), 1);
    }

    #[test]
    fn delete_last_replica_blocked_before_touching_data() {
        let mut m = manager();
        let mut t = MockTransport::default();
        let err = m
            .delete_replica(&mut t, &lfn("file-a"), &pfn("gsiftp://alpha4/d/f"))
            .unwrap_err();
        assert!(matches!(
            err,
            ManagerError::Catalog(CatalogError::LastReplica { .. })
        ));
        assert!(t.deletes.is_empty());
    }

    #[test]
    fn failed_physical_delete_restores_registration() {
        let mut m = manager();
        let mut ok = MockTransport::default();
        m.create_replica(&mut ok, &lfn("file-a"), pfn("gsiftp://hit0/d/f"))
            .unwrap();
        let mut t = MockTransport {
            fail_delete: true,
            ..MockTransport::default()
        };
        let err = m
            .delete_replica(&mut t, &lfn("file-a"), &pfn("gsiftp://hit0/d/f"))
            .unwrap_err();
        assert!(matches!(err, ManagerError::Transport(_)));
        assert_eq!(m.catalog().replicas(&lfn("file-a")).unwrap().len(), 2);
    }

    #[test]
    fn manager_error_sources_chain() {
        let e = ManagerError::Transport(TransportError { reason: "x".into() });
        assert!(std::error::Error::source(&e).is_some());
    }
}
