//! # datagrid-catalog
//!
//! A Globus-style **replica catalog** and replica management layer.
//!
//! The paper's replica selection scenario (its Fig. 1) starts with the
//! application passing a *logical file name* to the replica catalog server,
//! which returns the physical locations of all registered copies. This
//! crate provides that service:
//!
//! * [`name`] — validated logical and physical file names,
//! * [`entry`] — logical file metadata,
//! * [`collection`] — logical collections grouping related files (the
//!   structure of the LDAP-based Globus catalog),
//! * [`catalog`] — the catalog itself: register, replicate, look up,
//! * [`manager`] — a replica manager that keeps the catalog consistent
//!   while copies are created and deleted through a pluggable transport
//!   (GridFTP in the full stack).
//!
//! The crate is deliberately free of simulation dependencies so it can be
//! reused and tested standalone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attributes;
pub mod catalog;
pub mod collection;
pub mod entry;
pub mod error;
pub mod manager;
pub mod name;
pub mod rls;

pub use catalog::ReplicaCatalog;
pub use error::CatalogError;
pub use name::{LogicalFileName, PhysicalFileName};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::attributes::{AttributeKey, AttributeSet};
    pub use crate::catalog::{CatalogStats, FileRecord, ReplicaCatalog};
    pub use crate::collection::LogicalCollection;
    pub use crate::entry::LogicalFileEntry;
    pub use crate::error::CatalogError;
    pub use crate::manager::{ReplicaManager, ReplicaTransport, TransportError, TransportReceipt};
    pub use crate::name::{LogicalFileName, PhysicalFileName};
    pub use crate::rls::{LocalReplicaCatalog, LrcId, ReplicaLocationIndex};
}
