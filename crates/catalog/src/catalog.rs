//! The replica catalog: logical files, their replicas, and collections.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use crate::attributes::{AttributeKey, AttributeSet};
use crate::collection::LogicalCollection;
use crate::entry::LogicalFileEntry;
use crate::error::CatalogError;
use crate::name::{LogicalFileName, PhysicalFileName};

/// A registered logical file together with its replica locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    entry: LogicalFileEntry,
    locations: Vec<PhysicalFileName>,
}

impl FileRecord {
    /// The logical file metadata.
    pub fn entry(&self) -> &LogicalFileEntry {
        &self.entry
    }

    /// The registered replica locations, in registration order.
    pub fn locations(&self) -> &[PhysicalFileName] {
        &self.locations
    }
}

/// The replica catalog server's database.
///
/// ```
/// use datagrid_catalog::ReplicaCatalog;
///
/// let mut cat = ReplicaCatalog::new();
/// cat.register_logical("file-a".parse().unwrap(), 1 << 30).unwrap();
/// cat.add_replica(&"file-a".parse().unwrap(), "gsiftp://hit0/data/file-a".parse().unwrap()).unwrap();
/// let locations = cat.replicas(&"file-a".parse().unwrap()).unwrap();
/// assert_eq!(locations.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicaCatalog {
    files: BTreeMap<LogicalFileName, FileRecord>,
    collections: BTreeMap<LogicalFileName, LogicalCollection>,
    /// Replica locations whose transfers recently failed. A suspect stays
    /// registered (the data may be intact behind a flapping link) but
    /// selection should penalise it until the mark is cleared.
    suspects: BTreeSet<PhysicalFileName>,
    stats: CatalogStats,
}

/// Lifetime access counters of one catalog, for the observability layer's
/// `catalog.*` metrics.
///
/// Read paths take `&self`, so the counters live in [`Cell`]s; cloning a
/// catalog clones the counts, so a counterfactual grid keeps counting
/// independently.
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    lookups: Cell<u64>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    lists: Cell<u64>,
    mutations: Cell<u64>,
}

impl CatalogStats {
    /// Replica/record lookups served (`lookup` + `replicas` calls).
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Lookups that found the logical file.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups for unregistered logical files.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Prefix/attribute list scans served.
    pub fn lists(&self) -> u64 {
        self.lists.get()
    }

    /// Successful write operations (registrations, replica changes,
    /// collection changes).
    pub fn mutations(&self) -> u64 {
        self.mutations.get()
    }

    fn count_lookup(&self, hit: bool) {
        self.lookups.set(self.lookups.get() + 1);
        if hit {
            self.hits.set(self.hits.get() + 1);
        } else {
            self.misses.set(self.misses.get() + 1);
        }
    }

    fn count_list(&self) {
        self.lists.set(self.lists.get() + 1);
    }

    fn count_mutation(&self) {
        self.mutations.set(self.mutations.get() + 1);
    }
}

impl ReplicaCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        ReplicaCatalog::default()
    }

    /// Registers a new logical file with no replicas yet.
    ///
    /// # Errors
    ///
    /// [`CatalogError::DuplicateFile`] if the name is already registered.
    pub fn register_logical(
        &mut self,
        name: LogicalFileName,
        size_bytes: u64,
    ) -> Result<&LogicalFileEntry, CatalogError> {
        if self.files.contains_key(&name) {
            return Err(CatalogError::DuplicateFile {
                name: name.to_string(),
            });
        }
        let entry = LogicalFileEntry::new(name.clone(), size_bytes);
        let rec = self.files.entry(name).or_insert(FileRecord {
            entry,
            locations: Vec::new(),
        });
        self.stats.count_mutation();
        Ok(rec.entry())
    }

    /// Registers a logical file together with all of its replica
    /// locations — the bulk path used by generated workload catalogs,
    /// where hundreds of file/placement pairs are installed before a
    /// replay.
    ///
    /// # Errors
    ///
    /// [`CatalogError::DuplicateFile`] (nothing is registered), or any
    /// [`ReplicaCatalog::add_replica`] error (the file and the replicas
    /// added so far remain registered).
    pub fn register_logical_with_replicas<I>(
        &mut self,
        name: LogicalFileName,
        size_bytes: u64,
        locations: I,
    ) -> Result<(), CatalogError>
    where
        I: IntoIterator<Item = PhysicalFileName>,
    {
        self.register_logical(name.clone(), size_bytes)?;
        for location in locations {
            self.add_replica(&name, location)?;
        }
        Ok(())
    }

    /// Registers a new logical file with content attributes attached.
    ///
    /// # Errors
    ///
    /// [`CatalogError::DuplicateFile`] if the name is already registered.
    pub fn register_logical_with_attributes(
        &mut self,
        name: LogicalFileName,
        size_bytes: u64,
        attributes: AttributeSet,
    ) -> Result<&LogicalFileEntry, CatalogError> {
        if self.files.contains_key(&name) {
            return Err(CatalogError::DuplicateFile {
                name: name.to_string(),
            });
        }
        let entry = LogicalFileEntry::new(name.clone(), size_bytes).with_attributes(attributes);
        let rec = self.files.entry(name).or_insert(FileRecord {
            entry,
            locations: Vec::new(),
        });
        self.stats.count_mutation();
        Ok(rec.entry())
    }

    /// Sets one content attribute on a registered file.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownFile`] if the file is not registered.
    pub fn set_attribute(
        &mut self,
        name: &LogicalFileName,
        key: AttributeKey,
        value: impl Into<String>,
    ) -> Result<(), CatalogError> {
        let rec = self
            .files
            .get_mut(name)
            .ok_or_else(|| CatalogError::UnknownFile {
                name: name.to_string(),
            })?;
        rec.entry.attributes_mut().set(key, value);
        self.stats.count_mutation();
        Ok(())
    }

    /// Data discovery (the first step of the paper's Fig. 1 scenario):
    /// logical files whose attributes match every `(key, value)` pair of
    /// the query, in name order. An empty query lists everything.
    pub fn find_by_attributes(&self, query: &[(&str, &str)]) -> Vec<&LogicalFileEntry> {
        self.stats.count_list();
        self.files
            .values()
            .filter(|r| r.entry.attributes().matches(query))
            .map(FileRecord::entry)
            .collect()
    }

    /// Unregisters a logical file and all its replica registrations.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownFile`] if the name is not registered.
    pub fn unregister_logical(
        &mut self,
        name: &LogicalFileName,
    ) -> Result<FileRecord, CatalogError> {
        let rec = self
            .files
            .remove(name)
            .ok_or_else(|| CatalogError::UnknownFile {
                name: name.to_string(),
            })?;
        for coll in self.collections.values_mut() {
            coll.remove(name);
        }
        self.stats.count_mutation();
        Ok(rec)
    }

    /// Registers a replica location for a logical file.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownFile`] if the file is not registered,
    /// [`CatalogError::DuplicateReplica`] if the location already is.
    pub fn add_replica(
        &mut self,
        name: &LogicalFileName,
        location: PhysicalFileName,
    ) -> Result<(), CatalogError> {
        let rec = self
            .files
            .get_mut(name)
            .ok_or_else(|| CatalogError::UnknownFile {
                name: name.to_string(),
            })?;
        if rec.locations.contains(&location) {
            return Err(CatalogError::DuplicateReplica {
                name: name.to_string(),
                location: location.to_string(),
            });
        }
        rec.locations.push(location);
        self.stats.count_mutation();
        Ok(())
    }

    /// Removes one replica registration. The last replica of a registered
    /// file cannot be removed (unregister the file instead), mirroring the
    /// Globus replica manager's safety rule.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownFile`], [`CatalogError::UnknownReplica`] or
    /// [`CatalogError::LastReplica`].
    pub fn remove_replica(
        &mut self,
        name: &LogicalFileName,
        location: &PhysicalFileName,
    ) -> Result<(), CatalogError> {
        let rec = self
            .files
            .get_mut(name)
            .ok_or_else(|| CatalogError::UnknownFile {
                name: name.to_string(),
            })?;
        let idx = rec
            .locations
            .iter()
            .position(|l| l == location)
            .ok_or_else(|| CatalogError::UnknownReplica {
                name: name.to_string(),
                location: location.to_string(),
            })?;
        if rec.locations.len() == 1 {
            return Err(CatalogError::LastReplica {
                name: name.to_string(),
            });
        }
        rec.locations.remove(idx);
        self.stats.count_mutation();
        Ok(())
    }

    /// Looks up a logical file's record.
    pub fn lookup(&self, name: &LogicalFileName) -> Option<&FileRecord> {
        let rec = self.files.get(name);
        self.stats.count_lookup(rec.is_some());
        rec
    }

    /// The replica locations of a logical file.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownFile`] if the file is not registered.
    pub fn replicas(&self, name: &LogicalFileName) -> Result<&[PhysicalFileName], CatalogError> {
        let rec = self.files.get(name);
        self.stats.count_lookup(rec.is_some());
        rec.map(|r| r.locations.as_slice())
            .ok_or_else(|| CatalogError::UnknownFile {
                name: name.to_string(),
            })
    }

    /// Lists registered logical files whose names start with `prefix`
    /// (empty prefix lists everything), in name order.
    pub fn list(&self, prefix: &str) -> Vec<&LogicalFileEntry> {
        self.stats.count_list();
        self.files
            .values()
            .filter(|r| r.entry.name().has_prefix(prefix))
            .map(FileRecord::entry)
            .collect()
    }

    /// Marks a replica location as suspect after a failed transfer.
    /// Returns `true` if the mark is new. The replica stays registered —
    /// suspicion is advisory, for selection to penalise.
    pub fn mark_suspect(&mut self, location: &PhysicalFileName) -> bool {
        let fresh = self.suspects.insert(location.clone());
        if fresh {
            self.stats.count_mutation();
        }
        fresh
    }

    /// Clears a suspect mark (e.g. after a later transfer from the
    /// location succeeded). Returns `true` if a mark was present.
    pub fn clear_suspect(&mut self, location: &PhysicalFileName) -> bool {
        let present = self.suspects.remove(location);
        if present {
            self.stats.count_mutation();
        }
        present
    }

    /// Whether a replica location currently carries a suspect mark.
    pub fn is_suspect(&self, location: &PhysicalFileName) -> bool {
        self.suspects.contains(location)
    }

    /// Number of replica locations currently marked suspect.
    pub fn suspect_count(&self) -> usize {
        self.suspects.len()
    }

    /// Number of registered logical files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Lifetime access counters (lookups, hits, misses, scans, writes).
    pub fn stats(&self) -> &CatalogStats {
        &self.stats
    }

    /// Creates an empty collection.
    ///
    /// # Errors
    ///
    /// [`CatalogError::DuplicateCollection`] if the name is taken.
    pub fn create_collection(&mut self, name: LogicalFileName) -> Result<(), CatalogError> {
        if self.collections.contains_key(&name) {
            return Err(CatalogError::DuplicateCollection {
                name: name.to_string(),
            });
        }
        self.collections
            .insert(name.clone(), LogicalCollection::new(name));
        self.stats.count_mutation();
        Ok(())
    }

    /// Adds a registered file to a collection.
    ///
    /// # Errors
    ///
    /// [`CatalogError::UnknownCollection`] or [`CatalogError::UnknownFile`].
    pub fn add_to_collection(
        &mut self,
        collection: &LogicalFileName,
        member: &LogicalFileName,
    ) -> Result<(), CatalogError> {
        if !self.files.contains_key(member) {
            return Err(CatalogError::UnknownFile {
                name: member.to_string(),
            });
        }
        let coll = self.collections.get_mut(collection).ok_or_else(|| {
            CatalogError::UnknownCollection {
                name: collection.to_string(),
            }
        })?;
        coll.insert(member.clone());
        self.stats.count_mutation();
        Ok(())
    }

    /// Looks up a collection.
    pub fn collection(&self, name: &LogicalFileName) -> Option<&LogicalCollection> {
        self.collections.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfn(s: &str) -> LogicalFileName {
        s.parse().unwrap()
    }

    fn pfn(s: &str) -> PhysicalFileName {
        s.parse().unwrap()
    }

    fn catalog_with_file() -> ReplicaCatalog {
        let mut c = ReplicaCatalog::new();
        c.register_logical(lfn("file-a"), 1 << 30).unwrap();
        c
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut c = catalog_with_file();
        c.add_replica(&lfn("file-a"), pfn("gsiftp://hit0/data/file-a"))
            .unwrap();
        assert_eq!(c.stats().mutations(), 2);
        let _ = c.lookup(&lfn("file-a"));
        let _ = c.replicas(&lfn("file-a"));
        let _ = c.lookup(&lfn("nope"));
        let _ = c.list("file");
        assert_eq!(c.stats().lookups(), 3);
        assert_eq!(c.stats().hits(), 2);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().lists(), 1);
        // Failed writes are not mutations.
        assert!(c.register_logical(lfn("file-a"), 1).is_err());
        assert_eq!(c.stats().mutations(), 2);
        // Clones keep counting independently.
        let clone = c.clone();
        let _ = clone.lookup(&lfn("file-a"));
        assert_eq!(clone.stats().lookups(), 4);
        assert_eq!(c.stats().lookups(), 3);
    }

    #[test]
    fn register_and_lookup() {
        let c = catalog_with_file();
        let rec = c.lookup(&lfn("file-a")).unwrap();
        assert_eq!(rec.entry().size_bytes(), 1 << 30);
        assert!(rec.locations().is_empty());
        assert_eq!(c.file_count(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = catalog_with_file();
        let err = c.register_logical(lfn("file-a"), 5).unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateFile { .. }));
    }

    #[test]
    fn add_and_list_replicas() {
        let mut c = catalog_with_file();
        c.add_replica(&lfn("file-a"), pfn("gsiftp://alpha4/d/f"))
            .unwrap();
        c.add_replica(&lfn("file-a"), pfn("gsiftp://hit0/d/f"))
            .unwrap();
        let locs = c.replicas(&lfn("file-a")).unwrap();
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0].host(), "alpha4");
        let err = c
            .add_replica(&lfn("file-a"), pfn("gsiftp://hit0/d/f"))
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateReplica { .. }));
    }

    #[test]
    fn replica_for_unknown_file_rejected() {
        let mut c = ReplicaCatalog::new();
        let err = c
            .add_replica(&lfn("ghost"), pfn("gsiftp://h/p"))
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownFile { .. }));
        assert!(matches!(
            c.replicas(&lfn("ghost")).unwrap_err(),
            CatalogError::UnknownFile { .. }
        ));
    }

    #[test]
    fn remove_replica_protects_last_copy() {
        let mut c = catalog_with_file();
        c.add_replica(&lfn("file-a"), pfn("gsiftp://a/f")).unwrap();
        c.add_replica(&lfn("file-a"), pfn("gsiftp://b/f")).unwrap();
        c.remove_replica(&lfn("file-a"), &pfn("gsiftp://a/f"))
            .unwrap();
        let err = c
            .remove_replica(&lfn("file-a"), &pfn("gsiftp://b/f"))
            .unwrap_err();
        assert!(matches!(err, CatalogError::LastReplica { .. }));
        let err = c
            .remove_replica(&lfn("file-a"), &pfn("gsiftp://zzz/f"))
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownReplica { .. }));
    }

    #[test]
    fn unregister_removes_file_and_collection_membership() {
        let mut c = catalog_with_file();
        c.create_collection(lfn("bio")).unwrap();
        c.add_to_collection(&lfn("bio"), &lfn("file-a")).unwrap();
        assert!(c.collection(&lfn("bio")).unwrap().contains(&lfn("file-a")));
        c.unregister_logical(&lfn("file-a")).unwrap();
        assert!(c.lookup(&lfn("file-a")).is_none());
        assert!(!c.collection(&lfn("bio")).unwrap().contains(&lfn("file-a")));
        assert!(matches!(
            c.unregister_logical(&lfn("file-a")).unwrap_err(),
            CatalogError::UnknownFile { .. }
        ));
    }

    #[test]
    fn suspect_marks_are_advisory_and_idempotent() {
        let mut c = catalog_with_file();
        let loc = pfn("gsiftp://hit0/data/file-a");
        c.add_replica(&lfn("file-a"), loc.clone()).unwrap();
        assert!(!c.is_suspect(&loc));
        assert!(c.mark_suspect(&loc));
        assert!(!c.mark_suspect(&loc), "second mark is a no-op");
        assert!(c.is_suspect(&loc));
        assert_eq!(c.suspect_count(), 1);
        // The replica is still registered and listed.
        assert_eq!(c.replicas(&lfn("file-a")).unwrap().len(), 1);
        assert!(c.clear_suspect(&loc));
        assert!(!c.clear_suspect(&loc));
        assert!(!c.is_suspect(&loc));
        assert_eq!(c.suspect_count(), 0);
    }

    #[test]
    fn list_by_prefix() {
        let mut c = ReplicaCatalog::new();
        c.register_logical(lfn("hep/a"), 1).unwrap();
        c.register_logical(lfn("hep/b"), 2).unwrap();
        c.register_logical(lfn("bio/x"), 3).unwrap();
        let hep = c.list("hep/");
        assert_eq!(hep.len(), 2);
        assert_eq!(hep[0].name().as_str(), "hep/a");
        assert_eq!(c.list("").len(), 3);
        assert!(c.list("nope").is_empty());
    }

    #[test]
    fn collections_workflow() {
        let mut c = catalog_with_file();
        c.create_collection(lfn("bio")).unwrap();
        assert!(matches!(
            c.create_collection(lfn("bio")).unwrap_err(),
            CatalogError::DuplicateCollection { .. }
        ));
        assert!(matches!(
            c.add_to_collection(&lfn("nope"), &lfn("file-a"))
                .unwrap_err(),
            CatalogError::UnknownCollection { .. }
        ));
        assert!(matches!(
            c.add_to_collection(&lfn("bio"), &lfn("ghost")).unwrap_err(),
            CatalogError::UnknownFile { .. }
        ));
        c.add_to_collection(&lfn("bio"), &lfn("file-a")).unwrap();
        assert_eq!(c.collection(&lfn("bio")).unwrap().len(), 1);
    }
}

#[cfg(test)]
mod attribute_tests {
    use super::*;

    fn lfn(s: &str) -> LogicalFileName {
        s.parse().unwrap()
    }

    fn attrs(pairs: &[(&str, &str)]) -> AttributeSet {
        let mut a = AttributeSet::new();
        for (k, v) in pairs {
            a.set(k.parse().unwrap(), *v);
        }
        a
    }

    #[test]
    fn register_with_attributes_and_discover() {
        let mut c = ReplicaCatalog::new();
        c.register_logical_with_attributes(
            lfn("hep/run42/events"),
            1 << 30,
            attrs(&[("experiment", "cms"), ("run", "42")]),
        )
        .unwrap();
        c.register_logical_with_attributes(
            lfn("hep/run43/events"),
            1 << 30,
            attrs(&[("experiment", "cms"), ("run", "43")]),
        )
        .unwrap();
        c.register_logical_with_attributes(
            lfn("bio/nr"),
            2 << 30,
            attrs(&[("organism", "all"), ("format", "fasta")]),
        )
        .unwrap();

        let cms = c.find_by_attributes(&[("experiment", "cms")]);
        assert_eq!(cms.len(), 2);
        let run42 = c.find_by_attributes(&[("experiment", "cms"), ("run", "42")]);
        assert_eq!(run42.len(), 1);
        assert_eq!(run42[0].name().as_str(), "hep/run42/events");
        assert!(c.find_by_attributes(&[("experiment", "atlas")]).is_empty());
        // Empty query lists the whole catalogue.
        assert_eq!(c.find_by_attributes(&[]).len(), 3);
    }

    #[test]
    fn set_attribute_after_registration() {
        let mut c = ReplicaCatalog::new();
        c.register_logical(lfn("plain"), 10).unwrap();
        assert!(c.find_by_attributes(&[("tier", "2")]).is_empty());
        c.set_attribute(&lfn("plain"), "tier".parse().unwrap(), "2")
            .unwrap();
        assert_eq!(c.find_by_attributes(&[("tier", "2")]).len(), 1);
        assert!(matches!(
            c.set_attribute(&lfn("ghost"), "tier".parse().unwrap(), "2"),
            Err(CatalogError::UnknownFile { .. })
        ));
    }

    #[test]
    fn duplicate_attributed_registration_rejected() {
        let mut c = ReplicaCatalog::new();
        c.register_logical(lfn("f"), 1).unwrap();
        assert!(matches!(
            c.register_logical_with_attributes(lfn("f"), 1, AttributeSet::new()),
            Err(CatalogError::DuplicateFile { .. })
        ));
    }
}
