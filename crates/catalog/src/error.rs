//! Catalog error types.

use std::error::Error;
use std::fmt;

/// Errors returned by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CatalogError {
    /// A logical or physical name failed validation.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// The logical file is not registered.
    UnknownFile {
        /// The requested logical name.
        name: String,
    },
    /// The logical file is already registered.
    DuplicateFile {
        /// The conflicting logical name.
        name: String,
    },
    /// The replica location is not registered for this file.
    UnknownReplica {
        /// The logical name.
        name: String,
        /// The physical location.
        location: String,
    },
    /// The replica location is already registered for this file.
    DuplicateReplica {
        /// The logical name.
        name: String,
        /// The physical location.
        location: String,
    },
    /// The last replica of a file cannot be removed while the file stays
    /// registered.
    LastReplica {
        /// The logical name.
        name: String,
    },
    /// The collection is not registered.
    UnknownCollection {
        /// The requested collection name.
        name: String,
    },
    /// The collection is already registered.
    DuplicateCollection {
        /// The conflicting collection name.
        name: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::InvalidName { name } => write!(f, "invalid name {name:?}"),
            CatalogError::UnknownFile { name } => write!(f, "unknown logical file {name:?}"),
            CatalogError::DuplicateFile { name } => {
                write!(f, "logical file {name:?} already registered")
            }
            CatalogError::UnknownReplica { name, location } => {
                write!(f, "no replica of {name:?} at {location}")
            }
            CatalogError::DuplicateReplica { name, location } => {
                write!(f, "replica of {name:?} already registered at {location}")
            }
            CatalogError::LastReplica { name } => {
                write!(f, "cannot remove the last replica of {name:?}")
            }
            CatalogError::UnknownCollection { name } => {
                write!(f, "unknown collection {name:?}")
            }
            CatalogError::DuplicateCollection { name } => {
                write!(f, "collection {name:?} already registered")
            }
        }
    }
}

impl Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CatalogError::UnknownFile {
            name: "file-a".into(),
        };
        let s = e.to_string();
        assert!(s.contains("file-a"));
        assert!(s.starts_with("unknown"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CatalogError>();
    }
}
