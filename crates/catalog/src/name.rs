//! Validated logical and physical file names.

use std::fmt;
use std::str::FromStr;

use crate::error::CatalogError;

/// A logical file name (LFN): the location-independent identity of a data
/// set, e.g. `file-a` or `hep/run42/events.dat`.
///
/// Valid names are non-empty, at most 255 bytes, use only
/// `[A-Za-z0-9._/-]`, and neither start nor end with `/`.
///
/// ```
/// use datagrid_catalog::name::LogicalFileName;
///
/// let lfn: LogicalFileName = "file-a".parse().unwrap();
/// assert_eq!(lfn.as_str(), "file-a");
/// assert!("bad name with spaces".parse::<LogicalFileName>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalFileName(String);

impl LogicalFileName {
    /// Validates and wraps a name.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::InvalidName`] if the name violates the rules
    /// above.
    pub fn new(name: impl Into<String>) -> Result<Self, CatalogError> {
        let name = name.into();
        let ok = !name.is_empty()
            && name.len() <= 255
            && !name.starts_with('/')
            && !name.ends_with('/')
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'/' | b'-'));
        if ok {
            Ok(LogicalFileName(name))
        } else {
            Err(CatalogError::InvalidName { name })
        }
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `true` if the name starts with `prefix` (used for wildcard-style
    /// listing).
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.0.starts_with(prefix)
    }
}

impl fmt::Display for LogicalFileName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for LogicalFileName {
    type Err = CatalogError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LogicalFileName::new(s)
    }
}

impl AsRef<str> for LogicalFileName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A physical file name (PFN): one concrete replica location, addressed as
/// a host plus an absolute path, rendered as a `gsiftp://` URL.
///
/// ```
/// use datagrid_catalog::name::PhysicalFileName;
///
/// let pfn = PhysicalFileName::new("hit0", "/data/file-a").unwrap();
/// assert_eq!(pfn.to_string(), "gsiftp://hit0/data/file-a");
/// let parsed: PhysicalFileName = "gsiftp://hit0/data/file-a".parse().unwrap();
/// assert_eq!(parsed, pfn);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalFileName {
    host: String,
    path: String,
}

impl PhysicalFileName {
    /// Creates a PFN from a host name and an absolute path.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::InvalidName`] if the host is empty or
    /// contains `/`, or the path is not absolute.
    pub fn new(host: impl Into<String>, path: impl Into<String>) -> Result<Self, CatalogError> {
        let host = host.into();
        let path = path.into();
        let host_ok = !host.is_empty()
            && host
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
        let path_ok = path.starts_with('/')
            && path.len() > 1
            && path
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'/' | b'-'));
        if host_ok && path_ok {
            Ok(PhysicalFileName { host, path })
        } else {
            Err(CatalogError::InvalidName {
                name: format!("{host}:{path}"),
            })
        }
    }

    /// The storage host holding this replica.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The absolute path on that host.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl fmt::Display for PhysicalFileName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gsiftp://{}{}", self.host, self.path)
    }
}

impl FromStr for PhysicalFileName {
    type Err = CatalogError;

    /// Parses a `gsiftp://host/path` URL.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("gsiftp://")
            .ok_or_else(|| CatalogError::InvalidName {
                name: s.to_string(),
            })?;
        let slash = rest.find('/').ok_or_else(|| CatalogError::InvalidName {
            name: s.to_string(),
        })?;
        PhysicalFileName::new(&rest[..slash], &rest[slash..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_lfns() {
        for n in ["file-a", "a", "hep/run42/events.dat", "x_1.2-3"] {
            assert!(LogicalFileName::new(n).is_ok(), "{n} should be valid");
        }
    }

    #[test]
    fn invalid_lfns() {
        for n in ["", "/leading", "trailing/", "has space", "tab\there", "é"] {
            assert!(LogicalFileName::new(n).is_err(), "{n:?} should be invalid");
        }
        let long = "x".repeat(256);
        assert!(LogicalFileName::new(long).is_err());
    }

    #[test]
    fn lfn_round_trips_through_str() {
        let lfn: LogicalFileName = "file-a".parse().unwrap();
        assert_eq!(lfn.to_string(), "file-a");
        assert_eq!(lfn.as_ref(), "file-a");
        assert!(lfn.has_prefix("file"));
        assert!(!lfn.has_prefix("other"));
    }

    #[test]
    fn pfn_construction_and_accessors() {
        let pfn = PhysicalFileName::new("alpha4", "/storage/file-a").unwrap();
        assert_eq!(pfn.host(), "alpha4");
        assert_eq!(pfn.path(), "/storage/file-a");
    }

    #[test]
    fn pfn_rejects_bad_parts() {
        assert!(PhysicalFileName::new("", "/x").is_err());
        assert!(PhysicalFileName::new("host/evil", "/x").is_err());
        assert!(PhysicalFileName::new("host", "relative").is_err());
        assert!(PhysicalFileName::new("host", "/").is_err());
    }

    #[test]
    fn pfn_url_round_trip() {
        let pfn = PhysicalFileName::new("lz02", "/data/file-a").unwrap();
        let url = pfn.to_string();
        let back: PhysicalFileName = url.parse().unwrap();
        assert_eq!(back, pfn);
    }

    #[test]
    fn pfn_parse_rejects_garbage() {
        assert!("http://x/y".parse::<PhysicalFileName>().is_err());
        assert!("gsiftp://hostonly".parse::<PhysicalFileName>().is_err());
    }
}
