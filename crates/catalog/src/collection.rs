//! Logical collections.
//!
//! The Globus replica catalog organises logical files into *collections*
//! (e.g. one per experiment run); applications can register and locate
//! whole collections at once.

use std::collections::BTreeSet;

use crate::name::LogicalFileName;

/// A named set of logical files.
///
/// ```
/// use datagrid_catalog::collection::LogicalCollection;
///
/// let mut c = LogicalCollection::new("hep-run42".parse().unwrap());
/// c.insert("hep/run42/a.dat".parse().unwrap());
/// assert_eq!(c.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalCollection {
    name: LogicalFileName,
    members: BTreeSet<LogicalFileName>,
}

impl LogicalCollection {
    /// Creates an empty collection. Collection names share the LFN rules.
    pub fn new(name: LogicalFileName) -> Self {
        LogicalCollection {
            name,
            members: BTreeSet::new(),
        }
    }

    /// The collection name.
    pub fn name(&self) -> &LogicalFileName {
        &self.name
    }

    /// Adds a member; returns `false` if it was already present.
    pub fn insert(&mut self, member: LogicalFileName) -> bool {
        self.members.insert(member)
    }

    /// Removes a member; returns `false` if it was not present.
    pub fn remove(&mut self, member: &LogicalFileName) -> bool {
        self.members.remove(member)
    }

    /// `true` if the file is a member.
    pub fn contains(&self, member: &LogicalFileName) -> bool {
        self.members.contains(member)
    }

    /// Iterates members in name order.
    pub fn iter(&self) -> impl Iterator<Item = &LogicalFileName> {
        self.members.iter()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the collection has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Extend<LogicalFileName> for LogicalCollection {
    fn extend<T: IntoIterator<Item = LogicalFileName>>(&mut self, iter: T) {
        self.members.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfn(s: &str) -> LogicalFileName {
        s.parse().unwrap()
    }

    #[test]
    fn insert_remove_contains() {
        let mut c = LogicalCollection::new(lfn("runs"));
        assert!(c.is_empty());
        assert!(c.insert(lfn("a")));
        assert!(!c.insert(lfn("a")));
        assert!(c.contains(&lfn("a")));
        assert!(c.remove(&lfn("a")));
        assert!(!c.remove(&lfn("a")));
        assert!(c.is_empty());
    }

    #[test]
    fn members_iterate_in_order() {
        let mut c = LogicalCollection::new(lfn("runs"));
        c.extend([lfn("c"), lfn("a"), lfn("b")]);
        let names: Vec<&str> = c.iter().map(|m| m.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.name().as_str(), "runs");
    }
}
