//! Logical file metadata.

use crate::attributes::AttributeSet;
use crate::name::LogicalFileName;

/// Metadata describing one logical file, independent of where its replicas
/// live.
///
/// ```
/// use datagrid_catalog::entry::LogicalFileEntry;
/// use datagrid_catalog::name::LogicalFileName;
///
/// let entry = LogicalFileEntry::new("file-a".parse().unwrap(), 1 << 30);
/// assert_eq!(entry.size_bytes(), 1 << 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalFileEntry {
    name: LogicalFileName,
    size_bytes: u64,
    checksum: u64,
    attributes: AttributeSet,
}

impl LogicalFileEntry {
    /// Creates an entry; the checksum token is derived from name and size
    /// (a stand-in for a real content digest, sufficient to detect
    /// mismatched registrations in the simulation).
    pub fn new(name: LogicalFileName, size_bytes: u64) -> Self {
        let checksum = Self::pseudo_digest(name.as_str(), size_bytes);
        LogicalFileEntry {
            name,
            size_bytes,
            checksum,
            attributes: AttributeSet::new(),
        }
    }

    /// Attaches content attributes (builder style).
    pub fn with_attributes(mut self, attributes: AttributeSet) -> Self {
        self.attributes = attributes;
        self
    }

    /// The logical name.
    pub fn name(&self) -> &LogicalFileName {
        &self.name
    }

    /// File size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// The content digest token.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The content attributes used for data discovery.
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// Mutable access to the content attributes.
    pub fn attributes_mut(&mut self) -> &mut AttributeSet {
        &mut self.attributes
    }

    /// Verifies that a transferred byte count and digest match this entry.
    pub fn matches(&self, size_bytes: u64, checksum: u64) -> bool {
        self.size_bytes == size_bytes && self.checksum == checksum
    }

    /// FNV-1a over the name bytes mixed with the size; deterministic and
    /// collision-unlikely at catalogue scale.
    fn pseudo_digest(name: &str, size: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ size.rotate_left(17)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfn(s: &str) -> LogicalFileName {
        s.parse().unwrap()
    }

    #[test]
    fn accessors() {
        let e = LogicalFileEntry::new(lfn("file-a"), 1024);
        assert_eq!(e.name().as_str(), "file-a");
        assert_eq!(e.size_bytes(), 1024);
    }

    #[test]
    fn checksum_deterministic_and_discriminating() {
        let a = LogicalFileEntry::new(lfn("file-a"), 1024);
        let a2 = LogicalFileEntry::new(lfn("file-a"), 1024);
        let b = LogicalFileEntry::new(lfn("file-b"), 1024);
        let a_big = LogicalFileEntry::new(lfn("file-a"), 2048);
        assert_eq!(a.checksum(), a2.checksum());
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.checksum(), a_big.checksum());
    }

    #[test]
    fn matches_validates_both_fields() {
        let e = LogicalFileEntry::new(lfn("file-a"), 1024);
        assert!(e.matches(1024, e.checksum()));
        assert!(!e.matches(1023, e.checksum()));
        assert!(!e.matches(1024, e.checksum() ^ 1));
    }
}
