//! Attribute-based data discovery.
//!
//! In the paper's scenario (its Fig. 1), the application does not start
//! from a file name: it "specifies the characteristics of the desired
//! data and passes this attribute description to the replica catalog
//! server", which "queries its database and produces a list of logical
//! files that contain data with the specified characteristics". This
//! module provides that attribute layer: free-form key/value metadata on
//! logical files plus a conjunctive query.

use std::collections::BTreeMap;
use std::fmt;

/// A validated attribute key: non-empty, ≤ 64 bytes, `[a-z0-9_-]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeKey(String);

impl AttributeKey {
    /// Validates and wraps a key.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it violates the rules above.
    pub fn new(key: impl Into<String>) -> Result<Self, String> {
        let key = key.into();
        let ok = !key.is_empty()
            && key.len() <= 64
            && key
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'_' | b'-'));
        if ok {
            Ok(AttributeKey(key))
        } else {
            Err(key)
        }
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttributeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for AttributeKey {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AttributeKey::new(s)
    }
}

/// A set of key/value attributes describing a logical file's contents
/// (experiment, organism, run number, data format, ...).
///
/// ```
/// use datagrid_catalog::attributes::AttributeSet;
///
/// let mut attrs = AttributeSet::new();
/// attrs.set("experiment".parse().unwrap(), "cms");
/// attrs.set("run".parse().unwrap(), "42");
/// assert!(attrs.matches(&[("experiment", "cms")]));
/// assert!(!attrs.matches(&[("experiment", "atlas")]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributeSet {
    entries: BTreeMap<AttributeKey, String>,
}

impl AttributeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AttributeSet::default()
    }

    /// Sets one attribute, returning the previous value if any.
    pub fn set(&mut self, key: AttributeKey, value: impl Into<String>) -> Option<String> {
        self.entries.insert(key, value.into())
    }

    /// Looks one attribute up.
    pub fn get(&self, key: &str) -> Option<&str> {
        AttributeKey::new(key)
            .ok()
            .and_then(|k| self.entries.get(&k))
            .map(String::as_str)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttributeKey, &str)> {
        self.entries.iter().map(|(k, v)| (k, v.as_str()))
    }

    /// Conjunctive match: `true` iff every `(key, value)` pair in `query`
    /// is present with exactly that value. An empty query matches
    /// everything (the catalog-wide listing).
    pub fn matches(&self, query: &[(&str, &str)]) -> bool {
        query.iter().all(|(k, v)| self.get(k) == Some(*v))
    }
}

impl FromIterator<(AttributeKey, String)> for AttributeSet {
    fn from_iter<T: IntoIterator<Item = (AttributeKey, String)>>(iter: T) -> Self {
        AttributeSet {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_validation() {
        assert!(AttributeKey::new("experiment").is_ok());
        assert!(AttributeKey::new("run_42-x").is_ok());
        for bad in ["", "UPPER", "has space", "ünïcode"] {
            assert!(AttributeKey::new(bad).is_err(), "{bad:?}");
        }
        let long = "k".repeat(65);
        assert!(AttributeKey::new(long).is_err());
    }

    #[test]
    fn set_get_overwrite() {
        let mut a = AttributeSet::new();
        assert!(a.is_empty());
        assert_eq!(a.set("organism".parse().unwrap(), "e-coli"), None);
        assert_eq!(
            a.set("organism".parse().unwrap(), "yeast"),
            Some("e-coli".to_string())
        );
        assert_eq!(a.get("organism"), Some("yeast"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.get("INVALID KEY"), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn conjunctive_matching() {
        let mut a = AttributeSet::new();
        a.set("experiment".parse().unwrap(), "cms");
        a.set("run".parse().unwrap(), "42");
        a.set("format".parse().unwrap(), "root");
        assert!(a.matches(&[]));
        assert!(a.matches(&[("experiment", "cms")]));
        assert!(a.matches(&[("experiment", "cms"), ("run", "42")]));
        assert!(!a.matches(&[("experiment", "cms"), ("run", "43")]));
        assert!(!a.matches(&[("site", "thu")]));
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut a = AttributeSet::new();
        a.set("z".parse().unwrap(), "1");
        a.set("a".parse().unwrap(), "2");
        let keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
