//! A two-tier Replica Location Service (RLS).
//!
//! The flat replica catalog the paper uses was succeeded in Globus by the
//! RLS architecture: every site runs a **Local Replica Catalog (LRC)**
//! holding its own logical→physical mappings, and one or more **Replica
//! Location Indices (RLI)** answer "which sites know this file?" from
//! periodic *soft-state* summaries the LRCs push. Index entries expire
//! unless refreshed, so a crashed or partitioned site silently drops out
//! of answers instead of serving stale locations.
//!
//! This module is an extension beyond the paper (which queried a single
//! catalog server); it scales the discovery step of the Fig. 1 scenario to
//! many sites. Time is plain `u64` seconds so the crate stays free of
//! simulation dependencies — callers feed in their clock.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::catalog::ReplicaCatalog;
use crate::name::LogicalFileName;

/// Identifier of a Local Replica Catalog within an RLS deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LrcId(pub u32);

impl fmt::Display for LrcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lrc{}", self.0)
    }
}

/// A site-local replica catalog: the site's name plus its mappings.
///
/// ```
/// use datagrid_catalog::rls::LocalReplicaCatalog;
///
/// let mut lrc = LocalReplicaCatalog::new("thu");
/// lrc.catalog_mut().register_logical("file-a".parse().unwrap(), 100).unwrap();
/// assert_eq!(lrc.site(), "thu");
/// assert_eq!(lrc.logical_names().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalReplicaCatalog {
    site: String,
    catalog: ReplicaCatalog,
}

impl LocalReplicaCatalog {
    /// Creates an empty LRC for a site.
    pub fn new(site: impl Into<String>) -> Self {
        LocalReplicaCatalog {
            site: site.into(),
            catalog: ReplicaCatalog::new(),
        }
    }

    /// The owning site's name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &ReplicaCatalog {
        &self.catalog
    }

    /// Mutable access to the underlying catalog.
    pub fn catalog_mut(&mut self) -> &mut ReplicaCatalog {
        &mut self.catalog
    }

    /// The logical names this LRC would advertise in a soft-state summary
    /// (every registered file with at least one local replica, plus files
    /// registered without replicas — registration itself is knowledge).
    pub fn logical_names(&self) -> Vec<LogicalFileName> {
        self.catalog
            .list("")
            .into_iter()
            .map(|e| e.name().clone())
            .collect()
    }
}

/// A Replica Location Index: soft-state map from logical names to the
/// LRCs that (recently) claimed to know them.
///
/// ```
/// use datagrid_catalog::rls::{LocalReplicaCatalog, LrcId, ReplicaLocationIndex};
///
/// let mut lrc = LocalReplicaCatalog::new("thu");
/// lrc.catalog_mut().register_logical("file-a".parse().unwrap(), 100).unwrap();
/// let mut rli = ReplicaLocationIndex::new(60);
/// rli.absorb_summary(LrcId(0), &lrc, 0);
/// assert_eq!(rli.lookup(&"file-a".parse().unwrap(), 30), vec![LrcId(0)]);
/// assert!(rli.lookup(&"file-a".parse().unwrap(), 61).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaLocationIndex {
    ttl_secs: u64,
    /// lfn -> (lrc -> expiry time in seconds)
    entries: BTreeMap<LogicalFileName, BTreeMap<LrcId, u64>>,
}

impl ReplicaLocationIndex {
    /// Creates an index whose entries expire `ttl_secs` after the summary
    /// that created them.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_secs` is zero.
    pub fn new(ttl_secs: u64) -> Self {
        assert!(ttl_secs > 0, "soft-state TTL must be positive");
        ReplicaLocationIndex {
            ttl_secs,
            entries: BTreeMap::new(),
        }
    }

    /// The configured TTL.
    pub fn ttl_secs(&self) -> u64 {
        self.ttl_secs
    }

    /// Absorbs a full soft-state summary from one LRC at time `now_secs`:
    /// every advertised name is refreshed, and names the LRC no longer
    /// advertises are dropped for that LRC immediately (a full summary is
    /// authoritative for its sender).
    pub fn absorb_summary(&mut self, lrc: LrcId, source: &LocalReplicaCatalog, now_secs: u64) {
        let advertised: BTreeSet<LogicalFileName> = source.logical_names().into_iter().collect();
        // Drop entries from this LRC that are no longer advertised.
        for (name, holders) in &mut self.entries {
            if !advertised.contains(name) {
                holders.remove(&lrc);
            }
        }
        let expiry = now_secs.saturating_add(self.ttl_secs);
        for name in advertised {
            self.entries.entry(name).or_default().insert(lrc, expiry);
        }
        self.entries.retain(|_, holders| !holders.is_empty());
    }

    /// The LRCs whose knowledge of `name` has not expired at `now_secs`,
    /// in id order.
    pub fn lookup(&self, name: &LogicalFileName, now_secs: u64) -> Vec<LrcId> {
        self.entries
            .get(name)
            .map(|holders| {
                holders
                    .iter()
                    .filter(|(_, &expiry)| expiry >= now_secs)
                    .map(|(&id, _)| id)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Drops every expired entry (the RLI's periodic garbage collection).
    pub fn expire(&mut self, now_secs: u64) {
        for holders in self.entries.values_mut() {
            holders.retain(|_, expiry| *expiry >= now_secs);
        }
        self.entries.retain(|_, holders| !holders.is_empty());
    }

    /// Number of indexed logical names (including possibly-expired
    /// entries; call [`ReplicaLocationIndex::expire`] first for an exact
    /// live count).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfn(s: &str) -> LogicalFileName {
        s.parse().unwrap()
    }

    fn lrc_with(site: &str, files: &[&str]) -> LocalReplicaCatalog {
        let mut lrc = LocalReplicaCatalog::new(site);
        for f in files {
            lrc.catalog_mut().register_logical(lfn(f), 1).unwrap();
        }
        lrc
    }

    #[test]
    fn summaries_index_and_expire() {
        let thu = lrc_with("thu", &["file-a", "file-b"]);
        let hit = lrc_with("hit", &["file-a"]);
        let mut rli = ReplicaLocationIndex::new(100);
        rli.absorb_summary(LrcId(0), &thu, 0);
        rli.absorb_summary(LrcId(1), &hit, 10);
        assert_eq!(rli.lookup(&lfn("file-a"), 50), vec![LrcId(0), LrcId(1)]);
        assert_eq!(rli.lookup(&lfn("file-b"), 50), vec![LrcId(0)]);
        assert!(rli.lookup(&lfn("ghost"), 50).is_empty());
        // thu's entries expire at 100, hit's at 110.
        assert_eq!(rli.lookup(&lfn("file-a"), 105), vec![LrcId(1)]);
        assert!(rli.lookup(&lfn("file-a"), 120).is_empty());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let thu = lrc_with("thu", &["file-a"]);
        let mut rli = ReplicaLocationIndex::new(60);
        rli.absorb_summary(LrcId(0), &thu, 0);
        rli.absorb_summary(LrcId(0), &thu, 50);
        assert_eq!(rli.lookup(&lfn("file-a"), 100), vec![LrcId(0)]);
        assert!(rli.lookup(&lfn("file-a"), 111).is_empty());
    }

    #[test]
    fn full_summary_retracts_dropped_files() {
        let mut thu = lrc_with("thu", &["file-a", "file-b"]);
        let mut rli = ReplicaLocationIndex::new(1000);
        rli.absorb_summary(LrcId(0), &thu, 0);
        assert_eq!(rli.lookup(&lfn("file-b"), 1), vec![LrcId(0)]);
        // thu unregisters file-b; the next summary retracts it immediately.
        thu.catalog_mut()
            .unregister_logical(&lfn("file-b"))
            .unwrap();
        rli.absorb_summary(LrcId(0), &thu, 10);
        assert!(rli.lookup(&lfn("file-b"), 11).is_empty());
        assert_eq!(rli.lookup(&lfn("file-a"), 11), vec![LrcId(0)]);
    }

    #[test]
    fn gc_drops_expired_names() {
        let thu = lrc_with("thu", &["file-a"]);
        let mut rli = ReplicaLocationIndex::new(10);
        rli.absorb_summary(LrcId(0), &thu, 0);
        assert_eq!(rli.len(), 1);
        rli.expire(11);
        assert!(rli.is_empty());
    }

    #[test]
    fn crashed_site_drops_out_silently() {
        // Two sites advertise; one stops refreshing (crash/partition).
        let thu = lrc_with("thu", &["file-a"]);
        let hit = lrc_with("hit", &["file-a"]);
        let mut rli = ReplicaLocationIndex::new(30);
        let mut now = 0;
        rli.absorb_summary(LrcId(0), &thu, now);
        rli.absorb_summary(LrcId(1), &hit, now);
        // Only thu keeps refreshing every 20 s.
        for _ in 0..3 {
            now += 20;
            rli.absorb_summary(LrcId(0), &thu, now);
        }
        assert_eq!(rli.lookup(&lfn("file-a"), now), vec![LrcId(0)]);
    }

    #[test]
    #[should_panic(expected = "TTL must be positive")]
    fn zero_ttl_rejected() {
        let _ = ReplicaLocationIndex::new(0);
    }
}
