//! Structured events and the in-memory ring buffer that retains them.

use datagrid_simnet::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A single field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (bytes, counts, stream numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (scores, fractions, seconds).
    F64(f64),
    /// Text (host names, logical file names, policy names).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Render as a JSON value (numbers bare, strings escaped).
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => json_f64(*v),
            Value::Str(s) => json_string(s),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A structured, timestamped observation.
///
/// `component` and `kind` form the event taxonomy (`component` is the
/// emitting subsystem — `grid`, `gridftp`, `catalog`, `simnet`, `nws` —
/// and `kind` a dotted event name like `transfer.complete`); `fields` carry
/// the payload in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time at which the event happened.
    pub time: SimTime,
    /// Emitting subsystem (static taxonomy, e.g. `"grid"`).
    pub component: &'static str,
    /// Dotted event name within the component (e.g. `"transfer.complete"`).
    pub kind: &'static str,
    /// Ordered payload fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(time: SimTime, component: &'static str, kind: &'static str) -> Self {
        Event {
            time,
            component,
            kind,
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder style; order is preserved in every export).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Render as one JSON object (stable key order: `t_ns`, `component`,
    /// `kind`, then fields in emission order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"t_ns\":");
        out.push_str(&self.time.as_nanos().to_string());
        out.push_str(",\"component\":");
        out.push_str(&json_string(self.component));
        out.push_str(",\"kind\":");
        out.push_str(&json_string(self.kind));
        for (key, value) in &self.fields {
            out.push(',');
            out.push_str(&json_string(key));
            out.push(':');
            out.push_str(&value.to_json());
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>14.6}] {:<8} {}",
            self.time.as_secs_f64(),
            self.component,
            self.kind
        )?;
        for (key, value) in &self.fields {
            write!(f, " {key}={value}")?;
        }
        Ok(())
    }
}

/// Fixed-capacity event history; pushing past capacity evicts the oldest.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    events: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl RingBuffer {
    /// A ring retaining at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingBuffer {
            events: VecDeque::with_capacity(cap.min(1024)),
            cap,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest at capacity.
    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events have been evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop all retained events (the eviction counter keeps counting).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// JSON-escape a string, with quotes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number. `{}` formatting is shortest-round-trip
/// and fully deterministic; non-finite values (not valid JSON numbers) are
/// stringified.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // "1" is a valid JSON number; keep it bare.
        s
    } else {
        format!("\"{v}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_stable_and_escaped() {
        let e = Event::new(
            SimTime::from_nanos(1_500_000_000),
            "grid",
            "transfer.complete",
        )
        .with("bytes", 32u64 << 20)
        .with("src", "alpha\"4\"")
        .with("secs", 1.25f64)
        .with("ok", true);
        assert_eq!(
            e.to_json(),
            "{\"t_ns\":1500000000,\"component\":\"grid\",\"kind\":\"transfer.complete\",\
             \"bytes\":33554432,\"src\":\"alpha\\\"4\\\"\",\"secs\":1.25,\"ok\":true}"
        );
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5u64 {
            ring.push(Event::new(SimTime::from_nanos(i), "t", "tick").with("i", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let first = ring.iter().next().expect("non-empty");
        assert_eq!(first.field("i"), Some(&Value::U64(2)));
    }

    #[test]
    fn display_is_human_readable() {
        let e = Event::new(SimTime::from_secs_f64(2.0), "nws", "probe.start").with("path", "a->b");
        let line = format!("{e}");
        assert!(line.contains("nws"));
        assert!(line.contains("probe.start"));
        assert!(line.contains("path=a->b"));
    }
}
